"""Simulated NVIDIA NVBit dynamic binary instrumentation backend.

NVBit intercepts CUDA driver events (``nvbit_at_cuda_event``) and can inject
instrumentation into *every* SASS instruction of a kernel.  That flexibility
comes at a price the paper quantifies in Figure 9: before a kernel can be
instrumented NVBit must dump and parse its SASS, and tracing all instructions
(then filtering the interesting ones) inflates the raw record volume.

The simulated backend models both effects: it tracks which kernels have been
"SASS-parsed" (a per-kernel cost the overhead model charges), and it exposes
the full :class:`~repro.gpusim.instruction.InstructionKind` set for device-side
tracing.
"""

from __future__ import annotations

from repro.gpusim.costmodel import InstrumentationBackend
from repro.gpusim.device import Vendor
from repro.gpusim.instruction import InstructionKind, InstructionRecord
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import MemoryObject
from repro.gpusim.runtime import AcceleratorRuntime, MemcpyRecord, MemsetRecord, SyncRecord
from repro.vendors.base import ProfilingBackend


class NvbitBackend(ProfilingBackend):
    """NVBit-style callbacks and all-instruction instrumentation for NVIDIA devices."""

    name = "nvbit"
    supported_vendor = Vendor.NVIDIA
    instrumentation = InstrumentationBackend.NVBIT
    instrumentable_kinds = frozenset(InstructionKind)

    def __init__(self) -> None:
        super().__init__()
        #: Kernels whose SASS has been dumped and parsed (each costs time once).
        self.sass_parsed_kernels: set[str] = set()
        #: Optional filter applied after parsing; NVBit tools typically select
        #: only memory instructions even though everything was instrumented.
        self._instruction_filter: frozenset[InstructionKind] | None = None

    # ------------------------------------------------------------------ #
    # NVBit-flavoured configuration API
    # ------------------------------------------------------------------ #
    def set_instruction_filter(self, kinds: frozenset[InstructionKind] | None) -> None:
        """Restrict forwarded device records to ``kinds`` (None = everything)."""
        self._instruction_filter = kinds

    def sass_parse_count(self) -> int:
        """Number of distinct kernels that required a SASS dump/parse."""
        return len(self.sass_parsed_kernels)

    # ------------------------------------------------------------------ #
    # runtime callbacks (adds SASS bookkeeping on top of the base class)
    # ------------------------------------------------------------------ #
    def on_kernel_launch_begin(self, runtime: AcceleratorRuntime, launch: KernelLaunch) -> None:
        if self.instruction_tracing_enabled:
            self.sass_parsed_kernels.add(launch.kernel_name)
        super().on_kernel_launch_begin(runtime, launch)

    def _device_record_kinds(self) -> frozenset[InstructionKind]:
        # NVBit instruments everything, then the tool-side filter (if any)
        # selects the kinds of interest.
        if self._instruction_filter is None:
            return self.instrumentable_kinds
        return self.instrumentable_kinds & self._instruction_filter

    # ------------------------------------------------------------------ #
    # callback ids
    # ------------------------------------------------------------------ #
    def _cbid_memory_alloc(self, obj: MemoryObject) -> str:
        return "NVBIT_CUDA_EVENT_cuMemAlloc"

    def _cbid_memory_free(self, obj: MemoryObject) -> str:
        return "NVBIT_CUDA_EVENT_cuMemFree"

    def _cbid_memcpy(self, record: MemcpyRecord) -> str:
        return "NVBIT_CUDA_EVENT_cuMemcpy"

    def _cbid_memset(self, record: MemsetRecord) -> str:
        return "NVBIT_CUDA_EVENT_cuMemset"

    def _cbid_launch_begin(self, launch: KernelLaunch) -> str:
        return "NVBIT_CUDA_EVENT_cuLaunchKernel_entry"

    def _cbid_launch_end(self, launch: KernelLaunch) -> str:
        return "NVBIT_CUDA_EVENT_cuLaunchKernel_exit"

    def _cbid_synchronize(self, record: SyncRecord) -> str:
        return "NVBIT_CUDA_EVENT_cuCtxSynchronize"

    def _cbid_instruction(self, record: InstructionRecord) -> str:
        return f"NVBIT_INSTR_{record.kind.name}"

    def _cbid_instruction_batch(self, batch) -> str:
        return "NVBIT_INSTR_BATCH"
