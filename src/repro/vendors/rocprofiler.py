"""Simulated AMD ROCProfiler-SDK profiling backend.

ROCProfiler-SDK exposes HIP API tracing and kernel-dispatch callbacks through
``rocprofiler_configure`` + callback registration.  The paper notes its
callbacks are analogous to Compute Sanitizer's, which lets PASTA capture
memory, kernel and synchronisation events on AMD GPUs through the same unified
interface.  Device-side instruction tracing on AMD is limited to memory
operations in this model (matching what the paper's tools use on MI300X).
"""

from __future__ import annotations

from repro.gpusim.costmodel import InstrumentationBackend
from repro.gpusim.device import Vendor
from repro.gpusim.instruction import InstructionKind, InstructionRecord
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import MemoryObject
from repro.gpusim.runtime import MemcpyRecord, MemsetRecord, SyncRecord
from repro.vendors.base import ProfilingBackend

ROCPROFILER_INSTRUMENTABLE = frozenset(
    {
        InstructionKind.GLOBAL_LOAD,
        InstructionKind.GLOBAL_STORE,
        InstructionKind.SHARED_LOAD,
        InstructionKind.SHARED_STORE,
        InstructionKind.BARRIER,
        InstructionKind.BLOCK_ENTRY,
        InstructionKind.BLOCK_EXIT,
    }
)


class RocprofilerBackend(ProfilingBackend):
    """ROCProfiler-SDK style callbacks for AMD devices."""

    name = "rocprofiler"
    supported_vendor = Vendor.AMD
    instrumentation = InstrumentationBackend.ROCPROFILER
    instrumentable_kinds = ROCPROFILER_INSTRUMENTABLE

    def __init__(self) -> None:
        super().__init__()
        self._configured_services: set[str] = set()

    # ------------------------------------------------------------------ #
    # rocprofiler-flavoured configuration API
    # ------------------------------------------------------------------ #
    def rocprofiler_configure_callback(self, service: str) -> None:
        """Mirror ``rocprofiler_configure_callback_tracing_service``.

        Known services: ``"hip_runtime_api"``, ``"kernel_dispatch"``,
        ``"memory_copy"``, ``"scratch_memory"``.
        """
        self._configured_services.add(service)

    @property
    def configured_services(self) -> frozenset[str]:
        """Services configured so far."""
        return frozenset(self._configured_services)

    # ------------------------------------------------------------------ #
    # callback ids
    # ------------------------------------------------------------------ #
    def _cbid_memory_alloc(self, obj: MemoryObject) -> str:
        return "ROCPROFILER_HIP_API_ID_hipMalloc"

    def _cbid_memory_free(self, obj: MemoryObject) -> str:
        return "ROCPROFILER_HIP_API_ID_hipFree"

    def _cbid_memcpy(self, record: MemcpyRecord) -> str:
        return "ROCPROFILER_HIP_API_ID_hipMemcpy"

    def _cbid_memset(self, record: MemsetRecord) -> str:
        return "ROCPROFILER_HIP_API_ID_hipMemset"

    def _cbid_launch_begin(self, launch: KernelLaunch) -> str:
        return "ROCPROFILER_HIP_API_ID_hipLaunchKernel_enter"

    def _cbid_launch_end(self, launch: KernelLaunch) -> str:
        return "ROCPROFILER_HIP_API_ID_hipLaunchKernel_exit"

    def _cbid_synchronize(self, record: SyncRecord) -> str:
        return "ROCPROFILER_HIP_API_ID_hipDeviceSynchronize"

    def _cbid_instruction(self, record: InstructionRecord) -> str:
        return f"ROCPROFILER_DEVICE_{record.kind.name}"

    def _cbid_instruction_batch(self, batch) -> str:
        return "ROCPROFILER_DEVICE_RECORD_BATCH"
