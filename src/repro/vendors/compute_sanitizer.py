"""Simulated NVIDIA Compute Sanitizer profiling backend.

The Compute Sanitizer API (``sanitizerSubscribe`` / ``sanitizerEnableDomain`` /
``sanitizerPatchModule``) exposes lightweight callbacks for host-side events and
a *patching* mechanism that instruments a subset of device instructions —
memory accesses and barrier operations — which is exactly the trade-off the
paper calls out: intuitive and cheap, but limited instruction coverage.
"""

from __future__ import annotations

from repro.gpusim.costmodel import InstrumentationBackend
from repro.gpusim.device import Vendor
from repro.gpusim.instruction import InstructionKind, InstructionRecord
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import MemoryObject
from repro.gpusim.runtime import MemcpyRecord, MemsetRecord, SyncRecord
from repro.vendors.base import ProfilingBackend

#: Instruction kinds Compute Sanitizer patches can observe: memory and barrier
#: operations only (Section III-D).
SANITIZER_INSTRUMENTABLE = frozenset(
    {
        InstructionKind.GLOBAL_LOAD,
        InstructionKind.GLOBAL_STORE,
        InstructionKind.SHARED_LOAD,
        InstructionKind.SHARED_STORE,
        InstructionKind.GLOBAL_TO_SHARED_COPY,
        InstructionKind.BARRIER,
        InstructionKind.CLUSTER_BARRIER,
        InstructionKind.BLOCK_ENTRY,
        InstructionKind.BLOCK_EXIT,
        InstructionKind.DEVICE_MALLOC,
        InstructionKind.DEVICE_FREE,
    }
)


class ComputeSanitizerBackend(ProfilingBackend):
    """Compute Sanitizer style callbacks for NVIDIA devices."""

    name = "compute_sanitizer"
    supported_vendor = Vendor.NVIDIA
    instrumentation = InstrumentationBackend.COMPUTE_SANITIZER
    instrumentable_kinds = SANITIZER_INSTRUMENTABLE

    def __init__(self) -> None:
        super().__init__()
        self._enabled_domains: set[str] = set()
        self._patched_modules: set[str] = set()

    # ------------------------------------------------------------------ #
    # sanitizer-flavoured configuration API
    # ------------------------------------------------------------------ #
    def sanitizer_enable_domain(self, domain: str) -> None:
        """Mirror ``sanitizerEnableDomain``: enable a callback domain.

        Known domains: ``"launch"``, ``"memcpy"``, ``"memset"``, ``"synchronize"``,
        ``"resource"`` (alloc/free), ``"uvm"``.
        """
        self._enabled_domains.add(domain)

    def sanitizer_patch_module(self, module_name: str) -> None:
        """Mirror ``sanitizerPatchModule``: enable device-side instrumentation."""
        self._patched_modules.add(module_name)
        self.enable_instruction_tracing(True)

    @property
    def enabled_domains(self) -> frozenset[str]:
        """Domains enabled so far (all domains enabled if none set explicitly)."""
        return frozenset(self._enabled_domains)

    @property
    def patched_modules(self) -> frozenset[str]:
        """Module names that have been patched for device-side tracing."""
        return frozenset(self._patched_modules)

    # ------------------------------------------------------------------ #
    # callback ids
    # ------------------------------------------------------------------ #
    def _cbid_memory_alloc(self, obj: MemoryObject) -> str:
        return "SANITIZER_CBID_RESOURCE_MEMORY_ALLOC"

    def _cbid_memory_free(self, obj: MemoryObject) -> str:
        return "SANITIZER_CBID_RESOURCE_MEMORY_FREE"

    def _cbid_memcpy(self, record: MemcpyRecord) -> str:
        return "SANITIZER_CBID_MEMCPY_STARTING"

    def _cbid_memset(self, record: MemsetRecord) -> str:
        return "SANITIZER_CBID_MEMSET_STARTING"

    def _cbid_launch_begin(self, launch: KernelLaunch) -> str:
        return "SANITIZER_CBID_LAUNCH_BEGIN"

    def _cbid_launch_end(self, launch: KernelLaunch) -> str:
        return "SANITIZER_CBID_LAUNCH_END"

    def _cbid_synchronize(self, record: SyncRecord) -> str:
        return "SANITIZER_CBID_SYNCHRONIZE"

    def _cbid_instruction(self, record: InstructionRecord) -> str:
        if record.kind in (InstructionKind.BARRIER, InstructionKind.CLUSTER_BARRIER):
            return "SANITIZER_CBID_BARRIER"
        if record.kind in (InstructionKind.BLOCK_ENTRY, InstructionKind.BLOCK_EXIT):
            return "SANITIZER_CBID_BLOCK_BOUNDARY"
        return "SANITIZER_CBID_MEMORY_ACCESS"

    def _cbid_instruction_batch(self, batch) -> str:
        return "SANITIZER_CBID_DEVICE_RECORD_BATCH"
