"""Simulated vendor profiling backends (Compute Sanitizer, NVBit, ROCProfiler).

These stand in for the low-level vendor profiling libraries PASTA builds on:
NVIDIA Compute Sanitizer APIs, NVIDIA NVBit, and AMD ROCProfiler-SDK.  Each
backend subscribes to a simulated runtime and re-emits runtime activity as
vendor-style callbacks that PASTA's event handler consumes.
"""

from repro.vendors.base import ProfilingBackend, VendorCallback, VendorCallbackFn
from repro.vendors.compute_sanitizer import SANITIZER_INSTRUMENTABLE, ComputeSanitizerBackend
from repro.vendors.nvbit import NvbitBackend
from repro.vendors.rocprofiler import ROCPROFILER_INSTRUMENTABLE, RocprofilerBackend

from repro.errors import VendorError
from repro.gpusim.device import Vendor

#: Built-in backend factories seeded into the ``vendors`` registry namespace.
BUILTIN_BACKENDS = {
    "compute_sanitizer": ComputeSanitizerBackend,
    "nvbit": NvbitBackend,
    "rocprofiler": RocprofilerBackend,
}

#: Short-name aliases accepted alongside the canonical names above.
BACKEND_ALIASES = {"sanitizer": "compute_sanitizer"}


def create_backend(name: str) -> ProfilingBackend:
    """Instantiate a profiling backend by name from the vendor registry."""
    # Imported lazily: the registry seeds itself from this module, so a
    # module-level import would be cyclic.
    from repro.core.registry import REGISTRY

    return REGISTRY.create("vendors", name)  # type: ignore[return-value]


def default_backend_for_vendor(vendor: Vendor) -> ProfilingBackend:
    """Return the default profiling backend for a device vendor.

    NVIDIA devices default to Compute Sanitizer (the paper's recommended
    lightweight path); AMD devices use ROCProfiler-SDK.
    """
    if vendor is Vendor.NVIDIA:
        return ComputeSanitizerBackend()
    if vendor is Vendor.AMD:
        return RocprofilerBackend()
    raise VendorError(f"no profiling backend available for vendor {vendor!r}")


__all__ = [
    "BACKEND_ALIASES",
    "BUILTIN_BACKENDS",
    "ComputeSanitizerBackend",
    "NvbitBackend",
    "ProfilingBackend",
    "ROCPROFILER_INSTRUMENTABLE",
    "RocprofilerBackend",
    "SANITIZER_INSTRUMENTABLE",
    "VendorCallback",
    "VendorCallbackFn",
    "create_backend",
    "default_backend_for_vendor",
]
