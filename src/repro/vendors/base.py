"""Common infrastructure for simulated vendor profiling backends.

PASTA's event handler never talks to the runtime directly; it registers with a
*profiling backend* the way a real tool registers with Compute Sanitizer,
NVBit, or the ROCProfiler SDK.  Each simulated backend subscribes to an
:class:`~repro.gpusim.runtime.AcceleratorRuntime` and re-emits its activity as
vendor-flavoured callbacks: a callback-id string (mirroring the vendor's enum
names) plus a payload object.

The backends differ in exactly the ways the paper describes (Section III-D):

* **Compute Sanitizer** — lightweight callbacks, but instruction-level
  visibility limited to memory and barrier operations.
* **NVBit** — full SASS coverage with per-kernel dump/parse cost and a larger
  raw record volume.
* **ROCProfiler SDK** — HIP-level API and kernel-dispatch callbacks on AMD.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional

from repro.errors import VendorError
from repro.gpusim.costmodel import InstrumentationBackend
from repro.gpusim.device import Vendor
from repro.gpusim.instruction import (
    InstructionBatchRecord,
    InstructionKind,
    InstructionRecord,
)
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import MemoryObject
from repro.gpusim.runtime import (
    AcceleratorRuntime,
    MemcpyRecord,
    MemsetRecord,
    RuntimeCallbacks,
    SyncRecord,
)


class VendorCallback(NamedTuple):
    """One callback delivered by a vendor profiling backend.

    A named tuple rather than a dataclass: one is constructed per runtime
    event, so construction cost is on the handler's hot path.

    Attributes
    ----------
    cbid:
        The vendor's callback identifier (e.g. ``"SANITIZER_CBID_LAUNCH_BEGIN"``
        or ``"ROCPROFILER_HIP_API_ID_hipMalloc"``).
    payload:
        The vendor-specific payload object (a kernel launch, memory object,
        memcpy record, instruction batch, ...).
    device_index:
        Device the callback originated from.
    backend:
        Name of the backend that produced the callback.
    """

    cbid: str
    payload: object
    device_index: int
    backend: str


#: Signature of functions that receive vendor callbacks.
VendorCallbackFn = Callable[[VendorCallback], None]


class ProfilingBackend(RuntimeCallbacks):
    """Base class for the three simulated vendor profiling libraries.

    Subclasses set :attr:`name`, :attr:`supported_vendor` and
    :attr:`instrumentation` and override the ``_cbid_*`` hooks to produce
    vendor-specific callback-id strings.  Attaching to a runtime of the wrong
    vendor raises :class:`~repro.errors.VendorError`, mirroring the fact that
    Compute Sanitizer cannot profile an AMD GPU.
    """

    name: str = "base"
    supported_vendor: Optional[Vendor] = None
    instrumentation: InstrumentationBackend = InstrumentationBackend.COMPUTE_SANITIZER
    #: Which instruction kinds this backend can observe at device level.
    instrumentable_kinds: frozenset[InstructionKind] = frozenset(InstructionKind)
    #: Maximum sampled device-side records forwarded per kernel launch.
    max_instruction_records_per_kernel: int = 2048
    #: Accumulate a launch's sampled device records into one columnar
    #: :class:`~repro.gpusim.instruction.InstructionBatchRecord` callback
    #: (the collect-and-analyze fast path) instead of one callback per
    #: record.  Set to False to fall back to the per-record protocol — the
    #: two modes deliver identical data in identical order.
    batch_device_records: bool = True

    def __init__(self) -> None:
        self._callbacks: tuple[VendorCallbackFn, ...] = ()
        self._runtime: Optional[AcceleratorRuntime] = None
        self._instruction_tracing_enabled = False
        self.callback_count = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, runtime: AcceleratorRuntime) -> None:
        """Attach the backend to a runtime (``sanitizerSubscribe`` and friends)."""
        if self.supported_vendor is not None and runtime.vendor is not self.supported_vendor:
            raise VendorError(
                f"{self.name} supports {self.supported_vendor.value} devices only, "
                f"got {runtime.vendor.value}"
            )
        if self._runtime is not None:
            raise VendorError(f"{self.name} is already attached to a runtime")
        self._runtime = runtime
        runtime.subscribe(self)

    def detach(self) -> None:
        """Detach from the runtime and stop receiving callbacks."""
        if self._runtime is not None:
            self._runtime.unsubscribe(self)
            self._runtime = None

    @property
    def is_attached(self) -> bool:
        """True while attached to a runtime."""
        return self._runtime is not None

    def register_callback(self, fn: VendorCallbackFn) -> None:
        """Register a receiver for this backend's callbacks (PASTA's handler)."""
        if fn not in self._callbacks:
            self._callbacks = self._callbacks + (fn,)

    def unregister_callback(self, fn: VendorCallbackFn) -> None:
        """Remove a previously registered receiver."""
        if fn in self._callbacks:
            self._callbacks = tuple(f for f in self._callbacks if f != fn)

    def enable_instruction_tracing(self, enabled: bool = True) -> None:
        """Turn device-side (fine-grained) instrumentation on or off."""
        self._instruction_tracing_enabled = enabled

    @property
    def instruction_tracing_enabled(self) -> bool:
        """Whether device-side instrumentation is currently enabled."""
        return self._instruction_tracing_enabled

    # ------------------------------------------------------------------ #
    # emission helpers
    # ------------------------------------------------------------------ #
    def _emit(self, cbid: str, payload: object, device_index: int) -> None:
        callback = VendorCallback(cbid, payload, device_index, self.name)
        self.callback_count += 1
        # The callback tuple is immutable: registration replaces it, so
        # iterating is safe even if a receiver mutates the registration set.
        for fn in self._callbacks:
            fn(callback)

    def _device_record_kinds(self) -> frozenset[InstructionKind]:
        """Instruction kinds this backend forwards (subclasses may narrow)."""
        return self.instrumentable_kinds

    def _emit_instructions(self, launch: KernelLaunch) -> None:
        """Forward sampled device-side records for a launch.

        In the default batched mode the launch's records travel as a single
        columnar callback; in per-record mode each record is its own
        callback.  Both modes carry the same records in the same order.
        """
        if not self._instruction_tracing_enabled:
            return
        kinds = self._device_record_kinds()
        if self.batch_device_records:
            batch = launch.generate_instruction_batch(
                max_records=self.max_instruction_records_per_kernel,
                allowed_kinds=kinds,
            )
            if len(batch):
                self._emit(self._cbid_instruction_batch(batch), batch, launch.device_index)
            return
        records = launch.generate_instructions(
            max_records=self.max_instruction_records_per_kernel
        )
        for record in records:
            if record.kind not in kinds:
                continue
            self._emit(self._cbid_instruction(record), record, launch.device_index)

    # ------------------------------------------------------------------ #
    # vendor-specific callback ids (overridden by subclasses)
    # ------------------------------------------------------------------ #
    def _cbid_memory_alloc(self, obj: MemoryObject) -> str:
        raise NotImplementedError

    def _cbid_memory_free(self, obj: MemoryObject) -> str:
        raise NotImplementedError

    def _cbid_memcpy(self, record: MemcpyRecord) -> str:
        raise NotImplementedError

    def _cbid_memset(self, record: MemsetRecord) -> str:
        raise NotImplementedError

    def _cbid_launch_begin(self, launch: KernelLaunch) -> str:
        raise NotImplementedError

    def _cbid_launch_end(self, launch: KernelLaunch) -> str:
        raise NotImplementedError

    def _cbid_synchronize(self, record: SyncRecord) -> str:
        raise NotImplementedError

    def _cbid_instruction(self, record: InstructionRecord) -> str:
        raise NotImplementedError

    def _cbid_instruction_batch(self, batch: InstructionBatchRecord) -> str:
        return f"{self.name.upper()}_DEVICE_RECORD_BATCH"

    # ------------------------------------------------------------------ #
    # RuntimeCallbacks implementation
    # ------------------------------------------------------------------ #
    def on_memory_alloc(self, runtime: AcceleratorRuntime, obj: MemoryObject) -> None:
        self._emit(self._cbid_memory_alloc(obj), obj, runtime.device.index)

    def on_memory_free(self, runtime: AcceleratorRuntime, obj: MemoryObject) -> None:
        self._emit(self._cbid_memory_free(obj), obj, runtime.device.index)

    def on_memcpy(self, runtime: AcceleratorRuntime, record: MemcpyRecord) -> None:
        self._emit(self._cbid_memcpy(record), record, runtime.device.index)

    def on_memset(self, runtime: AcceleratorRuntime, record: MemsetRecord) -> None:
        self._emit(self._cbid_memset(record), record, runtime.device.index)

    def on_kernel_launch_begin(self, runtime: AcceleratorRuntime, launch: KernelLaunch) -> None:
        self._emit(self._cbid_launch_begin(launch), launch, runtime.device.index)

    def on_kernel_launch_end(self, runtime: AcceleratorRuntime, launch: KernelLaunch) -> None:
        self._emit_instructions(launch)
        self._emit(self._cbid_launch_end(launch), launch, runtime.device.index)

    def on_synchronize(self, runtime: AcceleratorRuntime, record: SyncRecord) -> None:
        self._emit(self._cbid_synchronize(record), record, runtime.device.index)

    def on_runtime_api(self, runtime: AcceleratorRuntime, api_name: str) -> None:
        # Driver/runtime API interception ("All Driver Functions" / "All
        # Runtime Functions" rows of Table II).
        self._emit(self._cbid_runtime_api(api_name), api_name, runtime.device.index)

    def _cbid_runtime_api(self, api_name: str) -> str:
        return f"{self.name.upper()}_API_{api_name}"
