"""PASTA reproduction: a modular program-analysis tool framework for accelerators.

Package layout
--------------
* :mod:`repro.core` — the PASTA framework itself (event handler, event
  processor, tool collection template, session, annotations, knobs).
* :mod:`repro.gpusim` — simulated GPU devices, runtimes, UVM and cost models.
* :mod:`repro.vendors` — simulated vendor profiling backends (Compute
  Sanitizer, NVBit, ROCProfiler-SDK).
* :mod:`repro.dlframework` — simulated DL framework (tensors, caching
  allocator, operators, model zoo, parallelism).
* :mod:`repro.tools` — analysis tools built with PASTA (the paper's case
  studies).
* :mod:`repro.campaign` — batched experiment campaigns with caching.
* :mod:`repro.replay` — trace record & replay (persistent event streams with
  offline analysis).
* :mod:`repro.workloads` — convenience runners for profiling models.
* :mod:`repro.pasta` — the user annotation API (``pasta.start()/stop()``).
"""

from repro import pasta
from repro.core.session import PastaSession
from repro.core.tool import PastaTool
from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = ["PastaSession", "PastaTool", "ReproError", "__version__", "pasta"]
