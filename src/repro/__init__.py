"""PASTA reproduction: a modular program-analysis tool framework for accelerators.

The public surface is the unified profiling API (:mod:`repro.api`)::

    from repro import pasta

    reports = (pasta.profile("gpt2")
                    .on("a100")
                    .mode("train")
                    .with_tools("hotness", "access_histogram")
                    .record("trace.pasta")
                    .run()
                    .reports())

or, without the builder::

    from repro import ProfileSpec, run

    result = run("resnet18", tools=["kernel_frequency"], batch_size=2)

Package layout
--------------
* :mod:`repro.api` — the one profiling API: :class:`ProfileSpec`, the fluent
  builder, and the single execution path behind live runs, trace recording,
  offline replay and campaigns.
* :mod:`repro.core` — the PASTA framework itself (event handler, event
  processor, tool collection template, session, annotations, knobs, and the
  multi-namespace plugin registry).
* :mod:`repro.gpusim` — simulated GPU devices, runtimes, UVM and cost models.
* :mod:`repro.vendors` — simulated vendor profiling backends (Compute
  Sanitizer, NVBit, ROCProfiler-SDK).
* :mod:`repro.dlframework` — simulated DL framework (tensors, caching
  allocator, operators, model zoo, parallelism).
* :mod:`repro.tools` — analysis tools built with PASTA (the paper's case
  studies).
* :mod:`repro.campaign` — batched experiment campaigns with caching.
* :mod:`repro.serve` — profiling as a service: the ``pasta serve`` daemon,
  its JSONL job API, and the ``pasta.connect(url)`` remote client.
* :mod:`repro.replay` — trace record & replay (persistent event streams with
  offline analysis).
* :mod:`repro.pasta` — the user facade (``pasta.profile()``, ``pasta.run()``,
  ``pasta.start()/stop()`` annotations).
"""

from repro import pasta
from repro.pasta import connect
from repro.api import (
    ParallelismSpec,
    ParallelProfileResult,
    ProfileBuilder,
    ProfileResult,
    ProfileSpec,
    profile,
    replay,
    run,
)
from repro.core.registry import (
    REGISTRY,
    Registry,
    create_tool,
    discover_plugins,
    register_tool,
    registered_tools,
)
from repro.core.session import PastaSession
from repro.core.tool import PastaTool
from repro.errors import PastaError, ReproError

__version__ = "1.6.0"

__all__ = [
    "ParallelProfileResult",
    "ParallelismSpec",
    "PastaError",
    "PastaSession",
    "PastaTool",
    "ProfileBuilder",
    "ProfileResult",
    "ProfileSpec",
    "REGISTRY",
    "Registry",
    "ReproError",
    "__version__",
    "connect",
    "create_tool",
    "discover_plugins",
    "pasta",
    "profile",
    "register_tool",
    "registered_tools",
    "replay",
    "run",
]
