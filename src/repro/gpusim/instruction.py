"""Instruction-level records produced by simulated kernels.

PASTA's fine-grained analyses (Table II: global/shared memory accesses, barrier
instructions, device function calls, ...) consume per-thread instruction
records.  Real hardware produces these through binary instrumentation (Compute
Sanitizer patches or NVBit SASS injection); the simulator produces them
directly from the kernel's declared memory behaviour.

Only the fields that PASTA's analyses need are modelled: the instruction kind,
the issuing thread coordinates, the referenced address/size for memory
operations, and a flag for whether the access is a read or a write.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional


class InstructionKind(str, Enum):
    """Device-side operation categories (mirrors the fine-grained rows of Table II)."""

    GLOBAL_LOAD = "global_load"
    GLOBAL_STORE = "global_store"
    SHARED_LOAD = "shared_load"
    SHARED_STORE = "shared_store"
    BARRIER = "barrier"
    BLOCK_ENTRY = "block_entry"
    BLOCK_EXIT = "block_exit"
    DEVICE_CALL = "device_call"
    DEVICE_RETURN = "device_return"
    DEVICE_MALLOC = "device_malloc"
    DEVICE_FREE = "device_free"
    GLOBAL_TO_SHARED_COPY = "global_to_shared_copy"
    PIPELINE_COMMIT = "pipeline_commit"
    PIPELINE_WAIT = "pipeline_wait"
    REMOTE_SHARED_ACCESS = "remote_shared_access"
    CLUSTER_BARRIER = "cluster_barrier"
    OTHER = "other"

    @property
    def is_memory_access(self) -> bool:
        """True for instructions that reference global memory addresses."""
        return self in _MEMORY_KINDS

    @property
    def is_write(self) -> bool:
        """True for instructions that write memory."""
        return self in (InstructionKind.GLOBAL_STORE, InstructionKind.SHARED_STORE)


_MEMORY_KINDS = frozenset(
    {
        InstructionKind.GLOBAL_LOAD,
        InstructionKind.GLOBAL_STORE,
        InstructionKind.GLOBAL_TO_SHARED_COPY,
    }
)


@dataclass(frozen=True)
class MemoryAccessRecord:
    """One global-memory access observed during kernel execution.

    Attributes
    ----------
    address:
        Virtual address referenced by the access.
    size:
        Access width in bytes (4/8/16 for typical loads, up to 128 for vector
        and asynchronous copy instructions).
    is_write:
        True for stores.
    thread_index:
        Flattened thread index within the grid that issued the access.
    block_index:
        Flattened thread-block index.
    kernel_launch_id:
        Launch that produced the access; filled in by the trace collector.
    """

    address: int
    size: int
    is_write: bool
    thread_index: int = 0
    block_index: int = 0
    kernel_launch_id: int = 0


@dataclass(frozen=True)
class InstructionRecord:
    """A generic device-side instruction event (non-memory or memory).

    ``address``/``size`` are ``None`` for non-memory instructions such as
    barriers and block entry/exit markers.
    """

    kind: InstructionKind
    thread_index: int = 0
    block_index: int = 0
    address: Optional[int] = None
    size: Optional[int] = None
    kernel_launch_id: int = 0

    def to_memory_access(self) -> MemoryAccessRecord:
        """Convert to a :class:`MemoryAccessRecord`; only valid for memory kinds."""
        if not self.kind.is_memory_access or self.address is None or self.size is None:
            raise ValueError(f"instruction {self.kind} is not a memory access")
        return MemoryAccessRecord(
            address=self.address,
            size=self.size,
            is_write=self.kind.is_write,
            thread_index=self.thread_index,
            block_index=self.block_index,
            kernel_launch_id=self.kernel_launch_id,
        )


@dataclass(frozen=True)
class InstructionBatchRecord:
    """One kernel launch's sampled device records as parallel arrays.

    The columnar alternative to a list of :class:`InstructionRecord`: a
    single object per kernel launch, holding three sections in stream order —
    the instructions issued *before* the memory accesses (block-entry
    markers), the memory accesses themselves, and the instructions issued
    *after* them (block-exit markers).  Iterating the three sections in order
    yields exactly the record sequence the per-record path would produce, so
    both delivery modes are interchangeable.
    """

    kernel_launch_id: int
    device_index: int = 0
    #: Instructions preceding the access stream (e.g. BLOCK_ENTRY markers).
    pre_kinds: tuple[InstructionKind, ...] = ()
    pre_thread_indices: tuple[int, ...] = ()
    pre_block_indices: tuple[int, ...] = ()
    #: Sampled memory accesses (parallel arrays).
    addresses: tuple[int, ...] = ()
    sizes: tuple[int, ...] = ()
    write_flags: tuple[bool, ...] = ()
    access_thread_indices: tuple[int, ...] = ()
    access_block_indices: tuple[int, ...] = ()
    #: Instructions following the access stream (e.g. BLOCK_EXIT markers).
    post_kinds: tuple[InstructionKind, ...] = ()
    post_thread_indices: tuple[int, ...] = ()
    post_block_indices: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.pre_kinds) + len(self.addresses) + len(self.post_kinds)

    @property
    def access_count(self) -> int:
        """Number of sampled memory accesses in the batch."""
        return len(self.addresses)

    def iter_records(self) -> "Iterator[InstructionRecord]":
        """Unrolled per-record view, in the per-record pipeline's order."""
        for kind, thread, block in zip(
            self.pre_kinds, self.pre_thread_indices, self.pre_block_indices
        ):
            yield InstructionRecord(
                kind=kind, thread_index=thread, block_index=block,
                kernel_launch_id=self.kernel_launch_id,
            )
        for address, size, is_write, thread, block in zip(
            self.addresses, self.sizes, self.write_flags,
            self.access_thread_indices, self.access_block_indices,
        ):
            yield InstructionRecord(
                kind=InstructionKind.GLOBAL_STORE if is_write else InstructionKind.GLOBAL_LOAD,
                thread_index=thread, block_index=block,
                address=address, size=size,
                kernel_launch_id=self.kernel_launch_id,
            )
        for kind, thread, block in zip(
            self.post_kinds, self.post_thread_indices, self.post_block_indices
        ):
            yield InstructionRecord(
                kind=kind, thread_index=thread, block_index=block,
                kernel_launch_id=self.kernel_launch_id,
            )
