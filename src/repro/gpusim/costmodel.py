"""Analytical cost model for profiling overhead (Figures 9 and 10).

The paper compares three implementations of the same memory-characterisation
analysis:

* ``CS-GPU``  — PASTA's GPU-resident collect-and-analyze using Compute
  Sanitizer instrumentation (Figure 8b),
* ``CS-CPU``  — Compute Sanitizer instrumentation with trace transfer and
  single-threaded CPU analysis (Figure 8a), and
* ``NVBIT-CPU`` — NVBit instrumentation (all-SASS patching, with a per-kernel
  dump/parse step) with CPU analysis.

Since no physical GPU is available, this module provides an analytical model
with the same *structure* as the measured costs: a per-record instrumentation
cost on the device, a PCIe transfer term, buffer-full stall rounds, and an
analysis term that is either massively parallel (GPU) or serial (CPU).  The
constants are calibrated so that the relative ordering and rough magnitudes of
the paper's Figure 9 hold (GPU-resident analysis is two to four orders of
magnitude faster than CPU-side analysis, and NVBit-based collection is roughly
an order of magnitude more expensive than Compute Sanitizer's).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.gpusim.device import DeviceSpec
from repro.gpusim.trace import AnalysisModel, TraceBuffer, TRACE_RECORD_BYTES


class InstrumentationBackend(str, Enum):
    """Which vendor instrumentation library produces the fine-grained trace."""

    COMPUTE_SANITIZER = "compute_sanitizer"
    NVBIT = "nvbit"
    ROCPROFILER = "rocprofiler"


@dataclass(frozen=True)
class CostModelConfig:
    """Tunable constants of the overhead model.

    The defaults are calibrated against the qualitative results in the paper;
    tests assert orderings and order-of-magnitude ratios, not exact values.
    """

    #: Serial CPU analysis cost per trace record (address-to-object attribution
    #: plus a map update on a single host thread).  The paper observes that
    #: CPU-side analysis of billions of records takes hours to days, which this
    #: per-record cost reproduces.
    cpu_analysis_ns_per_record: float = 1800.0
    #: Device-side cost to append one record to the trace buffer (charged to
    #: the instrumented kernel in both analysis models).
    collection_ns_per_record: float = 2.0
    #: Per-lane device analysis cost; the effective per-record cost divides by
    #: the number of analysis lanes (one warp lane per SM-resident warp group),
    #: so larger GPUs benefit more from the GPU-resident reducer.
    gpu_analysis_ns_per_record_per_lane: float = 600.0
    #: Host-side stall latency for every buffer-full fetch/flush round.
    flush_round_latency_ns: float = 60_000.0
    #: Per-kernel fixed cost of patching/instrumenting with Compute Sanitizer.
    sanitizer_patch_ns_per_kernel: float = 25_000.0
    #: Per-kernel fixed cost of NVBit SASS dump + parse + injection.
    nvbit_patch_ns_per_kernel: float = 18_000_000.0
    #: NVBit traces every SASS instruction before filtering memory ops, so the
    #: record volume (and collection/analysis cost) is inflated by this factor.
    nvbit_record_multiplier: float = 12.0
    #: Analysis lanes per SM used by the GPU-resident reducer.
    analysis_lanes_per_sm: int = 32
    #: Bytes of the reduced result map copied back per kernel in the
    #: GPU-resident model.
    result_map_bytes: int = 64 * 1024


@dataclass
class ProfilingCost:
    """Decomposed profiling cost for one run (the Figure 10 breakdown)."""

    execution_ns: float = 0.0
    collection_ns: float = 0.0
    transfer_ns: float = 0.0
    analysis_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        """Total profiled wall time."""
        return self.execution_ns + self.collection_ns + self.transfer_ns + self.analysis_ns

    @property
    def overhead_ns(self) -> float:
        """Profiling overhead (everything except workload execution)."""
        return self.total_ns - self.execution_ns

    def normalized_overhead(self) -> float:
        """Overhead relative to uninstrumented execution time (Figure 9's y-axis)."""
        if self.execution_ns <= 0:
            return float("inf")
        return self.overhead_ns / self.execution_ns

    def fractions(self) -> dict[str, float]:
        """Fraction of total time per component (Figure 10's y-axis)."""
        total = self.total_ns
        if total <= 0:
            return {"execution": 0.0, "collection": 0.0, "transfer": 0.0, "analysis": 0.0}
        return {
            "execution": self.execution_ns / total,
            "collection": self.collection_ns / total,
            "transfer": self.transfer_ns / total,
            "analysis": self.analysis_ns / total,
        }

    def __add__(self, other: "ProfilingCost") -> "ProfilingCost":
        return ProfilingCost(
            execution_ns=self.execution_ns + other.execution_ns,
            collection_ns=self.collection_ns + other.collection_ns,
            transfer_ns=self.transfer_ns + other.transfer_ns,
            analysis_ns=self.analysis_ns + other.analysis_ns,
        )


class OverheadModel:
    """Computes :class:`ProfilingCost` for kernels under a profiling configuration."""

    def __init__(self, device_spec: DeviceSpec, config: CostModelConfig | None = None) -> None:
        self.device_spec = device_spec
        self.config = config or CostModelConfig()
        self._trace_buffer = TraceBuffer()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @property
    def analysis_lanes(self) -> int:
        """Number of concurrent device analysis lanes available to PASTA."""
        return max(1, self.device_spec.sm_count * self.config.analysis_lanes_per_sm)

    def _pcie_ns(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across the host interconnect."""
        bandwidth = self.device_spec.pcie_bandwidth_gbs * 1e9  # bytes/s
        return nbytes / bandwidth * 1e9

    def _record_count(self, memory_accesses: int, backend: InstrumentationBackend) -> float:
        if backend is InstrumentationBackend.NVBIT:
            return memory_accesses * self.config.nvbit_record_multiplier
        return float(memory_accesses)

    def _patch_cost_ns(self, backend: InstrumentationBackend) -> float:
        if backend is InstrumentationBackend.NVBIT:
            return self.config.nvbit_patch_ns_per_kernel
        return self.config.sanitizer_patch_ns_per_kernel

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def kernel_cost(
        self,
        kernel_duration_ns: float,
        memory_accesses: int,
        model: AnalysisModel,
        backend: InstrumentationBackend = InstrumentationBackend.COMPUTE_SANITIZER,
    ) -> ProfilingCost:
        """Cost of profiling a single kernel launch.

        Parameters
        ----------
        kernel_duration_ns:
            Uninstrumented execution time of the kernel.
        memory_accesses:
            Number of global-memory access instructions the kernel issues.
        model:
            GPU-resident or CPU-side analysis.
        backend:
            Instrumentation library used to collect the trace.
        """
        cfg = self.config
        records = self._record_count(memory_accesses, backend)
        cost = ProfilingCost(execution_ns=float(kernel_duration_ns))
        cost.collection_ns += self._patch_cost_ns(backend)
        cost.collection_ns += records * cfg.collection_ns_per_record

        if model is AnalysisModel.GPU_RESIDENT:
            # Collection and analysis are fused on the device (Figure 2b): the
            # analysis term rides along with collection, and only the reduced
            # result map crosses PCIe once per kernel.
            per_record = cfg.gpu_analysis_ns_per_record_per_lane / self.analysis_lanes
            cost.collection_ns += records * per_record
            cost.transfer_ns += self._pcie_ns(cfg.result_map_bytes)
        else:
            stats = self._trace_buffer.collect(int(records), AnalysisModel.CPU_SIDE)
            cost.transfer_ns += self._pcie_ns(stats.transferred_bytes)
            cost.transfer_ns += stats.flush_rounds * cfg.flush_round_latency_ns
            cost.analysis_ns += records * cfg.cpu_analysis_ns_per_record
        return cost

    def workload_cost(
        self,
        launches: list[tuple[float, int]],
        model: AnalysisModel,
        backend: InstrumentationBackend = InstrumentationBackend.COMPUTE_SANITIZER,
    ) -> ProfilingCost:
        """Aggregate cost over ``launches`` = [(duration_ns, memory_accesses), ...]."""
        total = ProfilingCost()
        for duration_ns, accesses in launches:
            total = total + self.kernel_cost(duration_ns, accesses, model, backend)
        return total

    def bytes_per_record(self) -> int:
        """Size of one packed trace record (exposed for ablation benches)."""
        return TRACE_RECORD_BYTES
