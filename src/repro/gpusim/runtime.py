"""Simulated CUDA / HIP runtime API facades.

The runtime is the surface that both the DL framework substrate and the
profiling backends interact with:

* the framework substrate calls ``malloc`` / ``free`` / ``launch_kernel`` /
  ``memcpy`` / ``synchronize`` exactly as PyTorch's backend would call
  ``cudaMalloc`` / ``cudaLaunchKernel`` / ... , and
* vendor profiling backends (:mod:`repro.vendors`) subscribe to the runtime's
  callback hooks, mirroring how Compute Sanitizer / NVBit / ROCProfiler are
  notified of driver and runtime API activity on real hardware.

``CudaRuntime`` and ``HipRuntime`` share an implementation
(:class:`AcceleratorRuntime`); they differ only in vendor identity and the API
naming reported in events, which is exactly the difference PASTA's event
handler has to normalise away.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Protocol, Sequence

from repro.errors import DeviceError
from repro.gpusim.device import DeviceSpec, GpuDevice, Vendor
from repro.gpusim.kernel import GridConfig, KernelArgument, KernelLaunch
from repro.gpusim.memory import DeviceMemoryAllocator, MemoryKind, MemoryObject
from repro.gpusim.stream import DEFAULT_STREAM_ID, StreamManager
from repro.gpusim.uvm import UvmManager


class MemcpyKind(str, Enum):
    """Direction of an explicit memory copy."""

    HOST_TO_DEVICE = "host_to_device"
    DEVICE_TO_HOST = "device_to_host"
    DEVICE_TO_DEVICE = "device_to_device"
    HOST_TO_HOST = "host_to_host"


@dataclass(frozen=True)
class MemcpyRecord:
    """Metadata of one memory-copy operation."""

    size: int
    kind: MemcpyKind
    src_address: int = 0
    dst_address: int = 0
    stream_id: int = DEFAULT_STREAM_ID
    start_time_ns: int = 0
    duration_ns: int = 0


@dataclass(frozen=True)
class MemsetRecord:
    """Metadata of one memory-set operation."""

    address: int
    size: int
    value: int = 0
    stream_id: int = DEFAULT_STREAM_ID
    start_time_ns: int = 0
    duration_ns: int = 0


@dataclass(frozen=True)
class SyncRecord:
    """Metadata of one synchronisation call."""

    scope: str  # "stream" or "device"
    stream_id: Optional[int] = None
    time_ns: int = 0


class RuntimeSubscriber(Protocol):
    """Callback interface implemented by profiling backends.

    All methods are optional in practice — :class:`RuntimeCallbacks` provides
    no-op defaults — but the protocol documents the full surface.
    """

    def on_memory_alloc(self, runtime: "AcceleratorRuntime", obj: MemoryObject) -> None: ...

    def on_memory_free(self, runtime: "AcceleratorRuntime", obj: MemoryObject) -> None: ...

    def on_memcpy(self, runtime: "AcceleratorRuntime", record: MemcpyRecord) -> None: ...

    def on_memset(self, runtime: "AcceleratorRuntime", record: MemsetRecord) -> None: ...

    def on_kernel_launch_begin(self, runtime: "AcceleratorRuntime", launch: KernelLaunch) -> None: ...

    def on_kernel_launch_end(self, runtime: "AcceleratorRuntime", launch: KernelLaunch) -> None: ...

    def on_synchronize(self, runtime: "AcceleratorRuntime", record: SyncRecord) -> None: ...

    def on_runtime_api(self, runtime: "AcceleratorRuntime", api_name: str) -> None: ...


class RuntimeCallbacks:
    """No-op base implementation of :class:`RuntimeSubscriber`."""

    def on_memory_alloc(self, runtime: "AcceleratorRuntime", obj: MemoryObject) -> None:
        pass

    def on_memory_free(self, runtime: "AcceleratorRuntime", obj: MemoryObject) -> None:
        pass

    def on_memcpy(self, runtime: "AcceleratorRuntime", record: MemcpyRecord) -> None:
        pass

    def on_memset(self, runtime: "AcceleratorRuntime", record: MemsetRecord) -> None:
        pass

    def on_kernel_launch_begin(self, runtime: "AcceleratorRuntime", launch: KernelLaunch) -> None:
        pass

    def on_kernel_launch_end(self, runtime: "AcceleratorRuntime", launch: KernelLaunch) -> None:
        pass

    def on_synchronize(self, runtime: "AcceleratorRuntime", record: SyncRecord) -> None:
        pass

    def on_runtime_api(self, runtime: "AcceleratorRuntime", api_name: str) -> None:
        pass


class AcceleratorRuntime:
    """Shared implementation of the CUDA/HIP-style runtime API.

    Parameters
    ----------
    spec:
        The device to instantiate.
    enable_uvm:
        Whether to create a :class:`~repro.gpusim.uvm.UvmManager` so
        ``malloc_managed`` allocations page in/out.
    uvm_capacity_bytes:
        Optional cap on device memory available to managed pages (used to
        force oversubscription without 80 GB of simulated tensors).
    """

    #: API-name prefix used in emitted runtime-API events ("cuda" or "hip").
    api_prefix = "cuda"

    def __init__(
        self,
        spec: DeviceSpec,
        enable_uvm: bool = False,
        uvm_capacity_bytes: Optional[int] = None,
    ) -> None:
        self.device = GpuDevice(spec=spec)
        self.allocator = DeviceMemoryAllocator(self.device)
        self.streams = StreamManager(self.device)
        self.uvm: Optional[UvmManager] = None
        if enable_uvm:
            self.uvm = UvmManager(self.device, device_capacity_bytes=uvm_capacity_bytes)
        self._subscribers: list[RuntimeSubscriber] = []
        self.kernel_launches: list[KernelLaunch] = []
        self.memcpy_records: list[MemcpyRecord] = []
        self.api_call_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # subscription
    # ------------------------------------------------------------------ #
    @property
    def vendor(self) -> Vendor:
        """Vendor of the underlying device."""
        return self.device.vendor

    def subscribe(self, subscriber: RuntimeSubscriber) -> None:
        """Register a profiling backend to receive runtime callbacks."""
        if subscriber not in self._subscribers:
            self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: RuntimeSubscriber) -> None:
        """Remove a previously registered subscriber."""
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    def _notify(self, method: str, *args: object) -> None:
        for subscriber in list(self._subscribers):
            getattr(subscriber, method)(self, *args)

    def _count_api(self, name: str) -> None:
        full = f"{self.api_prefix}{name}"
        self.api_call_counts[full] = self.api_call_counts.get(full, 0) + 1
        self._notify("on_runtime_api", full)

    # ------------------------------------------------------------------ #
    # memory management
    # ------------------------------------------------------------------ #
    def malloc(self, nbytes: int, tag: str = "") -> MemoryObject:
        """``cudaMalloc`` / ``hipMalloc``: allocate device memory."""
        self._count_api("Malloc")
        obj = self.allocator.allocate(nbytes, MemoryKind.DEVICE, tag=tag)
        self._notify("on_memory_alloc", obj)
        return obj

    def malloc_managed(self, nbytes: int, tag: str = "") -> MemoryObject:
        """``cudaMallocManaged`` / ``hipMallocManaged``: allocate unified memory."""
        self._count_api("MallocManaged")
        obj = self.allocator.allocate(nbytes, MemoryKind.MANAGED, tag=tag)
        if self.uvm is not None:
            self.uvm.register_region(obj.address, obj.size, label=tag or f"object-{obj.object_id}")
        self._notify("on_memory_alloc", obj)
        return obj

    def free(self, obj: MemoryObject) -> None:
        """``cudaFree`` / ``hipFree``."""
        self._count_api("Free")
        self.allocator.free(obj)
        self._notify("on_memory_free", obj)

    def memcpy(
        self,
        size: int,
        kind: MemcpyKind,
        src_address: int = 0,
        dst_address: int = 0,
        stream_id: int = DEFAULT_STREAM_ID,
    ) -> MemcpyRecord:
        """``cudaMemcpy(Async)``: account a copy and notify subscribers."""
        self._count_api("Memcpy")
        duration = self._transfer_duration_ns(size, kind)
        stream = self.streams.get_stream(stream_id)
        start, _end = stream.enqueue(self.device.now(), duration)
        record = MemcpyRecord(
            size=size,
            kind=kind,
            src_address=src_address,
            dst_address=dst_address,
            stream_id=stream_id,
            start_time_ns=start,
            duration_ns=duration,
        )
        self.memcpy_records.append(record)
        self._notify("on_memcpy", record)
        return record

    def memset(
        self,
        address: int,
        size: int,
        value: int = 0,
        stream_id: int = DEFAULT_STREAM_ID,
    ) -> MemsetRecord:
        """``cudaMemset(Async)``."""
        self._count_api("Memset")
        duration = self._transfer_duration_ns(size, MemcpyKind.DEVICE_TO_DEVICE)
        stream = self.streams.get_stream(stream_id)
        start, _end = stream.enqueue(self.device.now(), duration)
        record = MemsetRecord(
            address=address,
            size=size,
            value=value,
            stream_id=stream_id,
            start_time_ns=start,
            duration_ns=duration,
        )
        self._notify("on_memset", record)
        return record

    def _transfer_duration_ns(self, size: int, kind: MemcpyKind) -> int:
        if size <= 0:
            return 0
        if kind is MemcpyKind.DEVICE_TO_DEVICE:
            bandwidth = self.device.spec.memory_bandwidth_gbs * 1e9
        else:
            bandwidth = self.device.spec.pcie_bandwidth_gbs * 1e9
        return int(size / bandwidth * 1e9)

    # ------------------------------------------------------------------ #
    # kernels and synchronisation
    # ------------------------------------------------------------------ #
    def launch_kernel(
        self,
        kernel_name: str,
        grid_config: GridConfig,
        arguments: Sequence[KernelArgument] = (),
        duration_ns: int = 10_000,
        stream_id: int = DEFAULT_STREAM_ID,
        op_context: str = "",
    ) -> KernelLaunch:
        """``cudaLaunchKernel`` / ``hipLaunchKernel``.

        Builds a :class:`KernelLaunch`, places it on the stream timeline,
        notifies subscribers at launch begin and end, and records it.
        """
        self._count_api("LaunchKernel")
        stream = self.streams.get_stream(stream_id)
        start, _end = stream.enqueue(self.device.now(), duration_ns)
        launch = KernelLaunch(
            kernel_name=kernel_name,
            grid_config=grid_config,
            arguments=tuple(arguments),
            device_index=self.device.index,
            stream_id=stream_id,
            duration_ns=duration_ns,
            start_time_ns=start,
            op_context=op_context,
        )
        self._notify("on_kernel_launch_begin", launch)
        # UVM pages referenced by the kernel fault in during execution.
        if self.uvm is not None:
            extra = 0.0
            for arg in launch.accessed_arguments():
                if self.uvm.is_managed_address(arg.address):
                    extra += self.uvm.access_range(arg.address, arg.referenced_bytes)
            if extra > 0:
                launch.duration_ns += int(extra)
                stream.tail_time_ns += int(extra)
        self.kernel_launches.append(launch)
        self._notify("on_kernel_launch_end", launch)
        return launch

    def synchronize(self, stream_id: Optional[int] = None) -> int:
        """``cudaStreamSynchronize`` / ``cudaDeviceSynchronize``."""
        if stream_id is None:
            self._count_api("DeviceSynchronize")
            now = self.streams.synchronize_device()
            record = SyncRecord(scope="device", stream_id=None, time_ns=now)
        else:
            self._count_api("StreamSynchronize")
            now = self.streams.synchronize_stream(stream_id)
            record = SyncRecord(scope="stream", stream_id=stream_id, time_ns=now)
        self._notify("on_synchronize", record)
        return now

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def total_kernel_time_ns(self) -> int:
        """Sum of kernel durations (the uninstrumented execution-time proxy)."""
        return sum(launch.duration_ns for launch in self.kernel_launches)

    def peak_memory_bytes(self) -> int:
        """Peak device-resident bytes observed by the driver allocator."""
        return self.allocator.peak_bytes


class CudaRuntime(AcceleratorRuntime):
    """NVIDIA CUDA runtime facade."""

    api_prefix = "cuda"

    def __init__(self, spec: DeviceSpec, **kwargs: object) -> None:
        if spec.vendor is not Vendor.NVIDIA:
            raise DeviceError(f"CudaRuntime requires an NVIDIA device, got {spec.name!r}")
        super().__init__(spec, **kwargs)  # type: ignore[arg-type]


class HipRuntime(AcceleratorRuntime):
    """AMD HIP runtime facade."""

    api_prefix = "hip"

    def __init__(self, spec: DeviceSpec, **kwargs: object) -> None:
        if spec.vendor is not Vendor.AMD:
            raise DeviceError(f"HipRuntime requires an AMD device, got {spec.name!r}")
        super().__init__(spec, **kwargs)  # type: ignore[arg-type]


def create_runtime(spec: DeviceSpec, **kwargs: object) -> AcceleratorRuntime:
    """Instantiate the vendor-appropriate runtime for ``spec``."""
    if spec.vendor is Vendor.NVIDIA:
        return CudaRuntime(spec, **kwargs)
    return HipRuntime(spec, **kwargs)
