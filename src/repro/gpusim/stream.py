"""Streams, events and a simple asynchronous execution timeline.

GPU work is submitted to *streams*; work in one stream executes in order while
different streams may overlap.  PASTA's coarse-grained events (kernel launch,
memory copy, synchronisation — Table II) carry the stream they were submitted
to, and timeline-style tools need per-stream completion times.

The model tracks, per stream, the device time at which the last enqueued
operation completes.  Synchronisation advances the device clock to the maximum
completion time across the streams being waited on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import StreamError
from repro.gpusim.device import GpuDevice

_stream_ids = itertools.count(1)
_event_ids = itertools.count(1)

#: Identifier of the default (legacy/null) stream.
DEFAULT_STREAM_ID = 0


@dataclass
class Stream:
    """One in-order work queue on a device."""

    device_index: int
    stream_id: int = field(default_factory=lambda: next(_stream_ids))
    #: Device time at which the most recently enqueued work finishes.
    tail_time_ns: int = 0
    #: Number of operations enqueued so far.
    enqueued_ops: int = 0

    def enqueue(self, start_time_ns: int, duration_ns: int) -> tuple[int, int]:
        """Enqueue work; returns its (start, end) times respecting stream order."""
        if duration_ns < 0:
            raise StreamError("operation duration must be non-negative")
        start = max(start_time_ns, self.tail_time_ns)
        end = start + duration_ns
        self.tail_time_ns = end
        self.enqueued_ops += 1
        return start, end


@dataclass
class GpuEvent:
    """A CUDA/HIP event: a marker recorded into a stream."""

    event_id: int = field(default_factory=lambda: next(_event_ids))
    recorded_time_ns: Optional[int] = None

    @property
    def is_recorded(self) -> bool:
        """True once the event has been recorded into a stream."""
        return self.recorded_time_ns is not None


class StreamManager:
    """Per-device collection of streams and events."""

    def __init__(self, device: GpuDevice) -> None:
        self.device = device
        self._streams: dict[int, Stream] = {
            DEFAULT_STREAM_ID: Stream(device_index=device.index, stream_id=DEFAULT_STREAM_ID)
        }
        self._events: dict[int, GpuEvent] = {}

    def create_stream(self) -> Stream:
        """Create a new non-default stream."""
        stream = Stream(device_index=self.device.index)
        self._streams[stream.stream_id] = stream
        return stream

    def destroy_stream(self, stream_id: int) -> None:
        """Destroy a non-default stream."""
        if stream_id == DEFAULT_STREAM_ID:
            raise StreamError("the default stream cannot be destroyed")
        if stream_id not in self._streams:
            raise StreamError(f"unknown stream {stream_id}")
        del self._streams[stream_id]

    def get_stream(self, stream_id: int = DEFAULT_STREAM_ID) -> Stream:
        """Return a stream by id (the default stream if omitted)."""
        try:
            return self._streams[stream_id]
        except KeyError:
            raise StreamError(f"unknown stream {stream_id}") from None

    def streams(self) -> list[Stream]:
        """All live streams on this device."""
        return list(self._streams.values())

    # ------------------------------------------------------------------ #
    # events and synchronisation
    # ------------------------------------------------------------------ #
    def create_event(self) -> GpuEvent:
        """Create an unrecorded event."""
        event = GpuEvent()
        self._events[event.event_id] = event
        return event

    def record_event(self, event: GpuEvent, stream_id: int = DEFAULT_STREAM_ID) -> None:
        """Record ``event`` at the current tail of ``stream_id``."""
        stream = self.get_stream(stream_id)
        event.recorded_time_ns = max(stream.tail_time_ns, self.device.now())

    def elapsed_ns(self, start: GpuEvent, end: GpuEvent) -> int:
        """Time between two recorded events."""
        if not start.is_recorded or not end.is_recorded:
            raise StreamError("both events must be recorded before measuring elapsed time")
        return int(end.recorded_time_ns) - int(start.recorded_time_ns)

    def synchronize_stream(self, stream_id: int = DEFAULT_STREAM_ID) -> int:
        """Block the host until ``stream_id`` drains; returns the new device time."""
        stream = self.get_stream(stream_id)
        if stream.tail_time_ns > self.device.now():
            self.device.advance(stream.tail_time_ns - self.device.now())
        return self.device.now()

    def synchronize_device(self) -> int:
        """Block the host until all streams drain; returns the new device time."""
        latest = max((s.tail_time_ns for s in self._streams.values()), default=0)
        if latest > self.device.now():
            self.device.advance(latest - self.device.now())
        return self.device.now()
