"""Simulated GPU substrate: devices, memory, kernels, streams, UVM, runtimes.

This package stands in for the physical NVIDIA/AMD GPUs and their CUDA/HIP
runtimes used in the paper's evaluation.  See ``DESIGN.md`` for the mapping
between paper dependencies and simulated components.
"""

from repro.gpusim.costmodel import (
    CostModelConfig,
    InstrumentationBackend,
    OverheadModel,
    ProfilingCost,
)
from repro.gpusim.device import (
    A100,
    GiB,
    GpuDevice,
    DeviceSpec,
    MI300X,
    MiB,
    RTX3060,
    Vendor,
    get_device_spec,
)
from repro.gpusim.instruction import InstructionKind, InstructionRecord, MemoryAccessRecord
from repro.gpusim.kernel import (
    Dim3,
    GridConfig,
    KernelArgument,
    KernelLaunch,
    estimate_kernel_duration_ns,
)
from repro.gpusim.memory import DeviceMemoryAllocator, MemoryKind, MemoryObject, align_up
from repro.gpusim.multigpu import DeviceSet, InjectionMethod, ProcessModel, SimulatedProcess
from repro.gpusim.runtime import (
    AcceleratorRuntime,
    CudaRuntime,
    HipRuntime,
    MemcpyKind,
    MemcpyRecord,
    MemsetRecord,
    RuntimeCallbacks,
    SyncRecord,
    create_runtime,
)
from repro.gpusim.stream import DEFAULT_STREAM_ID, GpuEvent, Stream, StreamManager
from repro.gpusim.trace import (
    AccessCountMap,
    AnalysisModel,
    DEFAULT_TRACE_BUFFER_BYTES,
    TRACE_RECORD_BYTES,
    TraceBuffer,
    TraceBufferStats,
)
from repro.gpusim.uvm import UVM_PAGE_BYTES, ManagedRegion, UvmConfig, UvmManager, UvmStats

__all__ = [
    "A100",
    "AcceleratorRuntime",
    "AccessCountMap",
    "AnalysisModel",
    "CostModelConfig",
    "CudaRuntime",
    "DEFAULT_STREAM_ID",
    "DEFAULT_TRACE_BUFFER_BYTES",
    "DeviceMemoryAllocator",
    "DeviceSet",
    "DeviceSpec",
    "Dim3",
    "GiB",
    "GpuDevice",
    "GpuEvent",
    "GridConfig",
    "HipRuntime",
    "InjectionMethod",
    "InstructionKind",
    "InstructionRecord",
    "InstrumentationBackend",
    "KernelArgument",
    "KernelLaunch",
    "ManagedRegion",
    "MemcpyKind",
    "MemcpyRecord",
    "MemoryAccessRecord",
    "MemoryKind",
    "MemoryObject",
    "MemsetRecord",
    "MI300X",
    "MiB",
    "OverheadModel",
    "ProcessModel",
    "ProfilingCost",
    "RTX3060",
    "RuntimeCallbacks",
    "SimulatedProcess",
    "Stream",
    "StreamManager",
    "SyncRecord",
    "TRACE_RECORD_BYTES",
    "TraceBuffer",
    "TraceBufferStats",
    "UVM_PAGE_BYTES",
    "UvmConfig",
    "UvmManager",
    "UvmStats",
    "Vendor",
    "align_up",
    "create_runtime",
    "estimate_kernel_duration_ns",
    "get_device_spec",
]
