"""Device memory objects and the driver-level allocator.

This models the memory layer that ``cudaMalloc`` / ``hipMalloc`` (and their
managed-memory variants) operate on.  Allocations are *memory objects*: a
contiguous virtual address range with a size, a device, and a liveness flag.
The DL framework substrate's caching allocator requests large memory objects
from this layer and sub-divides them into tensors, exactly mirroring how
PyTorch's pool allocator sits on top of ``cudaMalloc`` (Section V-C1 of the
paper).

Addresses are assigned from a growing virtual address space per device, so an
address uniquely identifies the object containing it — this is what the
working-set analysis tool relies on to map memory accesses back to objects.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional

from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.gpusim.device import GpuDevice, MiB


class MemoryKind(str, Enum):
    """How a memory object was allocated."""

    DEVICE = "device"          #: ordinary device memory (cudaMalloc)
    MANAGED = "managed"        #: unified virtual memory (cudaMallocManaged)
    HOST_PINNED = "host_pinned"  #: pinned host memory (cudaMallocHost)


_object_ids = itertools.count(1)

#: Base of the simulated device virtual address space.  Chosen to resemble real
#: CUDA device pointers and to keep device addresses disjoint from 0/NULL.
_DEVICE_VA_BASE = 0x7F00_0000_0000

#: Allocation granularity of the driver-level allocator (512 B, matching the
#: minimum granularity PyTorch's caching allocator assumes from cudaMalloc).
ALLOCATION_ALIGNMENT = 512


def align_up(nbytes: int, alignment: int = ALLOCATION_ALIGNMENT) -> int:
    """Round ``nbytes`` up to a multiple of ``alignment``."""
    if nbytes <= 0:
        return alignment
    return ((nbytes + alignment - 1) // alignment) * alignment


@dataclass
class MemoryObject:
    """A contiguous device allocation.

    Attributes
    ----------
    object_id:
        Monotonic identifier, unique per process.
    address:
        Base virtual address on the owning device.
    size:
        Size in bytes (already aligned).
    kind:
        :class:`MemoryKind` of the allocation.
    device_index:
        Index of the owning :class:`~repro.gpusim.device.GpuDevice`.
    live:
        ``False`` once the object has been freed.
    tag:
        Free-form label (the DL allocator tags its pool segments).
    alloc_time_ns:
        Device clock when the object was created.
    free_time_ns:
        Device clock when it was freed (``None`` while live).
    """

    address: int
    size: int
    kind: MemoryKind
    device_index: int
    object_id: int = field(default_factory=lambda: next(_object_ids))
    live: bool = True
    tag: str = ""
    alloc_time_ns: int = 0
    free_time_ns: Optional[int] = None

    @property
    def end(self) -> int:
        """One past the last valid address of this object."""
        return self.address + self.size

    def contains(self, address: int) -> bool:
        """Return True if ``address`` falls inside this object."""
        return self.address <= address < self.end

    def overlaps(self, start: int, size: int) -> bool:
        """Return True if ``[start, start+size)`` intersects this object."""
        return start < self.end and self.address < start + size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryObject(id={self.object_id}, addr=0x{self.address:x}, "
            f"size={self.size}, kind={self.kind.value}, live={self.live})"
        )


class DeviceMemoryAllocator:
    """Driver-level bump allocator for one device.

    Virtual addresses are never reused within a run (freed ranges remain
    retired), which keeps address→object attribution unambiguous for the
    analyses while still enforcing the device's physical capacity limit for
    *live* bytes.  Managed (UVM) allocations are tracked but do not count
    against device capacity at allocation time — their residency is governed by
    the UVM manager in :mod:`repro.gpusim.uvm`.
    """

    def __init__(self, device: GpuDevice) -> None:
        self.device = device
        self._next_address = _DEVICE_VA_BASE + device.index * (1 << 40)
        self._objects: dict[int, MemoryObject] = {}
        #: Sorted list of (address, object_id) for binary-search lookup.
        self._addr_index: list[tuple[int, int]] = []
        self._live_device_bytes = 0
        self._peak_device_bytes = 0
        self.alloc_count = 0
        self.free_count = 0

    # ------------------------------------------------------------------ #
    # allocation / deallocation
    # ------------------------------------------------------------------ #
    def allocate(
        self,
        nbytes: int,
        kind: MemoryKind = MemoryKind.DEVICE,
        tag: str = "",
    ) -> MemoryObject:
        """Allocate ``nbytes`` (rounded up to the allocation granularity).

        Raises
        ------
        OutOfMemoryError
            If the allocation is device-resident and would exceed the device's
            usable capacity.
        """
        size = align_up(int(nbytes))
        if kind is MemoryKind.DEVICE:
            if self._live_device_bytes + size > self.device.usable_memory_bytes:
                raise OutOfMemoryError(
                    f"device {self.device.index} out of memory: requested {size} bytes, "
                    f"{self.device.usable_memory_bytes - self._live_device_bytes} available"
                )
            self._live_device_bytes += size
            self._peak_device_bytes = max(self._peak_device_bytes, self._live_device_bytes)

        obj = MemoryObject(
            address=self._next_address,
            size=size,
            kind=kind,
            device_index=self.device.index,
            tag=tag,
            alloc_time_ns=self.device.now(),
        )
        self._next_address += size
        # Keep a 2 MiB guard gap between allocations so out-of-bounds addresses
        # never silently resolve to a neighbouring object.
        self._next_address = align_up(self._next_address + 2 * MiB, 2 * MiB)

        self._objects[obj.object_id] = obj
        bisect.insort(self._addr_index, (obj.address, obj.object_id))
        self.alloc_count += 1
        return obj

    def free(self, obj: MemoryObject) -> None:
        """Free a previously allocated object.

        Raises
        ------
        InvalidAddressError
            If the object is unknown or already freed.
        """
        stored = self._objects.get(obj.object_id)
        if stored is None:
            raise InvalidAddressError(f"free of unknown memory object {obj.object_id}")
        if not stored.live:
            raise InvalidAddressError(f"double free of memory object {obj.object_id}")
        stored.live = False
        stored.free_time_ns = self.device.now()
        if stored.kind is MemoryKind.DEVICE:
            self._live_device_bytes -= stored.size
        self.free_count += 1

    def free_by_address(self, address: int) -> MemoryObject:
        """Free the live object whose base address is ``address``."""
        obj = self.lookup(address)
        if obj is None or obj.address != address:
            raise InvalidAddressError(f"free of unallocated address 0x{address:x}")
        self.free(obj)
        return obj

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def lookup(self, address: int, live_only: bool = True) -> Optional[MemoryObject]:
        """Return the object containing ``address`` (or None).

        ``live_only`` controls whether freed objects are still matched; the
        working-set tool needs live objects only, while leak detectors may want
        retired ones.
        """
        idx = bisect.bisect_right(self._addr_index, (address, float("inf"))) - 1
        if idx < 0:
            return None
        _, object_id = self._addr_index[idx]
        obj = self._objects[object_id]
        if not obj.contains(address):
            return None
        if live_only and not obj.live:
            return None
        return obj

    def get(self, object_id: int) -> Optional[MemoryObject]:
        """Return an object by id, or None."""
        return self._objects.get(object_id)

    def live_objects(self) -> Iterator[MemoryObject]:
        """Iterate over currently live objects."""
        return (o for o in self._objects.values() if o.live)

    def all_objects(self) -> Iterator[MemoryObject]:
        """Iterate over every object ever allocated (live and freed)."""
        return iter(self._objects.values())

    @property
    def live_bytes(self) -> int:
        """Bytes of live device-resident (non-managed) memory."""
        return self._live_device_bytes

    @property
    def peak_bytes(self) -> int:
        """Peak of :attr:`live_bytes` over the run."""
        return self._peak_device_bytes

    @property
    def live_managed_bytes(self) -> int:
        """Bytes of live managed (UVM) memory."""
        return sum(o.size for o in self._objects.values() if o.live and o.kind is MemoryKind.MANAGED)

    def footprint_bytes(self) -> int:
        """Total bytes ever allocated (live + freed), i.e. the memory footprint."""
        return sum(o.size for o in self._objects.values())
