"""Kernel launches and deterministic memory-access trace generation.

A *kernel* in the simulator is described by its name and a timing model; a
*kernel launch* binds a kernel to a grid configuration and a set of memory
arguments.  Each argument declares how the kernel touches it (what fraction of
the bytes are referenced, with what read/write mix and access intensity).  From
that declaration the launch can

* report its exact **memory footprint** (bytes of live arguments passed in),
* report its **working set** (bytes actually referenced — the quantity Table V
  of the paper is built on),
* report the **total number of memory-access instructions** it issues (which
  drives the profiling-overhead model of Figures 9/10), and
* generate a **deterministic, sampled stream of access records** for
  fine-grained tools (hotness maps, access-count maps, ...).

Trace generation is seeded from the launch id, so repeated runs of the same
workload produce identical traces — a property the test suite relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.errors import KernelError
from repro.gpusim.instruction import (
    InstructionBatchRecord,
    InstructionKind,
    InstructionRecord,
    MemoryAccessRecord,
)

_launch_ids = itertools.count(1)

#: Cache-line sized chunk used when striding accesses across an argument.
_ACCESS_STRIDE = 128
#: Default access width in bytes (a 4-byte word, the dominant case in SASS).
_DEFAULT_ACCESS_SIZE = 4


@dataclass(frozen=True)
class Dim3:
    """A CUDA/HIP ``dim3`` triple."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise KernelError(f"dim3 components must be >= 1, got {self!r}")

    @property
    def total(self) -> int:
        """Product of the three dimensions."""
        return self.x * self.y * self.z


@dataclass(frozen=True)
class GridConfig:
    """Grid and block dimensions plus launch resources."""

    grid: Dim3 = Dim3()
    block: Dim3 = Dim3(128)
    shared_memory_bytes: int = 0

    @property
    def total_blocks(self) -> int:
        """Number of thread blocks in the grid."""
        return self.grid.total

    @property
    def threads_per_block(self) -> int:
        """Number of threads per block."""
        return self.block.total

    @property
    def total_threads(self) -> int:
        """Total threads launched."""
        return self.total_blocks * self.threads_per_block

    @staticmethod
    def for_elements(num_elements: int, threads_per_block: int = 256) -> "GridConfig":
        """Build a 1-D grid covering ``num_elements`` with the usual ceil-div pattern."""
        if num_elements <= 0:
            raise KernelError("num_elements must be positive")
        blocks = max(1, (num_elements + threads_per_block - 1) // threads_per_block)
        return GridConfig(grid=Dim3(blocks), block=Dim3(threads_per_block))


@dataclass(frozen=True)
class KernelArgument:
    """Describes how a kernel launch uses one memory region.

    Attributes
    ----------
    address / size:
        The region passed to the kernel (typically a tensor's storage or a
        whole memory object).
    accessed_fraction:
        Fraction of the region's bytes the kernel actually references in
        ``[0, 1]``.  A value of ``0`` models an argument that is passed but
        never touched — the case the paper's working-set tool is designed to
        exclude.
    is_read / is_written:
        Directions of the accesses.
    accesses_per_byte:
        Average number of access instructions issued per referenced byte;
        captures reuse (GEMM-like kernels re-read operands many times).
    label:
        Optional human-readable label (e.g. the tensor name).

    Two derived metrics are precomputed at construction and exposed as plain
    attributes: ``referenced_bytes`` (bytes actually referenced) and
    ``access_count`` (access instructions issued against the argument).
    """

    address: int
    size: int
    accessed_fraction: float = 1.0
    is_read: bool = True
    is_written: bool = False
    accesses_per_byte: float = 0.25
    label: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise KernelError("argument size must be non-negative")
        if not 0.0 <= self.accessed_fraction <= 1.0:
            raise KernelError("accessed_fraction must be within [0, 1]")
        if self.accesses_per_byte < 0:
            raise KernelError("accesses_per_byte must be non-negative")
        # referenced_bytes / access_count are pure functions of the frozen
        # fields, re-read several times per launch by the handler, the
        # GPU-resident preprocessing and the tools; they are computed once
        # here as plain attributes (cheaper than property dispatch, and not
        # dataclass fields so eq/repr/init are unaffected).
        referenced = int(round(self.size * self.accessed_fraction))
        object.__setattr__(self, "referenced_bytes", referenced)
        object.__setattr__(
            self,
            "access_count",
            0 if referenced == 0 else max(1, int(round(referenced * self.accesses_per_byte))),
        )


@dataclass
class KernelLaunch:
    """One kernel launch with its grid, arguments and timing.

    The launch is the central event unit of the simulator: the runtime notifies
    profiling backends when a launch begins/ends, and analyses pull footprint,
    working-set and access information from it.
    """

    kernel_name: str
    grid_config: GridConfig
    arguments: Sequence[KernelArgument] = field(default_factory=tuple)
    device_index: int = 0
    stream_id: int = 0
    duration_ns: int = 0
    launch_id: int = field(default_factory=lambda: next(_launch_ids))
    start_time_ns: int = 0
    #: Optional operator / layer context supplied by the DL framework.
    op_context: str = ""

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    @property
    def end_time_ns(self) -> int:
        """Device time at which the launch completes."""
        return self.start_time_ns + self.duration_ns

    # Derived sums are cached: a launch's argument list never changes after
    # construction, and these are re-read by the backend, the handler and
    # every subscribed tool.
    @cached_property
    def memory_footprint_bytes(self) -> int:
        """Bytes of memory passed to the kernel (whether or not referenced)."""
        return sum(arg.size for arg in self.arguments)

    @cached_property
    def working_set_bytes(self) -> int:
        """Bytes of memory the kernel actually references."""
        return sum(arg.referenced_bytes for arg in self.arguments)

    @cached_property
    def total_memory_accesses(self) -> int:
        """Total number of global-memory access instructions issued."""
        return sum(arg.access_count for arg in self.arguments)

    def accessed_arguments(self) -> list[KernelArgument]:
        """Arguments with at least one referenced byte."""
        return [arg for arg in self.arguments if arg.referenced_bytes > 0]

    # ------------------------------------------------------------------ #
    # trace generation
    # ------------------------------------------------------------------ #
    def generate_access_columns(
        self,
        max_records: Optional[int] = 4096,
        seed: Optional[int] = None,
    ) -> "AccessColumns":
        """Sample the launch's memory accesses as parallel numpy arrays.

        This is the producer-side half of the batched fine-grained pipeline:
        the sample is drawn entirely with vectorised numpy operations and
        never materialises a per-record Python object.  The draw order (and
        therefore every sampled value) is identical to what
        :meth:`generate_accesses` produces, so the batched and per-record
        paths stay byte-equivalent.

        Passing ``max_records=None`` removes the cap (used only in tests on
        tiny kernels).
        """
        total = self.total_memory_accesses
        if total == 0:
            return _EMPTY_COLUMNS
        budget = total if max_records is None else min(total, max_records)
        rng = np.random.default_rng(self.launch_id if seed is None else seed)

        accessed = self.accessed_arguments()
        weights = np.array([arg.access_count for arg in accessed], dtype=np.float64)
        weights /= weights.sum()
        per_arg = _apportion(budget, weights)

        threads = max(1, self.grid_config.total_threads)
        blocks = max(1, self.grid_config.total_blocks)
        address_parts: list[np.ndarray] = []
        thread_parts: list[np.ndarray] = []
        block_parts: list[np.ndarray] = []
        write_parts: list[np.ndarray] = []
        for arg, count in zip(accessed, per_arg):
            if count == 0:
                continue
            span = max(_ACCESS_STRIDE, arg.referenced_bytes)
            offsets = rng.integers(0, span, size=count, dtype=np.int64)
            offsets = (offsets // _ACCESS_STRIDE) * _ACCESS_STRIDE
            thread_ids = rng.integers(0, threads, size=count, dtype=np.int64)
            block_ids = rng.integers(0, blocks, size=count, dtype=np.int64)
            write_flags = rng.random(count) < _write_probability(arg)
            address_parts.append(arg.address + offsets % max(1, arg.size))
            thread_parts.append(thread_ids)
            block_parts.append(block_ids)
            write_parts.append(write_flags)
        if not address_parts:
            return _EMPTY_COLUMNS
        return AccessColumns(
            addresses=np.concatenate(address_parts),
            thread_indices=np.concatenate(thread_parts),
            block_indices=np.concatenate(block_parts),
            write_flags=np.concatenate(write_parts),
        )

    def generate_accesses(
        self,
        max_records: Optional[int] = 4096,
        seed: Optional[int] = None,
    ) -> list[MemoryAccessRecord]:
        """Generate a deterministic, representative sample of access records.

        The total number of accesses a large kernel issues can reach hundreds
        of millions; materialising them all would be pointless for analysis
        quality and ruinous for simulation time.  Instead the simulator
        produces up to ``max_records`` records whose *address coverage*
        (which arguments, which regions within each argument) matches the
        declared behaviour, while :attr:`total_memory_accesses` preserves the
        true volume for overhead accounting.

        Per-record view of :meth:`generate_access_columns` — same sample,
        one :class:`MemoryAccessRecord` per access.
        """
        columns = self.generate_access_columns(max_records=max_records, seed=seed)
        launch_id = self.launch_id
        return [
            MemoryAccessRecord(
                address=address,
                size=_DEFAULT_ACCESS_SIZE,
                is_write=is_write,
                thread_index=thread,
                block_index=block,
                kernel_launch_id=launch_id,
            )
            for address, thread, block, is_write in zip(
                columns.addresses.tolist(),
                columns.thread_indices.tolist(),
                columns.block_indices.tolist(),
                columns.write_flags.tolist(),
            )
        ]

    def generate_instruction_batch(
        self,
        max_records: Optional[int] = 4096,
        include_block_markers: bool = True,
        allowed_kinds: Optional[frozenset[InstructionKind]] = None,
    ) -> InstructionBatchRecord:
        """Generate the launch's device records as one columnar batch.

        Produces the same record stream as :meth:`generate_instructions`
        (block-entry markers, sampled memory accesses, block-exit markers, in
        that order), restricted to ``allowed_kinds`` when given — the
        backend-side instrumentability filter — but as a single
        :class:`InstructionBatchRecord` instead of one object per record.
        """
        blocks = self.grid_config.total_blocks
        marker_blocks = min(blocks, 64) if include_block_markers else 0
        want_entry = allowed_kinds is None or InstructionKind.BLOCK_ENTRY in allowed_kinds
        want_exit = allowed_kinds is None or InstructionKind.BLOCK_EXIT in allowed_kinds
        want_loads = allowed_kinds is None or InstructionKind.GLOBAL_LOAD in allowed_kinds
        want_stores = allowed_kinds is None or InstructionKind.GLOBAL_STORE in allowed_kinds

        addresses: tuple[int, ...] = ()
        write_flags: tuple[bool, ...] = ()
        thread_indices: tuple[int, ...] = ()
        block_indices: tuple[int, ...] = ()
        if want_loads or want_stores:
            columns = self.generate_access_columns(max_records=max_records)
            if len(columns.addresses):
                if want_loads and want_stores:
                    kept = columns
                else:
                    mask = columns.write_flags if want_stores else ~columns.write_flags
                    kept = AccessColumns(
                        addresses=columns.addresses[mask],
                        thread_indices=columns.thread_indices[mask],
                        block_indices=columns.block_indices[mask],
                        write_flags=columns.write_flags[mask],
                    )
                addresses = tuple(kept.addresses.tolist())
                write_flags = tuple(kept.write_flags.tolist())
                thread_indices = tuple(kept.thread_indices.tolist())
                block_indices = tuple(kept.block_indices.tolist())

        marker_range = tuple(range(marker_blocks))
        marker_threads = (0,) * marker_blocks
        return InstructionBatchRecord(
            kernel_launch_id=self.launch_id,
            device_index=self.device_index,
            pre_kinds=(InstructionKind.BLOCK_ENTRY,) * marker_blocks if want_entry else (),
            pre_thread_indices=marker_threads if want_entry else (),
            pre_block_indices=marker_range if want_entry else (),
            addresses=addresses,
            sizes=(_DEFAULT_ACCESS_SIZE,) * len(addresses),
            write_flags=write_flags,
            access_thread_indices=thread_indices,
            access_block_indices=block_indices,
            post_kinds=(InstructionKind.BLOCK_EXIT,) * marker_blocks if want_exit else (),
            post_thread_indices=marker_threads if want_exit else (),
            post_block_indices=marker_range if want_exit else (),
        )

    def generate_instructions(
        self,
        max_records: Optional[int] = 4096,
        include_block_markers: bool = True,
    ) -> list[InstructionRecord]:
        """Generate instruction records: block markers, barriers and memory ops."""
        return list(
            self.generate_instruction_batch(
                max_records=max_records,
                include_block_markers=include_block_markers,
            ).iter_records()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelLaunch(id={self.launch_id}, kernel={self.kernel_name!r}, "
            f"grid={self.grid_config.grid}, block={self.grid_config.block}, "
            f"args={len(self.arguments)})"
        )


class AccessColumns(NamedTuple):
    """Parallel numpy arrays describing one launch's sampled accesses."""

    addresses: np.ndarray
    thread_indices: np.ndarray
    block_indices: np.ndarray
    write_flags: np.ndarray


_EMPTY_COLUMNS = AccessColumns(
    addresses=np.empty(0, dtype=np.int64),
    thread_indices=np.empty(0, dtype=np.int64),
    block_indices=np.empty(0, dtype=np.int64),
    write_flags=np.empty(0, dtype=bool),
)


def _write_probability(arg: KernelArgument) -> float:
    """Probability that an individual access against ``arg`` is a store."""
    if arg.is_written and arg.is_read:
        return 0.5
    if arg.is_written:
        return 1.0
    return 0.0


def _apportion(total: int, weights: np.ndarray) -> list[int]:
    """Split ``total`` into integer shares proportional to ``weights``.

    Uses the largest-remainder method so the shares always sum to ``total``.
    """
    raw = weights * total
    shares = np.floor(raw).astype(int)
    remainder = total - int(shares.sum())
    if remainder > 0:
        fractional = raw - shares
        for idx in np.argsort(-fractional)[:remainder]:
            shares[idx] += 1
    return shares.tolist()


def estimate_kernel_duration_ns(
    flop_count: float,
    bytes_moved: float,
    device_tflops: float = 19.5,
    device_bandwidth_gbs: float = 2039.0,
    launch_overhead_ns: int = 4_000,
) -> int:
    """Roofline-style duration estimate for a kernel.

    The duration is the launch overhead plus the maximum of the compute time
    (``flop_count`` at ``device_tflops``) and the memory time (``bytes_moved``
    at ``device_bandwidth_gbs``).  Used by the DL framework substrate when it
    lowers operators into kernel launches.
    """
    compute_ns = flop_count / (device_tflops * 1e12) * 1e9 if device_tflops > 0 else 0.0
    memory_ns = bytes_moved / (device_bandwidth_gbs * 1e9) * 1e9 if device_bandwidth_gbs > 0 else 0.0
    return int(launch_overhead_ns + max(compute_ns, memory_ns))
