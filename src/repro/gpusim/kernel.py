"""Kernel launches and deterministic memory-access trace generation.

A *kernel* in the simulator is described by its name and a timing model; a
*kernel launch* binds a kernel to a grid configuration and a set of memory
arguments.  Each argument declares how the kernel touches it (what fraction of
the bytes are referenced, with what read/write mix and access intensity).  From
that declaration the launch can

* report its exact **memory footprint** (bytes of live arguments passed in),
* report its **working set** (bytes actually referenced — the quantity Table V
  of the paper is built on),
* report the **total number of memory-access instructions** it issues (which
  drives the profiling-overhead model of Figures 9/10), and
* generate a **deterministic, sampled stream of access records** for
  fine-grained tools (hotness maps, access-count maps, ...).

Trace generation is seeded from the launch id, so repeated runs of the same
workload produce identical traces — a property the test suite relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import KernelError
from repro.gpusim.instruction import InstructionKind, InstructionRecord, MemoryAccessRecord

_launch_ids = itertools.count(1)

#: Cache-line sized chunk used when striding accesses across an argument.
_ACCESS_STRIDE = 128
#: Default access width in bytes (a 4-byte word, the dominant case in SASS).
_DEFAULT_ACCESS_SIZE = 4


@dataclass(frozen=True)
class Dim3:
    """A CUDA/HIP ``dim3`` triple."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise KernelError(f"dim3 components must be >= 1, got {self!r}")

    @property
    def total(self) -> int:
        """Product of the three dimensions."""
        return self.x * self.y * self.z


@dataclass(frozen=True)
class GridConfig:
    """Grid and block dimensions plus launch resources."""

    grid: Dim3 = Dim3()
    block: Dim3 = Dim3(128)
    shared_memory_bytes: int = 0

    @property
    def total_blocks(self) -> int:
        """Number of thread blocks in the grid."""
        return self.grid.total

    @property
    def threads_per_block(self) -> int:
        """Number of threads per block."""
        return self.block.total

    @property
    def total_threads(self) -> int:
        """Total threads launched."""
        return self.total_blocks * self.threads_per_block

    @staticmethod
    def for_elements(num_elements: int, threads_per_block: int = 256) -> "GridConfig":
        """Build a 1-D grid covering ``num_elements`` with the usual ceil-div pattern."""
        if num_elements <= 0:
            raise KernelError("num_elements must be positive")
        blocks = max(1, (num_elements + threads_per_block - 1) // threads_per_block)
        return GridConfig(grid=Dim3(blocks), block=Dim3(threads_per_block))


@dataclass(frozen=True)
class KernelArgument:
    """Describes how a kernel launch uses one memory region.

    Attributes
    ----------
    address / size:
        The region passed to the kernel (typically a tensor's storage or a
        whole memory object).
    accessed_fraction:
        Fraction of the region's bytes the kernel actually references in
        ``[0, 1]``.  A value of ``0`` models an argument that is passed but
        never touched — the case the paper's working-set tool is designed to
        exclude.
    is_read / is_written:
        Directions of the accesses.
    accesses_per_byte:
        Average number of access instructions issued per referenced byte;
        captures reuse (GEMM-like kernels re-read operands many times).
    label:
        Optional human-readable label (e.g. the tensor name).
    """

    address: int
    size: int
    accessed_fraction: float = 1.0
    is_read: bool = True
    is_written: bool = False
    accesses_per_byte: float = 0.25
    label: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise KernelError("argument size must be non-negative")
        if not 0.0 <= self.accessed_fraction <= 1.0:
            raise KernelError("accessed_fraction must be within [0, 1]")
        if self.accesses_per_byte < 0:
            raise KernelError("accesses_per_byte must be non-negative")

    @property
    def referenced_bytes(self) -> int:
        """Bytes of this argument actually referenced by the kernel."""
        return int(round(self.size * self.accessed_fraction))

    @property
    def access_count(self) -> int:
        """Number of access instructions issued against this argument."""
        if self.referenced_bytes == 0:
            return 0
        return max(1, int(round(self.referenced_bytes * self.accesses_per_byte)))


@dataclass
class KernelLaunch:
    """One kernel launch with its grid, arguments and timing.

    The launch is the central event unit of the simulator: the runtime notifies
    profiling backends when a launch begins/ends, and analyses pull footprint,
    working-set and access information from it.
    """

    kernel_name: str
    grid_config: GridConfig
    arguments: Sequence[KernelArgument] = field(default_factory=tuple)
    device_index: int = 0
    stream_id: int = 0
    duration_ns: int = 0
    launch_id: int = field(default_factory=lambda: next(_launch_ids))
    start_time_ns: int = 0
    #: Optional operator / layer context supplied by the DL framework.
    op_context: str = ""

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    @property
    def end_time_ns(self) -> int:
        """Device time at which the launch completes."""
        return self.start_time_ns + self.duration_ns

    @property
    def memory_footprint_bytes(self) -> int:
        """Bytes of memory passed to the kernel (whether or not referenced)."""
        return sum(arg.size for arg in self.arguments)

    @property
    def working_set_bytes(self) -> int:
        """Bytes of memory the kernel actually references."""
        return sum(arg.referenced_bytes for arg in self.arguments)

    @property
    def total_memory_accesses(self) -> int:
        """Total number of global-memory access instructions issued."""
        return sum(arg.access_count for arg in self.arguments)

    def accessed_arguments(self) -> list[KernelArgument]:
        """Arguments with at least one referenced byte."""
        return [arg for arg in self.arguments if arg.referenced_bytes > 0]

    # ------------------------------------------------------------------ #
    # trace generation
    # ------------------------------------------------------------------ #
    def generate_accesses(
        self,
        max_records: Optional[int] = 4096,
        seed: Optional[int] = None,
    ) -> list[MemoryAccessRecord]:
        """Generate a deterministic, representative sample of access records.

        The total number of accesses a large kernel issues can reach hundreds
        of millions; materialising them all would be pointless for analysis
        quality and ruinous for simulation time.  Instead the simulator
        produces up to ``max_records`` records whose *address coverage*
        (which arguments, which regions within each argument) matches the
        declared behaviour, while :attr:`total_memory_accesses` preserves the
        true volume for overhead accounting.

        Passing ``max_records=None`` removes the cap (used only in tests on
        tiny kernels).
        """
        total = self.total_memory_accesses
        if total == 0:
            return []
        budget = total if max_records is None else min(total, max_records)
        rng = np.random.default_rng(self.launch_id if seed is None else seed)

        records: list[MemoryAccessRecord] = []
        accessed = self.accessed_arguments()
        weights = np.array([arg.access_count for arg in accessed], dtype=np.float64)
        weights /= weights.sum()
        per_arg = _apportion(budget, weights)

        threads = max(1, self.grid_config.total_threads)
        blocks = max(1, self.grid_config.total_blocks)
        for arg, count in zip(accessed, per_arg):
            if count == 0:
                continue
            span = max(_ACCESS_STRIDE, arg.referenced_bytes)
            offsets = rng.integers(0, span, size=count, dtype=np.int64)
            offsets = (offsets // _ACCESS_STRIDE) * _ACCESS_STRIDE
            thread_ids = rng.integers(0, threads, size=count, dtype=np.int64)
            block_ids = rng.integers(0, blocks, size=count, dtype=np.int64)
            write_flags = rng.random(count) < _write_probability(arg)
            for off, tid, bid, is_write in zip(offsets, thread_ids, block_ids, write_flags):
                address = arg.address + int(off) % max(1, arg.size)
                records.append(
                    MemoryAccessRecord(
                        address=address,
                        size=_DEFAULT_ACCESS_SIZE,
                        is_write=bool(is_write),
                        thread_index=int(tid),
                        block_index=int(bid),
                        kernel_launch_id=self.launch_id,
                    )
                )
        return records

    def generate_instructions(
        self,
        max_records: Optional[int] = 4096,
        include_block_markers: bool = True,
    ) -> list[InstructionRecord]:
        """Generate instruction records: block markers, barriers and memory ops."""
        records: list[InstructionRecord] = []
        blocks = self.grid_config.total_blocks
        marker_blocks = min(blocks, 64) if include_block_markers else 0
        for block in range(marker_blocks):
            records.append(
                InstructionRecord(
                    kind=InstructionKind.BLOCK_ENTRY,
                    block_index=block,
                    kernel_launch_id=self.launch_id,
                )
            )
        for access in self.generate_accesses(max_records=max_records):
            kind = InstructionKind.GLOBAL_STORE if access.is_write else InstructionKind.GLOBAL_LOAD
            records.append(
                InstructionRecord(
                    kind=kind,
                    thread_index=access.thread_index,
                    block_index=access.block_index,
                    address=access.address,
                    size=access.size,
                    kernel_launch_id=self.launch_id,
                )
            )
        for block in range(marker_blocks):
            records.append(
                InstructionRecord(
                    kind=InstructionKind.BLOCK_EXIT,
                    block_index=block,
                    kernel_launch_id=self.launch_id,
                )
            )
        return records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelLaunch(id={self.launch_id}, kernel={self.kernel_name!r}, "
            f"grid={self.grid_config.grid}, block={self.grid_config.block}, "
            f"args={len(self.arguments)})"
        )


def _write_probability(arg: KernelArgument) -> float:
    """Probability that an individual access against ``arg`` is a store."""
    if arg.is_written and arg.is_read:
        return 0.5
    if arg.is_written:
        return 1.0
    return 0.0


def _apportion(total: int, weights: np.ndarray) -> list[int]:
    """Split ``total`` into integer shares proportional to ``weights``.

    Uses the largest-remainder method so the shares always sum to ``total``.
    """
    raw = weights * total
    shares = np.floor(raw).astype(int)
    remainder = total - int(shares.sum())
    if remainder > 0:
        fractional = raw - shares
        for idx in np.argsort(-fractional)[:remainder]:
            shares[idx] += 1
    return shares.tolist()


def estimate_kernel_duration_ns(
    flop_count: float,
    bytes_moved: float,
    device_tflops: float = 19.5,
    device_bandwidth_gbs: float = 2039.0,
    launch_overhead_ns: int = 4_000,
) -> int:
    """Roofline-style duration estimate for a kernel.

    The duration is the launch overhead plus the maximum of the compute time
    (``flop_count`` at ``device_tflops``) and the memory time (``bytes_moved``
    at ``device_bandwidth_gbs``).  Used by the DL framework substrate when it
    lowers operators into kernel launches.
    """
    compute_ns = flop_count / (device_tflops * 1e12) * 1e9 if device_tflops > 0 else 0.0
    memory_ns = bytes_moved / (device_bandwidth_gbs * 1e9) * 1e9 if device_bandwidth_gbs > 0 else 0.0
    return int(launch_overhead_ns + max(compute_ns, memory_ns))
