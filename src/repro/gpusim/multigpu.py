"""Multi-GPU device sets and the process/injection model.

Section IV-D of the paper discusses two multi-GPU concerns PASTA handles:

1. Events must be attributed to the correct GPU via the device index exposed by
   the vendor profiling APIs.  Here, a :class:`DeviceSet` owns one runtime per
   device, and every event already carries its ``device_index``.
2. Multi-GPU launchers spawn auxiliary helper processes (e.g. Megatron-LM's JIT
   compilation workers) that never create a CUDA context.  Injecting the
   profiler via ``LD_PRELOAD`` instruments them anyway, producing noise and
   sometimes errors; PASTA instead uses ``CUDA_INJECTION64_PATH`` so only
   processes that initialise a context get instrumented.  The
   :class:`ProcessModel` reproduces that selection logic so it can be tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from repro.errors import DeviceError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.runtime import AcceleratorRuntime, create_runtime


class InjectionMethod(str, Enum):
    """How the profiler shared library is injected into application processes."""

    LD_PRELOAD = "ld_preload"
    CUDA_INJECTION64_PATH = "cuda_injection64_path"


@dataclass
class SimulatedProcess:
    """One OS process in a multi-GPU launch."""

    pid: int
    name: str
    #: Whether the process ever initialises a CUDA/HIP context.  Auxiliary
    #: helpers (JIT compilers, data loaders) do not.
    creates_gpu_context: bool
    instrumented: bool = False


class ProcessModel:
    """Decides which processes the profiler attaches to, per injection method."""

    def __init__(self, injection: InjectionMethod = InjectionMethod.CUDA_INJECTION64_PATH) -> None:
        self.injection = injection
        self.processes: list[SimulatedProcess] = []
        self._next_pid = 1000

    def spawn(self, name: str, creates_gpu_context: bool) -> SimulatedProcess:
        """Spawn a process and apply the injection rule."""
        proc = SimulatedProcess(pid=self._next_pid, name=name, creates_gpu_context=creates_gpu_context)
        self._next_pid += 1
        if self.injection is InjectionMethod.LD_PRELOAD:
            proc.instrumented = True
        else:
            proc.instrumented = creates_gpu_context
        self.processes.append(proc)
        return proc

    def instrumented_processes(self) -> list[SimulatedProcess]:
        """Processes the profiler actually attached to."""
        return [p for p in self.processes if p.instrumented]

    def spurious_instrumentations(self) -> list[SimulatedProcess]:
        """Instrumented processes that never create a GPU context (pure noise)."""
        return [p for p in self.processes if p.instrumented and not p.creates_gpu_context]


class DeviceSet:
    """A group of simulated GPUs used by one multi-GPU job."""

    def __init__(
        self,
        specs: Sequence[DeviceSpec],
        enable_uvm: bool = False,
        uvm_capacity_bytes: Optional[int] = None,
    ) -> None:
        if not specs:
            raise DeviceError("a DeviceSet needs at least one device")
        self.runtimes: list[AcceleratorRuntime] = [
            create_runtime(spec, enable_uvm=enable_uvm, uvm_capacity_bytes=uvm_capacity_bytes)
            for spec in specs
        ]

    def __len__(self) -> int:
        return len(self.runtimes)

    def __getitem__(self, rank: int) -> AcceleratorRuntime:
        return self.runtimes[rank]

    def __iter__(self):
        return iter(self.runtimes)

    @property
    def device_indices(self) -> list[int]:
        """Global device indices of the runtimes in this set."""
        return [rt.device.index for rt in self.runtimes]

    def rank_of_device_index(self, device_index: int) -> int:
        """Map a global device index back to the local rank within the set."""
        for rank, rt in enumerate(self.runtimes):
            if rt.device.index == device_index:
                return rank
        raise DeviceError(f"device index {device_index} is not part of this DeviceSet")

    def synchronize_all(self) -> None:
        """Synchronise every device in the set."""
        for rt in self.runtimes:
            rt.synchronize()
