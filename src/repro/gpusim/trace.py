"""Device-side trace buffers and the two collect/analyze execution models.

Figure 2 of the paper contrasts two ways of consuming fine-grained device
traces:

* **Conventional (CPU-side analysis)** — instrumentation appends access records
  into a fixed-size device buffer; when the buffer fills, the kernel *stalls*
  until the host fetches and flushes it, then resumes.  Analysis happens on a
  (typically single) CPU thread after transfer.
* **PASTA (GPU-resident collect-and-analyze)** — groups of GPU analysis threads
  reduce records in place (e.g. into a per-object access-count map), so the
  kernel never stalls and only a small result buffer crosses PCIe at kernel
  completion.

This module models both.  The buffers do not store every record individually
(the volumes would be enormous); they account for record counts, buffer-full
stall rounds, transferred bytes and analysis work, which is exactly what the
overhead model (Figures 9/10) needs, while exposing the sampled records for
tools that inspect addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.gpusim.device import MiB


class AnalysisModel(str, Enum):
    """Where fine-grained analysis runs (Figure 2 / Figure 8 of the paper)."""

    GPU_RESIDENT = "gpu_resident"   #: PASTA's collect-and-analyze on the device
    CPU_SIDE = "cpu_side"           #: conventional buffer-transfer-then-analyze


#: Size of one packed access record in the device trace buffer, matching the
#: layout used by NVBit's mem_trace tool (address + metadata).
TRACE_RECORD_BYTES = 24

#: Default device trace buffer capacity (the paper notes PASTA reserves ~4 MB).
DEFAULT_TRACE_BUFFER_BYTES = 4 * MiB


@dataclass
class TraceBufferStats:
    """Accounting for one kernel launch worth of trace collection.

    Attributes
    ----------
    records:
        Number of access records produced by the kernel.
    buffer_capacity_records:
        How many records fit in the device buffer at once.
    flush_rounds:
        How many times the buffer filled and had to be drained to the host
        (CPU-side model only; the GPU-resident model never flushes mid-kernel).
    transferred_bytes:
        Bytes copied across PCIe for this launch (full trace for the CPU-side
        model, a small result map for the GPU-resident model).
    """

    records: int = 0
    buffer_capacity_records: int = DEFAULT_TRACE_BUFFER_BYTES // TRACE_RECORD_BYTES
    flush_rounds: int = 0
    transferred_bytes: int = 0


@dataclass
class TraceBuffer:
    """A device-resident trace buffer shared by one instrumented kernel launch."""

    capacity_bytes: int = DEFAULT_TRACE_BUFFER_BYTES
    record_bytes: int = TRACE_RECORD_BYTES

    @property
    def capacity_records(self) -> int:
        """Number of records the buffer can hold before it must be drained."""
        return max(1, self.capacity_bytes // self.record_bytes)

    def collect(
        self,
        total_records: int,
        model: AnalysisModel,
        result_map_bytes: int = 64 * 1024,
    ) -> TraceBufferStats:
        """Account for collecting ``total_records`` under the given model.

        For the CPU-side model every record is staged in the buffer and
        transferred; the number of flush rounds is the number of times the
        buffer fills (each one a kernel stall in Figure 2a).  For the
        GPU-resident model only the reduced result map (default 64 KiB — a
        per-object access-count table) is transferred once at kernel end.
        """
        stats = TraceBufferStats(
            records=total_records,
            buffer_capacity_records=self.capacity_records,
        )
        if total_records <= 0:
            return stats
        if model is AnalysisModel.CPU_SIDE:
            stats.flush_rounds = (total_records + self.capacity_records - 1) // self.capacity_records
            stats.transferred_bytes = total_records * self.record_bytes
        else:
            stats.flush_rounds = 0
            stats.transferred_bytes = min(result_map_bytes, total_records * self.record_bytes)
        return stats


@dataclass
class AccessCountMap:
    """The GPU-resident result structure: per-object access counts.

    PASTA's memory-characterisation tool keeps a map from memory object to the
    number of accesses that hit it.  On real hardware this map lives in device
    memory and is updated by analysis threads; here it is a plain dictionary
    keyed by object id.
    """

    counts: dict[int, int] = field(default_factory=dict)

    def record(self, object_id: int, count: int = 1) -> None:
        """Add ``count`` accesses attributed to ``object_id``."""
        self.counts[object_id] = self.counts.get(object_id, 0) + count

    def accessed_object_ids(self) -> list[int]:
        """Object ids with at least one recorded access."""
        return [oid for oid, count in self.counts.items() if count > 0]

    def total_accesses(self) -> int:
        """Sum of all recorded access counts."""
        return sum(self.counts.values())

    def merge(self, other: "AccessCountMap") -> None:
        """Merge another map into this one (used across kernel launches)."""
        for oid, count in other.counts.items():
            self.record(oid, count)
