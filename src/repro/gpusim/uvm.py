"""Unified Virtual Memory (UVM) simulation: pages, faults, migration, prefetch.

NVIDIA's UVM exposes a single address space shared by CPU and GPU; pages
migrate on demand when the GPU faults on a non-resident address, and the pool
can be *oversubscribed* — the managed footprint may exceed device capacity, in
which case resident pages must be evicted to make room.  Section V-C of the
paper builds a UVM prefetching tool on top of PASTA and compares object-level
and tensor-level prefetch granularities under no oversubscription (Figure 11)
and 3x oversubscription (Figure 12).

This module provides the substrate those experiments run on:

* a page-granular residency map over managed allocations,
* a fault-driven migration path with per-fault latency plus transfer time,
* a batched prefetch path (``cudaMemPrefetchAsync``-like) that skips fault
  handling and partially overlaps with compute,
* an LRU eviction policy with optional pinning (``cudaMemAdvise``), and
* counters for faults, migrations, evictions and thrashing that tools consume.

Timing constants follow published UVM measurements in spirit (tens of
microseconds per fault group, PCIe-bound transfers); tests assert relative
behaviour, not absolute times.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import UvmError
from repro.gpusim.device import GpuDevice, MiB

#: UVM migrates data in 2 MiB blocks on modern GPUs; the paper's hotness tool
#: also uses 2 MB blocks (Figure 13), so this is the page granularity.
UVM_PAGE_BYTES = 2 * MiB


@dataclass(frozen=True)
class UvmConfig:
    """Timing and policy constants of the UVM model."""

    page_bytes: int = UVM_PAGE_BYTES
    #: Fixed cost of servicing one GPU page-fault group (driver round trip).
    fault_latency_ns: float = 25_000.0
    #: Fraction of prefetch transfer time hidden behind compute.  Prefetches
    #: are issued ahead of the kernel on a separate stream, so most of their
    #: transfer overlaps with useful work — as long as device memory is not
    #: under pressure.
    prefetch_overlap: float = 0.85
    #: Overlap achieved when a prefetch has to evict resident pages to make
    #: room: the prefetch stream then contends with eviction write-backs and
    #: demand migrations, so very little of it hides behind compute.  This is
    #: the mechanism behind the object-level prefetch slowdown in Figure 12.
    prefetch_overlap_under_pressure: float = 0.2
    #: Fraction of eviction write-back time hidden behind compute.
    eviction_overlap: float = 0.5
    #: Probability-like fraction of evicted-and-refaulted pages that are dirty
    #: and must be written back before reuse.
    dirty_fraction: float = 0.5


@dataclass
class UvmStats:
    """Counters accumulated by the UVM manager."""

    page_faults: int = 0
    pages_migrated_on_fault: int = 0
    pages_prefetched: int = 0
    pages_evicted: int = 0
    refaults: int = 0
    fault_time_ns: float = 0.0
    migration_time_ns: float = 0.0
    prefetch_time_ns: float = 0.0
    eviction_time_ns: float = 0.0

    @property
    def total_overhead_ns(self) -> float:
        """Total UVM-induced time added to execution."""
        return self.fault_time_ns + self.migration_time_ns + self.prefetch_time_ns + self.eviction_time_ns

    def snapshot(self) -> dict[str, float]:
        """Plain-dict copy for reports."""
        return {
            "page_faults": self.page_faults,
            "pages_migrated_on_fault": self.pages_migrated_on_fault,
            "pages_prefetched": self.pages_prefetched,
            "pages_evicted": self.pages_evicted,
            "refaults": self.refaults,
            "fault_time_ns": self.fault_time_ns,
            "migration_time_ns": self.migration_time_ns,
            "prefetch_time_ns": self.prefetch_time_ns,
            "eviction_time_ns": self.eviction_time_ns,
        }


@dataclass
class ManagedRegion:
    """One managed allocation registered with the UVM manager."""

    address: int
    size: int
    label: str = ""

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.address + self.size

    def contains(self, address: int) -> bool:
        """True if ``address`` lies inside the region."""
        return self.address <= address < self.end


class UvmManager:
    """Page-granular residency manager for one device's managed memory."""

    def __init__(
        self,
        device: GpuDevice,
        device_capacity_bytes: Optional[int] = None,
        config: Optional[UvmConfig] = None,
    ) -> None:
        self.device = device
        self.config = config or UvmConfig()
        #: Device bytes available for managed pages.  The paper limits this to
        #: control the oversubscription factor; tests do the same.
        self.device_capacity_bytes = (
            device.usable_memory_bytes if device_capacity_bytes is None else int(device_capacity_bytes)
        )
        if self.device_capacity_bytes <= 0:
            raise UvmError("device capacity for managed memory must be positive")
        self._regions: list[ManagedRegion] = []
        #: page id -> True, ordered by recency (LRU at the front).
        self._resident: "OrderedDict[int, bool]" = OrderedDict()
        self._pinned: set[int] = set()
        self._ever_evicted: set[int] = set()
        self.stats = UvmStats()

    # ------------------------------------------------------------------ #
    # region registration
    # ------------------------------------------------------------------ #
    def register_region(self, address: int, size: int, label: str = "") -> ManagedRegion:
        """Register a managed allocation so its pages can fault/migrate."""
        if size <= 0:
            raise UvmError("managed region size must be positive")
        region = ManagedRegion(address=address, size=size, label=label)
        self._regions.append(region)
        return region

    def unregister_region(self, region: ManagedRegion) -> None:
        """Remove a region and drop residency of its pages."""
        try:
            self._regions.remove(region)
        except ValueError:
            raise UvmError("region was not registered") from None
        for page in self._pages_in_range(region.address, region.size):
            self._resident.pop(page, None)
            self._pinned.discard(page)

    @property
    def managed_bytes(self) -> int:
        """Total bytes of registered managed memory."""
        return sum(r.size for r in self._regions)

    def is_managed_address(self, address: int) -> bool:
        """True if ``address`` falls inside any registered managed region."""
        return any(region.contains(address) for region in self._regions)

    @property
    def oversubscription_factor(self) -> float:
        """Managed footprint divided by device capacity."""
        if self.device_capacity_bytes == 0:
            return float("inf")
        return self.managed_bytes / self.device_capacity_bytes

    # ------------------------------------------------------------------ #
    # page helpers
    # ------------------------------------------------------------------ #
    def page_id(self, address: int) -> int:
        """Page index containing ``address``."""
        return address // self.config.page_bytes

    def _pages_in_range(self, address: int, size: int) -> range:
        if size <= 0:
            return range(0)
        first = self.page_id(address)
        last = self.page_id(address + size - 1)
        return range(first, last + 1)

    @property
    def resident_pages(self) -> int:
        """Number of pages currently resident on the device."""
        return len(self._resident)

    @property
    def capacity_pages(self) -> int:
        """How many managed pages fit on the device at once."""
        return max(1, self.device_capacity_bytes // self.config.page_bytes)

    def is_resident(self, address: int) -> bool:
        """True if the page containing ``address`` is resident on the device."""
        return self.page_id(address) in self._resident

    def _transfer_ns(self, nbytes: float) -> float:
        bandwidth = self.device.spec.pcie_bandwidth_gbs * 1e9
        return nbytes / bandwidth * 1e9

    # ------------------------------------------------------------------ #
    # residency transitions
    # ------------------------------------------------------------------ #
    def _make_room(self, pages_needed: int) -> float:
        """Evict LRU pages until ``pages_needed`` fit; returns eviction time."""
        eviction_ns = 0.0
        while self.resident_pages + pages_needed > self.capacity_pages:
            victim = self._pop_lru_victim()
            if victim is None:
                # Everything resident is pinned; the new pages simply cannot
                # all fit, so stop evicting and let the caller thrash.
                break
            self._ever_evicted.add(victim)
            self.stats.pages_evicted += 1
            writeback = self.config.page_bytes * self.config.dirty_fraction
            eviction_ns += self._transfer_ns(writeback) * (1.0 - self.config.eviction_overlap)
        self.stats.eviction_time_ns += eviction_ns
        return eviction_ns

    def _pop_lru_victim(self) -> Optional[int]:
        for page in self._resident:
            if page not in self._pinned:
                del self._resident[page]
                return page
        return None

    def _enforce_capacity(self) -> float:
        """Evict LRU pages until residency fits the device again.

        Needed when a single access or prefetch range is larger than the
        device's managed capacity: the pages stream through the device, and
        only the most recently touched ones stay resident.
        """
        eviction_ns = 0.0
        while self.resident_pages > self.capacity_pages:
            victim = self._pop_lru_victim()
            if victim is None:
                break
            self._ever_evicted.add(victim)
            self.stats.pages_evicted += 1
            writeback = self.config.page_bytes * self.config.dirty_fraction
            eviction_ns += self._transfer_ns(writeback) * (1.0 - self.config.eviction_overlap)
        self.stats.eviction_time_ns += eviction_ns
        return eviction_ns

    def _touch(self, page: int) -> None:
        self._resident.pop(page, None)
        self._resident[page] = True

    # ------------------------------------------------------------------ #
    # public operations
    # ------------------------------------------------------------------ #
    def access_range(self, address: int, size: int) -> float:
        """Simulate the GPU touching ``[address, address+size)`` during a kernel.

        Non-resident pages fault and migrate on demand; faults on previously
        evicted pages are counted as *refaults* (the thrashing signal).
        Returns the time in nanoseconds this access charges to the kernel's
        critical path.
        """
        pages = list(self._pages_in_range(address, size))
        if not pages:
            return 0.0
        missing = [p for p in pages if p not in self._resident]
        elapsed = 0.0
        if missing:
            elapsed += self._make_room(len(missing))
            # Faults are serviced in groups (the driver coalesces neighbouring
            # faults); charge one latency per group of up to 16 pages.
            groups = (len(missing) + 15) // 16
            fault_ns = groups * self.config.fault_latency_ns
            migrate_ns = self._transfer_ns(len(missing) * self.config.page_bytes)
            self.stats.page_faults += groups
            self.stats.pages_migrated_on_fault += len(missing)
            self.stats.refaults += sum(1 for p in missing if p in self._ever_evicted)
            self.stats.fault_time_ns += fault_ns
            self.stats.migration_time_ns += migrate_ns
            elapsed += fault_ns + migrate_ns
            for page in missing:
                self._resident[page] = True
        for page in pages:
            self._touch(page)
        elapsed += self._enforce_capacity()
        return elapsed

    def prefetch_range(self, address: int, size: int) -> float:
        """Simulate ``cudaMemPrefetchAsync`` over ``[address, address+size)``.

        Returns the non-overlapped time charged to the critical path.  Already
        resident pages cost nothing.
        """
        pages = [p for p in self._pages_in_range(address, size) if p not in self._resident]
        if not pages:
            return 0.0
        evicted_before = self.stats.pages_evicted
        elapsed = self._make_room(len(pages))
        under_pressure = self.stats.pages_evicted > evicted_before
        overlap = (
            self.config.prefetch_overlap_under_pressure
            if under_pressure
            else self.config.prefetch_overlap
        )
        transfer_ns = self._transfer_ns(len(pages) * self.config.page_bytes)
        visible_ns = transfer_ns * (1.0 - overlap)
        self.stats.pages_prefetched += len(pages)
        self.stats.prefetch_time_ns += visible_ns
        for page in pages:
            self._resident[page] = True
            self._touch(page)
        return elapsed + visible_ns + self._enforce_capacity()

    def advise_pin(self, address: int, size: int) -> None:
        """Pin pages on the device (``cudaMemAdvise`` preferred-location style)."""
        for page in self._pages_in_range(address, size):
            self._pinned.add(page)

    def advise_unpin(self, address: int, size: int) -> None:
        """Remove the pin hint from pages."""
        for page in self._pages_in_range(address, size):
            self._pinned.discard(page)

    def evict_range(self, address: int, size: int) -> float:
        """Proactively evict pages (the pre-eviction half of a prefetch policy)."""
        elapsed = 0.0
        for page in self._pages_in_range(address, size):
            if page in self._resident and page not in self._pinned:
                del self._resident[page]
                self._ever_evicted.add(page)
                self.stats.pages_evicted += 1
                writeback = self.config.page_bytes * self.config.dirty_fraction
                cost = self._transfer_ns(writeback) * (1.0 - self.config.eviction_overlap)
                self.stats.eviction_time_ns += cost
                elapsed += cost
        return elapsed

    def reset_residency(self) -> None:
        """Drop all residency and statistics (used between experiment runs)."""
        self._resident.clear()
        self._pinned.clear()
        self._ever_evicted.clear()
        self.stats = UvmStats()

    def resident_bytes(self) -> int:
        """Bytes of managed memory currently resident on the device."""
        return self.resident_pages * self.config.page_bytes

    def pages_for_ranges(self, ranges: Iterable[tuple[int, int]]) -> set[int]:
        """Distinct page ids covering all ``(address, size)`` ranges."""
        pages: set[int] = set()
        for address, size in ranges:
            pages.update(self._pages_in_range(address, size))
        return pages
