"""Simulated GPU device specifications and device instances.

The paper evaluates PASTA on three machines (Table III): an NVIDIA A100
(80 GB), an NVIDIA GeForce RTX 3060, and an AMD MI300X.  This module models the
device-level properties that PASTA's analyses and overhead model depend on:

* memory capacity (drives UVM oversubscription behaviour, Figures 11/12),
* compute/bandwidth throughput (drives the analysis cost model, Figures 9/10),
* vendor identity (drives which profiling backend is available), and
* a monotonically advancing device clock used to timestamp runtime events.

The devices are intentionally simple: they do not model SM scheduling cycle by
cycle.  PASTA consumes *events* (kernel launches, memory operations, per-thread
accesses), so the simulation only needs to produce a faithful event stream and
a self-consistent timing model.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import DeviceError

#: Bytes in one mebibyte / gibibyte, used throughout the simulator.
MiB = 1024 * 1024
GiB = 1024 * MiB


class Vendor(str, Enum):
    """GPU vendor, selecting the runtime API family and profiling backends."""

    NVIDIA = "nvidia"
    AMD = "amd"

    @property
    def runtime_name(self) -> str:
        """Name of the host runtime API family ("cuda" or "hip")."""
        return "cuda" if self is Vendor.NVIDIA else "hip"


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"NVIDIA A100 80GB"``.
    vendor:
        :class:`Vendor` of the device.
    memory_bytes:
        Device (HBM/GDDR) capacity in bytes.
    sm_count:
        Number of streaming multiprocessors / compute units.
    threads_per_sm:
        Maximum resident threads per SM; together with ``sm_count`` this bounds
        the parallelism available to PASTA's GPU-resident analysis threads.
    core_clock_mhz:
        Nominal core clock; used by the analysis cost model.
    memory_bandwidth_gbs:
        Peak memory bandwidth in GB/s.
    pcie_bandwidth_gbs:
        Host-device interconnect bandwidth in GB/s; drives trace-transfer and
        UVM migration costs.
    compute_capability:
        Architecture tag (e.g. ``"sm_80"`` or ``"gfx942"``).
    """

    name: str
    vendor: Vendor
    memory_bytes: int
    sm_count: int
    threads_per_sm: int
    core_clock_mhz: int
    memory_bandwidth_gbs: float
    pcie_bandwidth_gbs: float
    compute_capability: str

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise DeviceError(f"device {self.name!r} must have positive memory")
        if self.sm_count <= 0 or self.threads_per_sm <= 0:
            raise DeviceError(f"device {self.name!r} must have positive compute resources")

    @property
    def max_resident_threads(self) -> int:
        """Upper bound on concurrently resident device threads."""
        return self.sm_count * self.threads_per_sm

    def with_memory_limit(self, memory_bytes: int) -> "DeviceSpec":
        """Return a copy with reduced memory capacity.

        The paper limits device memory by pre-allocating a slab to control the
        UVM oversubscription factor (Section V-A); this helper models the same
        effect directly.
        """
        if memory_bytes <= 0:
            raise DeviceError("memory limit must be positive")
        if memory_bytes > self.memory_bytes:
            raise DeviceError(
                f"memory limit {memory_bytes} exceeds device capacity {self.memory_bytes}"
            )
        return dataclasses.replace(self, memory_bytes=memory_bytes)


#: Specifications mirroring Table III of the paper.
A100 = DeviceSpec(
    name="NVIDIA A100 80GB",
    vendor=Vendor.NVIDIA,
    memory_bytes=80 * GiB,
    sm_count=108,
    threads_per_sm=2048,
    core_clock_mhz=1410,
    memory_bandwidth_gbs=2039.0,
    pcie_bandwidth_gbs=32.0,
    compute_capability="sm_80",
)

RTX3060 = DeviceSpec(
    name="NVIDIA GeForce RTX 3060",
    vendor=Vendor.NVIDIA,
    memory_bytes=12 * GiB,
    sm_count=28,
    threads_per_sm=1536,
    core_clock_mhz=1777,
    memory_bandwidth_gbs=360.0,
    pcie_bandwidth_gbs=16.0,
    compute_capability="sm_86",
)

MI300X = DeviceSpec(
    name="AMD Instinct MI300X",
    vendor=Vendor.AMD,
    memory_bytes=192 * GiB,
    sm_count=304,
    threads_per_sm=2048,
    core_clock_mhz=2100,
    memory_bandwidth_gbs=5300.0,
    pcie_bandwidth_gbs=64.0,
    compute_capability="gfx942",
)

#: Built-in specs seeded into the ``devices`` registry namespace.
BUILTIN_DEVICE_SPECS: dict[str, DeviceSpec] = {
    "a100": A100,
    "rtx3060": RTX3060,
    "mi300x": MI300X,
}

#: Short-name aliases accepted alongside the canonical names above.
DEVICE_ALIASES: dict[str, str] = {"3060": "rtx3060"}

# Kept for backward compatibility with callers that peeked at the old ad-hoc
# mapping; the registry namespace is the authoritative view.
_KNOWN_SPECS = {**BUILTIN_DEVICE_SPECS,
                **{alias: BUILTIN_DEVICE_SPECS[t] for alias, t in DEVICE_ALIASES.items()}}


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a :class:`DeviceSpec` by short name in the device registry.

    Built-ins (case-insensitive): ``"a100"``, ``"rtx3060"``/``"3060"``,
    ``"mi300x"``; plugins may register more (see
    :mod:`repro.core.registry`).
    """
    # Imported lazily: the registry seeds itself from this module, so a
    # module-level import would be cyclic.  create() (not get()) so the
    # namespace's DeviceSpec product check runs on plugin entries.
    from repro.core.registry import REGISTRY

    return REGISTRY.create("devices", name)  # type: ignore[return-value]


_device_ids = itertools.count(0)


@dataclass
class GpuDevice:
    """A live device instance with a clock and bookkeeping counters.

    A :class:`GpuDevice` is the unit that runtimes (:mod:`repro.gpusim.runtime`)
    and the UVM manager operate on.  Time is tracked in nanoseconds on a simple
    monotonically advancing clock; analyses that time events read
    :attr:`clock_ns` rather than wall-clock time, making every run
    deterministic.
    """

    spec: DeviceSpec
    index: int = field(default_factory=lambda: next(_device_ids))
    clock_ns: int = 0
    #: Bytes of device memory reserved by the profiler itself (the paper notes
    #: PASTA needs ~4 MB of device memory for profiling buffers).
    profiler_reserved_bytes: int = 0

    def advance(self, nanoseconds: int) -> int:
        """Advance the device clock by ``nanoseconds`` and return the new time."""
        if nanoseconds < 0:
            raise DeviceError("cannot advance the clock backwards")
        self.clock_ns += int(nanoseconds)
        return self.clock_ns

    def now(self) -> int:
        """Current device time in nanoseconds."""
        return self.clock_ns

    @property
    def vendor(self) -> Vendor:
        """Vendor of the underlying device spec."""
        return self.spec.vendor

    @property
    def usable_memory_bytes(self) -> int:
        """Device memory available to applications (capacity minus profiler reservation)."""
        return self.spec.memory_bytes - self.profiler_reserved_bytes

    def reserve_profiler_memory(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of device memory for profiling buffers."""
        if nbytes < 0:
            raise DeviceError("profiler reservation must be non-negative")
        if nbytes > self.spec.memory_bytes:
            raise DeviceError("profiler reservation exceeds device capacity")
        self.profiler_reserved_bytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GpuDevice(index={self.index}, spec={self.spec.name!r}, clock_ns={self.clock_ns})"
