"""Simulated deep-learning framework substrate.

Stands in for PyTorch: tensors, a caching pool allocator, operators lowered to
realistic kernels, a module system and model zoo, framework callbacks, and
data/tensor/pipeline parallel execution over simulated multi-GPU device sets.
"""

from repro.dlframework.allocator import (
    AllocatorProfile,
    AllocatorStats,
    CachingAllocator,
    CUDA_ALLOCATOR_PROFILE,
    HIP_ALLOCATOR_PROFILE,
    MemoryUsageRecord,
    round_size,
)
from repro.dlframework.backend import (
    BackendProfile,
    CUDA_BACKEND,
    HIP_BACKEND,
    backend_for_device,
)
from repro.dlframework.callbacks import FrameworkCallbackRegistry, OperatorEvent
from repro.dlframework.context import FrameworkContext, TensorUse, read, readwrite, unused, write
from repro.dlframework.engine import ExecutionEngine, RunSummary
from repro.dlframework.optim import Adam, Optimizer, SGD
from repro.dlframework.tensor import DType, Tensor

__all__ = [
    "Adam",
    "AllocatorProfile",
    "AllocatorStats",
    "BackendProfile",
    "CachingAllocator",
    "CUDA_ALLOCATOR_PROFILE",
    "CUDA_BACKEND",
    "DType",
    "ExecutionEngine",
    "FrameworkCallbackRegistry",
    "FrameworkContext",
    "HIP_ALLOCATOR_PROFILE",
    "HIP_BACKEND",
    "MemoryUsageRecord",
    "OperatorEvent",
    "Optimizer",
    "RunSummary",
    "SGD",
    "Tensor",
    "TensorUse",
    "backend_for_device",
    "read",
    "readwrite",
    "round_size",
    "unused",
    "write",
]
