"""Functional operators: the operator -> kernel lowering layer.

Each function mirrors a PyTorch ``aten`` operator: it allocates its output
tensors through the :class:`~repro.dlframework.context.FrameworkContext`,
launches the kernels the real backend would launch (with realistic kernel
names supplied by the :class:`~repro.dlframework.backend.BackendProfile`), and
returns the outputs.  Operator boundaries are emitted around every call so
PASTA sees the same operator/kernel nesting a real PyTorch run produces — one
operator frequently maps to several kernels, which is exactly the hidden
mapping the paper says framework-native profilers expose and vendor tools do
not.

Backward-pass operators and optimizer steps live here too, so training runs
exercise realistic gradient/optimizer-state allocation patterns.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ShapeError
from repro.dlframework.context import FrameworkContext, TensorUse, read, readwrite, write
from repro.dlframework.tensor import DType, Tensor, check_matmul_shapes


# --------------------------------------------------------------------------- #
# shape helpers
# --------------------------------------------------------------------------- #
def conv2d_output_shape(
    input_shape: Sequence[int],
    out_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> tuple[int, int, int, int]:
    """Output shape of a 2-D convolution over NCHW input."""
    if len(input_shape) != 4:
        raise ShapeError(f"conv2d expects NCHW input, got shape {tuple(input_shape)}")
    n, _c, h, w = input_shape
    oh = (h + 2 * padding - kernel_size) // stride + 1
    ow = (w + 2 * padding - kernel_size) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(f"conv2d output collapses to zero for input {tuple(input_shape)}")
    return (n, out_channels, oh, ow)


def pool2d_output_shape(
    input_shape: Sequence[int], kernel_size: int, stride: Optional[int] = None, padding: int = 0
) -> tuple[int, int, int, int]:
    """Output shape of a 2-D pooling operator."""
    stride = stride or kernel_size
    n, c, h, w = input_shape
    oh = (h + 2 * padding - kernel_size) // stride + 1
    ow = (w + 2 * padding - kernel_size) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(f"pool2d output collapses to zero for input {tuple(input_shape)}")
    return (n, c, oh, ow)


# --------------------------------------------------------------------------- #
# dense / GEMM operators
# --------------------------------------------------------------------------- #
def _gemm_workspace(ctx: FrameworkContext) -> Optional[Tensor]:
    """Allocate (and cache) the BLAS workspace the backend requests per GEMM.

    cuBLAS keeps a workspace per handle; rocBLAS requests a smaller one.  The
    workspace is allocated once through the caching allocator and reused, so it
    raises the peak without adding per-GEMM allocation events.
    """
    if ctx.backend.gemm_workspace_bytes <= 0:
        return None
    cached = getattr(ctx, "_gemm_workspace_tensor", None)
    if cached is None or cached.freed:
        cached = ctx.alloc((ctx.backend.gemm_workspace_bytes,), dtype=DType.INT8,
                           name="blas_workspace")
        ctx._gemm_workspace_tensor = cached
    return cached


def linear(ctx: FrameworkContext, x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``aten::linear`` — x @ weight.T + bias."""
    out_features, in_features = weight.shape
    if x.shape[-1] != in_features:
        raise ShapeError(f"linear: input {x.shape} incompatible with weight {weight.shape}")
    batch = math.prod(x.shape[:-1])
    out_shape = (*x.shape[:-1], out_features)
    with ctx.op("aten::linear"):
        out = ctx.alloc(out_shape, dtype=x.dtype, name="linear_out")
        flops = 2.0 * batch * in_features * out_features
        reuse = ctx.backend.gemm_reuse_factor
        uses = [
            read(x, intensity=0.25 * reuse),
            read(weight, intensity=0.25 * reuse),
            write(out),
        ]
        workspace = _gemm_workspace(ctx)
        if workspace is not None:
            uses.append(TensorUse(workspace, accessed_fraction=0.1, is_read=True,
                                  is_written=True, accesses_per_byte=0.05))
        if bias is not None and ctx.backend.fuse_bias_activation:
            uses.append(read(bias))
            ctx.launch(ctx.backend.gemm_bias_kernel_name(batch, out_features, in_features),
                       uses, flops=flops, grid_elements=batch * out_features)
        else:
            ctx.launch(ctx.backend.gemm_kernel_name(batch, out_features, in_features),
                       uses, flops=flops, grid_elements=batch * out_features)
            if bias is not None:
                ctx.launch(
                    ctx.backend.elementwise_kernel_name("add_bias"),
                    [read(bias), readwrite(out)],
                    flops=float(math.prod(out_shape)),
                    grid_elements=math.prod(out_shape),
                )
    return out


def matmul(ctx: FrameworkContext, a: Tensor, b: Tensor) -> Tensor:
    """``aten::matmul`` — batched matrix multiply."""
    out_shape = check_matmul_shapes(a.shape, b.shape)
    m, k, n = a.shape[-2], a.shape[-1], b.shape[-1]
    batch = math.prod(out_shape[:-2]) if len(out_shape) > 2 else 1
    with ctx.op("aten::matmul"):
        out = ctx.alloc(out_shape, dtype=a.dtype, name="matmul_out")
        flops = 2.0 * batch * m * n * k
        reuse = ctx.backend.gemm_reuse_factor
        ctx.launch(
            ctx.backend.gemm_kernel_name(m, n, k),
            [read(a, intensity=0.25 * reuse), read(b, intensity=0.25 * reuse), write(out)],
            flops=flops,
            grid_elements=batch * m * n,
        )
    return out


def bmm(ctx: FrameworkContext, a: Tensor, b: Tensor) -> Tensor:
    """``aten::bmm`` — strict 3-D batched matrix multiply."""
    if a.ndim != 3 or b.ndim != 3:
        raise ShapeError("bmm requires 3-D tensors")
    return matmul(ctx, a, b)


# --------------------------------------------------------------------------- #
# convolution and pooling
# --------------------------------------------------------------------------- #
def conv2d(
    ctx: FrameworkContext,
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """``aten::conv2d`` — im2col + implicit-GEMM lowering."""
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ShapeError(f"conv2d: input channels {x.shape[1]} != weight channels {in_channels}")
    out_shape = conv2d_output_shape(x.shape, out_channels, kh, stride, padding)
    n, _c, oh, ow = out_shape
    with ctx.op("aten::conv2d"):
        im2col_kernel, gemm_kernel = ctx.backend.conv_kernel_names(forward=True)
        # im2col buffer: (N, C*KH*KW, OH*OW)
        col = ctx.alloc((n, in_channels * kh * kw, oh * ow), dtype=x.dtype, name="im2col_buffer")
        ctx.launch(
            im2col_kernel,
            [read(x, intensity=0.5), write(col)],
            flops=float(col.numel),
            grid_elements=col.numel,
        )
        out = ctx.alloc(out_shape, dtype=x.dtype, name="conv_out")
        flops = 2.0 * n * out_channels * in_channels * kh * kw * oh * ow
        uses = [read(col, intensity=0.5), read(weight, intensity=0.5), write(out)]
        if bias is not None:
            uses.append(read(bias))
        ctx.launch(gemm_kernel, uses, flops=flops, grid_elements=out.numel)
        ctx.free(col)
    return out


def max_pool2d(ctx: FrameworkContext, x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """``aten::max_pool2d``."""
    out_shape = pool2d_output_shape(x.shape, kernel_size, stride)
    with ctx.op("aten::max_pool2d"):
        out = ctx.alloc(out_shape, dtype=x.dtype, name="maxpool_out")
        ctx.launch(
            ctx.backend.pool_kernel_name("max"),
            [read(x), write(out)],
            flops=float(x.numel),
            grid_elements=out.numel,
        )
    return out


def adaptive_avg_pool2d(ctx: FrameworkContext, x: Tensor, output_size: int) -> Tensor:
    """``aten::adaptive_avg_pool2d``."""
    n, c = x.shape[0], x.shape[1]
    out_shape = (n, c, output_size, output_size)
    with ctx.op("aten::adaptive_avg_pool2d"):
        out = ctx.alloc(out_shape, dtype=x.dtype, name="avgpool_out")
        ctx.launch(
            ctx.backend.pool_kernel_name("avg"),
            [read(x), write(out)],
            flops=float(x.numel),
            grid_elements=out.numel,
        )
    return out


# --------------------------------------------------------------------------- #
# elementwise and normalisation operators
# --------------------------------------------------------------------------- #
def _elementwise_unary(ctx: FrameworkContext, x: Tensor, op_name: str, inplace: bool = False) -> Tensor:
    with ctx.op(f"aten::{op_name}"):
        if inplace:
            out = x
            uses = [readwrite(x)]
        else:
            out = ctx.alloc_like(x, name=f"{op_name}_out")
            uses = [read(x), write(out)]
        ctx.launch(
            ctx.backend.elementwise_kernel_name(op_name),
            uses,
            flops=float(x.numel),
            grid_elements=x.numel,
        )
    return out


def relu(ctx: FrameworkContext, x: Tensor, inplace: bool = True) -> Tensor:
    """``aten::relu``."""
    return _elementwise_unary(ctx, x, "relu", inplace=inplace)


def gelu(ctx: FrameworkContext, x: Tensor) -> Tensor:
    """``aten::gelu``.

    On backends without a fused GELU kernel the tanh approximation is lowered
    into elementwise primitives with intermediate tensors, which produces more
    allocation/reclamation events for the same model (one of the
    NVIDIA-vs-AMD differences discussed around Figure 14).
    """
    if ctx.backend.fuse_gelu:
        return _elementwise_unary(ctx, x, "gelu", inplace=False)
    with ctx.op("aten::gelu"):
        cube = ctx.alloc_like(x, name="gelu_pow3")
        ctx.launch(ctx.backend.elementwise_kernel_name("pow"),
                   [read(x), write(cube)], flops=float(x.numel), grid_elements=x.numel)
        inner = ctx.alloc_like(x, name="gelu_tanh")
        ctx.launch(ctx.backend.elementwise_kernel_name("tanh"),
                   [read(cube), write(inner)], flops=float(x.numel), grid_elements=x.numel)
        out = ctx.alloc_like(x, name="gelu_out")
        ctx.launch(ctx.backend.elementwise_kernel_name("mul_add"),
                   [read(x), read(inner), write(out)], flops=float(x.numel), grid_elements=x.numel)
        ctx.free(cube)
        ctx.free(inner)
    return out


def tanh(ctx: FrameworkContext, x: Tensor) -> Tensor:
    """``aten::tanh``."""
    return _elementwise_unary(ctx, x, "tanh", inplace=False)


def add(ctx: FrameworkContext, a: Tensor, b: Tensor, inplace: bool = False) -> Tensor:
    """``aten::add`` (residual connections etc.)."""
    with ctx.op("aten::add"):
        if inplace:
            out = a
            uses = [readwrite(a), read(b)]
        else:
            out = ctx.alloc_like(a, name="add_out")
            uses = [read(a), read(b), write(out)]
        ctx.launch(
            ctx.backend.elementwise_kernel_name("add"),
            uses,
            flops=float(a.numel),
            grid_elements=a.numel,
        )
    return out


def mul_scalar(ctx: FrameworkContext, x: Tensor, scalar: float) -> Tensor:
    """``aten::mul`` with a scalar operand (e.g. attention scaling)."""
    return _elementwise_unary(ctx, x, "mul_scalar", inplace=True)


def dropout(ctx: FrameworkContext, x: Tensor, p: float = 0.1, training: bool = True) -> Tensor:
    """``aten::dropout``; a no-op (identity, no kernel) in eval mode."""
    if not training or p <= 0.0:
        return x
    with ctx.op("aten::dropout"):
        mask = ctx.alloc(x.shape, dtype=DType.BOOL, name="dropout_mask")
        out = ctx.alloc_like(x, name="dropout_out")
        ctx.launch(
            ctx.backend.elementwise_kernel_name("fused_dropout"),
            [read(x), write(mask), write(out)],
            flops=float(x.numel),
            grid_elements=x.numel,
        )
    return out


def softmax(ctx: FrameworkContext, x: Tensor, dim: int = -1) -> Tensor:
    """``aten::softmax``."""
    with ctx.op("aten::softmax"):
        out = ctx.alloc_like(x, name="softmax_out")
        ctx.launch(
            ctx.backend.softmax_kernel_name(),
            [read(x, intensity=0.5), write(out)],
            flops=5.0 * x.numel,
            grid_elements=x.numel,
        )
    return out


def layer_norm(ctx: FrameworkContext, x: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """``aten::layer_norm``."""
    with ctx.op("aten::layer_norm"):
        out = ctx.alloc_like(x, name="layernorm_out")
        ctx.launch(
            ctx.backend.layernorm_kernel_name(),
            [read(x, intensity=0.5), read(weight), read(bias), write(out)],
            flops=8.0 * x.numel,
            grid_elements=x.numel,
        )
    return out


def batch_norm2d(
    ctx: FrameworkContext,
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    training: bool = False,
) -> Tensor:
    """``aten::batch_norm`` over NCHW input."""
    with ctx.op("aten::batch_norm"):
        out = ctx.alloc_like(x, name="batchnorm_out")
        uses = [read(x, intensity=0.5), read(weight), read(bias), write(out)]
        if training:
            uses.extend([readwrite(running_mean), readwrite(running_var)])
        else:
            uses.extend([read(running_mean), read(running_var)])
        ctx.launch(
            ctx.backend.batchnorm_kernel_name(),
            uses,
            flops=8.0 * x.numel,
            grid_elements=x.numel,
        )
    return out


def embedding(ctx: FrameworkContext, indices: Tensor, weight: Tensor) -> Tensor:
    """``aten::embedding`` — gather rows of ``weight`` by ``indices``.

    Only the gathered rows of the (potentially huge) embedding table are
    referenced, so the accessed fraction of ``weight`` is the ratio of looked-up
    tokens to vocabulary size — a natural example of footprint >> working set.
    """
    vocab, hidden = weight.shape
    out_shape = (*indices.shape, hidden)
    tokens = indices.numel
    fraction = min(1.0, tokens / max(1, vocab))
    with ctx.op("aten::embedding"):
        out = ctx.alloc(out_shape, dtype=weight.dtype, name="embedding_out")
        ctx.launch(
            ctx.backend.embedding_kernel_name(),
            [read(indices), read(weight, fraction=fraction), write(out)],
            flops=float(out.numel),
            grid_elements=out.numel,
        )
    return out


def reshape(ctx: FrameworkContext, x: Tensor, shape: Sequence[int]) -> Tensor:
    """``aten::reshape`` — metadata-only view; no kernel, no new storage."""
    new_shape = tuple(int(d) for d in shape)
    if math.prod(new_shape) != x.numel:
        raise ShapeError(f"cannot reshape {x.shape} to {new_shape}")
    view = Tensor(
        shape=new_shape,
        dtype=x.dtype,
        address=x.address,
        device_index=x.device_index,
        name=x.name or "view",
        block_id=None,  # views never own storage
        segment_object_id=x.segment_object_id,
    )
    return view


def contiguous_copy(ctx: FrameworkContext, x: Tensor, name: str = "copy_out") -> Tensor:
    """``aten::contiguous`` / ``aten::copy_`` — materialise a transposed view."""
    with ctx.op("aten::copy_"):
        out = ctx.alloc_like(x, name=name)
        ctx.launch(
            ctx.backend.copy_kernel_name(),
            [read(x), write(out)],
            flops=0.0,
            grid_elements=x.numel,
        )
    return out


def cat(ctx: FrameworkContext, tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    """``aten::cat`` along ``dim`` (shapes must match on other dims)."""
    if not tensors:
        raise ShapeError("cat requires at least one tensor")
    base = list(tensors[0].shape)
    total = sum(t.shape[dim] for t in tensors)
    base[dim] = total
    with ctx.op("aten::cat"):
        out = ctx.alloc(tuple(base), dtype=tensors[0].dtype, name="cat_out")
        uses: list[TensorUse] = [read(t) for t in tensors]
        uses.append(write(out))
        ctx.launch(
            ctx.backend.copy_kernel_name(),
            uses,
            flops=0.0,
            grid_elements=out.numel,
        )
    return out


# --------------------------------------------------------------------------- #
# attention and loss
# --------------------------------------------------------------------------- #
def scaled_dot_product_attention(
    ctx: FrameworkContext, q: Tensor, k: Tensor, v: Tensor, causal: bool = False
) -> Tensor:
    """``aten::scaled_dot_product_attention`` decomposed into BLAS + softmax kernels."""
    # q, k, v: (batch*heads, seq, head_dim)
    scores = matmul(ctx, q, reshape(ctx, k, (*k.shape[:-2], k.shape[-1], k.shape[-2])))
    scores = mul_scalar(ctx, scores, 1.0 / math.sqrt(q.shape[-1]))
    probs = softmax(ctx, scores, dim=-1)
    out = matmul(ctx, probs, v)
    ctx.free(scores)
    ctx.free(probs)
    return out


def cross_entropy(ctx: FrameworkContext, logits: Tensor, targets: Tensor) -> Tensor:
    """``aten::cross_entropy_loss`` — log-softmax + NLL reduction."""
    with ctx.op("aten::cross_entropy_loss"):
        log_probs = ctx.alloc_like(logits, name="log_softmax_out")
        ctx.launch(
            ctx.backend.softmax_kernel_name(),
            [read(logits, intensity=0.5), write(log_probs)],
            flops=5.0 * logits.numel,
            grid_elements=logits.numel,
        )
        loss = ctx.alloc((1,), dtype=logits.dtype, name="loss")
        ctx.launch(
            ctx.backend.reduction_kernel_name("nll_loss"),
            [read(log_probs, fraction=0.1), read(targets), write(loss)],
            flops=float(targets.numel),
            grid_elements=targets.numel,
        )
        ctx.free(log_probs)
    return loss


# --------------------------------------------------------------------------- #
# backward-pass operators
# --------------------------------------------------------------------------- #
def linear_backward(
    ctx: FrameworkContext,
    grad_out: Tensor,
    x: Tensor,
    weight: Tensor,
    needs_input_grad: bool = True,
) -> tuple[Optional[Tensor], Tensor, Tensor]:
    """Backward of :func:`linear`: returns (grad_input, grad_weight, grad_bias)."""
    out_features, in_features = weight.shape
    batch = math.prod(x.shape[:-1])
    reuse = ctx.backend.gemm_reuse_factor
    grad_input: Optional[Tensor] = None
    with ctx.op("aten::linear_backward"):
        if needs_input_grad:
            grad_input = ctx.alloc(x.shape, dtype=x.dtype, name="grad_input")
            ctx.launch(
                ctx.backend.gemm_kernel_name(batch, in_features, out_features),
                [read(grad_out, intensity=0.25 * reuse), read(weight, intensity=0.25 * reuse),
                 write(grad_input)],
                flops=2.0 * batch * in_features * out_features,
                grid_elements=batch * in_features,
            )
        grad_weight = ctx.alloc(weight.shape, dtype=weight.dtype, name="grad_weight")
        ctx.launch(
            ctx.backend.gemm_kernel_name(out_features, in_features, batch),
            [read(grad_out, intensity=0.25 * reuse), read(x, intensity=0.25 * reuse),
             write(grad_weight)],
            flops=2.0 * batch * in_features * out_features,
            grid_elements=out_features * in_features,
        )
        grad_bias = ctx.alloc((out_features,), dtype=weight.dtype, name="grad_bias")
        ctx.launch(
            ctx.backend.reduction_kernel_name("sum"),
            [read(grad_out), write(grad_bias)],
            flops=float(grad_out.numel),
            grid_elements=grad_out.numel,
        )
    return grad_input, grad_weight, grad_bias


def conv2d_backward(
    ctx: FrameworkContext,
    grad_out: Tensor,
    x: Tensor,
    weight: Tensor,
    needs_input_grad: bool = True,
) -> tuple[Optional[Tensor], Tensor, Tensor]:
    """Backward of :func:`conv2d`: returns (grad_input, grad_weight, grad_bias)."""
    out_channels, in_channels, kh, kw = weight.shape
    n = x.shape[0]
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    col2im_kernel, dgrad_kernel, wgrad_kernel = ctx.backend.conv_kernel_names(forward=False)
    flops = 2.0 * n * out_channels * in_channels * kh * kw * oh * ow
    grad_input: Optional[Tensor] = None
    with ctx.op("aten::convolution_backward"):
        if needs_input_grad:
            col = ctx.alloc((n, in_channels * kh * kw, oh * ow), dtype=x.dtype, name="col_grad_buffer")
            ctx.launch(
                dgrad_kernel,
                [read(grad_out, intensity=0.5), read(weight, intensity=0.5), write(col)],
                flops=flops,
                grid_elements=col.numel,
            )
            grad_input = ctx.alloc(x.shape, dtype=x.dtype, name="grad_input")
            ctx.launch(
                col2im_kernel,
                [read(col, intensity=0.5), write(grad_input)],
                flops=float(col.numel),
                grid_elements=grad_input.numel,
            )
            ctx.free(col)
        grad_weight = ctx.alloc(weight.shape, dtype=weight.dtype, name="grad_weight")
        ctx.launch(
            wgrad_kernel,
            [read(grad_out, intensity=0.5), read(x, intensity=0.5), write(grad_weight)],
            flops=flops,
            grid_elements=grad_weight.numel,
        )
        grad_bias = ctx.alloc((out_channels,), dtype=weight.dtype, name="grad_bias")
        ctx.launch(
            ctx.backend.reduction_kernel_name("sum"),
            [read(grad_out), write(grad_bias)],
            flops=float(grad_out.numel),
            grid_elements=grad_out.numel,
        )
    return grad_input, grad_weight, grad_bias


def elementwise_backward(ctx: FrameworkContext, grad_out: Tensor, op_name: str) -> Tensor:
    """Backward of a unary elementwise operator."""
    with ctx.op(f"aten::{op_name}_backward"):
        grad_in = ctx.alloc_like(grad_out, name=f"grad_{op_name}")
        ctx.launch(
            ctx.backend.elementwise_kernel_name(f"{op_name}_backward"),
            [read(grad_out), write(grad_in)],
            flops=float(grad_out.numel),
            grid_elements=grad_out.numel,
        )
    return grad_in


def norm_backward(ctx: FrameworkContext, grad_out: Tensor, x: Tensor, kind: str = "layer") -> Tensor:
    """Backward of layer/batch norm; returns grad_input (param grads folded in)."""
    kernel = (
        ctx.backend.layernorm_kernel_name(backward=True)
        if kind == "layer"
        else ctx.backend.batchnorm_kernel_name(backward=True)
    )
    with ctx.op(f"aten::native_{kind}_norm_backward"):
        grad_in = ctx.alloc_like(x, name=f"grad_{kind}norm")
        ctx.launch(
            kernel,
            [read(grad_out, intensity=0.5), read(x, intensity=0.5), write(grad_in)],
            flops=8.0 * x.numel,
            grid_elements=x.numel,
        )
    return grad_in


def pool_backward(ctx: FrameworkContext, grad_out: Tensor, x: Tensor, kind: str = "max") -> Tensor:
    """Backward of a pooling operator."""
    with ctx.op(f"aten::{kind}_pool2d_backward"):
        grad_in = ctx.alloc_like(x, name=f"grad_{kind}pool")
        ctx.launch(
            ctx.backend.pool_kernel_name(kind, backward=True),
            [read(grad_out), write(grad_in)],
            flops=float(x.numel),
            grid_elements=x.numel,
        )
    return grad_in


def embedding_backward(ctx: FrameworkContext, grad_out: Tensor, indices: Tensor, weight: Tensor) -> Tensor:
    """Backward of :func:`embedding`: scatter-add into a grad table."""
    vocab, _hidden = weight.shape
    tokens = indices.numel
    fraction = min(1.0, tokens / max(1, vocab))
    with ctx.op("aten::embedding_dense_backward"):
        grad_weight = ctx.alloc(weight.shape, dtype=weight.dtype, name="grad_embedding")
        ctx.launch(
            ctx.backend.embedding_kernel_name(backward=True),
            [read(grad_out), read(indices), write(grad_weight, fraction=fraction)],
            flops=float(grad_out.numel),
            grid_elements=grad_out.numel,
        )
    return grad_weight


def softmax_backward(ctx: FrameworkContext, grad_out: Tensor, probs: Tensor) -> Tensor:
    """Backward of :func:`softmax`."""
    with ctx.op("aten::_softmax_backward_data"):
        grad_in = ctx.alloc_like(grad_out, name="grad_softmax")
        ctx.launch(
            ctx.backend.softmax_kernel_name(backward=True),
            [read(grad_out, intensity=0.5), read(probs, intensity=0.5), write(grad_in)],
            flops=5.0 * grad_out.numel,
            grid_elements=grad_out.numel,
        )
    return grad_in


# --------------------------------------------------------------------------- #
# optimizer steps
# --------------------------------------------------------------------------- #
def sgd_step(ctx: FrameworkContext, params: Sequence[Tensor], grads: Sequence[Tensor]) -> None:
    """Fused SGD update over all parameters (one multi-tensor-apply kernel per chunk)."""
    _optimizer_step(ctx, "aten::_fused_sgd_", params, grads, extra_state=())


def adam_step(
    ctx: FrameworkContext,
    params: Sequence[Tensor],
    grads: Sequence[Tensor],
    exp_avg: Sequence[Tensor],
    exp_avg_sq: Sequence[Tensor],
) -> None:
    """Fused Adam update: reads/writes parameters and both moment buffers."""
    _optimizer_step(ctx, "aten::_fused_adam_", params, grads, extra_state=(exp_avg, exp_avg_sq))


def _optimizer_step(
    ctx: FrameworkContext,
    op_name: str,
    params: Sequence[Tensor],
    grads: Sequence[Tensor],
    extra_state: Sequence[Sequence[Tensor]],
) -> None:
    if len(params) != len(grads):
        raise ShapeError("params and grads must have the same length")
    chunk = 32  # multi_tensor_apply processes parameters in fixed-size chunks
    with ctx.op(op_name):
        for start in range(0, len(params), chunk):
            uses: list[TensorUse] = []
            numel = 0
            for i in range(start, min(start + chunk, len(params))):
                uses.append(readwrite(params[i]))
                uses.append(read(grads[i]))
                for state in extra_state:
                    uses.append(readwrite(state[i]))
                numel += params[i].numel
            ctx.launch(
                ctx.backend.optimizer_kernel_name(),
                uses,
                flops=4.0 * numel,
                grid_elements=numel,
            )


# --------------------------------------------------------------------------- #
# collectives (multi-GPU)
# --------------------------------------------------------------------------- #
def all_reduce(ctx: FrameworkContext, tensor: Tensor, world_size: int = 2) -> None:
    """Ring all-reduce over ``world_size`` ranks (NCCL/RCCL kernel on this rank)."""
    with ctx.op("c10d::allreduce_"):
        ctx.launch(
            ctx.backend.communication_kernel_name("AllReduce_Sum_f32"),
            [readwrite(tensor, intensity=0.5 * max(1, world_size - 1))],
            flops=float(tensor.numel) * (world_size - 1),
            grid_elements=tensor.numel,
        )


def all_gather(ctx: FrameworkContext, tensor: Tensor, output: Tensor, world_size: int = 2) -> None:
    """All-gather ``tensor`` from every rank into ``output``."""
    with ctx.op("c10d::allgather_"):
        ctx.launch(
            ctx.backend.communication_kernel_name("AllGather_f32"),
            [read(tensor), write(output)],
            flops=0.0,
            grid_elements=output.numel,
        )


def send_recv(ctx: FrameworkContext, tensor: Tensor, direction: str = "send") -> None:
    """Point-to-point pipeline communication (send or recv of activations)."""
    collective = "SendRecv_f32"
    with ctx.op(f"c10d::{direction}"):
        use = read(tensor) if direction == "send" else write(tensor)
        ctx.launch(
            ctx.backend.communication_kernel_name(collective),
            [use],
            flops=0.0,
            grid_elements=tensor.numel,
        )
