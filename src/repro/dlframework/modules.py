"""Neural-network modules for the simulated DL framework.

Modules mirror ``torch.nn``: they own parameters, compose into trees, and their
``__call__`` pushes a module scope so PASTA's synthesised Python call stacks
and layer-level annotations see realistic nesting.  Each module implements

* ``materialize(ctx)`` — allocate its parameters through the caching allocator
  (the equivalent of moving a model to the GPU),
* ``forward(ctx, x)`` — run the forward pass, launching kernels through the
  operator layer, and
* ``backward(ctx, grad_out)`` — run the backward pass using activations saved
  during a training-mode forward, producing parameter gradients.

The backward implementation is deliberately module-local (no taped autograd
graph): the simulation needs realistic *kernel and allocation behaviour*, not
numerical gradients.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import ModelError, ShapeError
from repro.dlframework import ops
from repro.dlframework.context import FrameworkContext
from repro.dlframework.tensor import DType, Tensor


class Module:
    """Base class for all network modules."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.training = False
        self._modules: dict[str, "Module"] = {}
        self._parameters: dict[str, Tensor] = {}
        self._param_shapes: dict[str, tuple[tuple[int, ...], DType]] = {}
        #: (parameter, gradient) pairs produced by the most recent backward.
        self.param_grads: list[tuple[Tensor, Tensor]] = []
        #: Activation saved during a training-mode forward for use in backward.
        self._saved_input: Optional[Tensor] = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_module(self, name: str, module: "Module") -> "Module":
        """Register a child module under ``name``."""
        module.name = name
        self._modules[name] = module
        return module

    def declare_parameter(
        self, name: str, shape: tuple[int, ...], dtype: DType = DType.FLOAT32
    ) -> None:
        """Declare (but do not yet allocate) a parameter."""
        self._param_shapes[name] = (shape, dtype)

    def get_parameter(self, name: str) -> Tensor:
        """Return a materialised parameter by name."""
        try:
            return self._parameters[name]
        except KeyError:
            raise ModelError(
                f"parameter {name!r} of module {self.name!r} is not materialised; "
                "call materialize(ctx) first"
            ) from None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def materialize(self, ctx: FrameworkContext, prefix: str = "") -> None:
        """Allocate this module's parameters (and its children's) on the device."""
        scope = f"{prefix}.{self.name}" if prefix else self.name
        for pname, (shape, dtype) in self._param_shapes.items():
            if pname not in self._parameters:
                self._parameters[pname] = ctx.alloc(
                    shape,
                    dtype=dtype,
                    name=f"{scope}.{pname}",
                    is_parameter=True,
                    requires_grad=True,
                )
        for child in self._modules.values():
            child.materialize(ctx, prefix=scope)

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def parameters(self) -> Iterator[Tensor]:
        """Yield all materialised parameters in the subtree."""
        yield from self._parameters.values()
        for child in self._modules.values():
            yield from child.parameters()

    def modules(self) -> Iterator["Module"]:
        """Yield the module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def parameter_bytes(self) -> int:
        """Total bytes of materialised parameters in the subtree."""
        return sum(p.nbytes for p in self.parameters())

    def clear_grads(self) -> None:
        """Drop gradient references collected by the last backward pass."""
        self.param_grads = []
        for child in self._modules.values():
            child.clear_grads()

    def collect_param_grads(self) -> list[tuple[Tensor, Tensor]]:
        """All (parameter, gradient) pairs produced by the last backward pass."""
        pairs = list(self.param_grads)
        for child in self._modules.values():
            pairs.extend(child.collect_param_grads())
        return pairs

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def __call__(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        with ctx.module_scope(self.name):
            return self.forward(ctx, x)

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        """Forward computation; must be overridden."""
        raise NotImplementedError

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        """Backward computation; default is a pass-through."""
        return grad_out

    def _save_for_backward(self, x: Tensor) -> None:
        if self.training:
            self._saved_input = x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, children={len(self._modules)})"


class Sequential(Module):
    """Runs child modules in order; backward runs them in reverse."""

    def __init__(self, *layers: Module, name: str = "Sequential") -> None:
        super().__init__(name=name)
        self.layers: list[Module] = []
        for idx, layer in enumerate(layers):
            self.layers.append(self.add_module(f"{idx}", layer))

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        original = x
        for layer in self.layers:
            y = layer(ctx, x)
            # In eval mode intermediates are reclaimed as soon as the next
            # layer has consumed them (reference-count semantics); in training
            # mode they stay alive for the backward pass.
            if not self.training and x is not original and y is not x:
                ctx.free(x)
            x = y
        return x

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(ctx, grad)
        return grad


class Linear(Module):
    """Fully connected layer."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, name: str = "Linear") -> None:
        super().__init__(name=name)
        self.in_features = in_features
        self.out_features = out_features
        self.has_bias = bias
        self.declare_parameter("weight", (out_features, in_features))
        if bias:
            self.declare_parameter("bias", (out_features,))

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        self._save_for_backward(x)
        bias = self.get_parameter("bias") if self.has_bias else None
        return ops.linear(ctx, x, self.get_parameter("weight"), bias)

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self._saved_input is None:
            raise ModelError(f"backward called on {self.name!r} without a training forward")
        weight = self.get_parameter("weight")
        grad_in, grad_w, grad_b = ops.linear_backward(ctx, grad_out, self._saved_input, weight)
        self.param_grads = [(weight, grad_w)]
        if self.has_bias:
            self.param_grads.append((self.get_parameter("bias"), grad_b))
        return grad_in if grad_in is not None else grad_out


class Conv2d(Module):
    """2-D convolution layer."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = "Conv2d",
    ) -> None:
        super().__init__(name=name)
        self.stride = stride
        self.padding = padding
        self.has_bias = bias
        self.declare_parameter("weight", (out_channels, in_channels, kernel_size, kernel_size))
        if bias:
            self.declare_parameter("bias", (out_channels,))

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        self._save_for_backward(x)
        bias = self.get_parameter("bias") if self.has_bias else None
        return ops.conv2d(ctx, x, self.get_parameter("weight"), bias, self.stride, self.padding)

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self._saved_input is None:
            raise ModelError(f"backward called on {self.name!r} without a training forward")
        weight = self.get_parameter("weight")
        grad_in, grad_w, grad_b = ops.conv2d_backward(ctx, grad_out, self._saved_input, weight)
        self.param_grads = [(weight, grad_w)]
        if self.has_bias:
            self.param_grads.append((self.get_parameter("bias"), grad_b))
        return grad_in if grad_in is not None else grad_out


class ReLU(Module):
    """ReLU activation."""

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        return ops.relu(ctx, x, inplace=not self.training)

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        return ops.elementwise_backward(ctx, grad_out, "relu")


class GELU(Module):
    """GELU activation."""

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        return ops.gelu(ctx, x)

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        return ops.elementwise_backward(ctx, grad_out, "gelu")


class Dropout(Module):
    """Dropout (identity in eval mode)."""

    def __init__(self, p: float = 0.1, name: str = "Dropout") -> None:
        super().__init__(name=name)
        self.p = p

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        return ops.dropout(ctx, x, p=self.p, training=self.training)

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self.p <= 0.0:
            return grad_out
        return ops.elementwise_backward(ctx, grad_out, "dropout")


class MaxPool2d(Module):
    """Max pooling."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, name: str = "MaxPool2d") -> None:
        super().__init__(name=name)
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        self._save_for_backward(x)
        return ops.max_pool2d(ctx, x, self.kernel_size, self.stride)

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self._saved_input is None:
            return grad_out
        return ops.pool_backward(ctx, grad_out, self._saved_input, kind="max")


class AdaptiveAvgPool2d(Module):
    """Adaptive average pooling to a square output."""

    def __init__(self, output_size: int, name: str = "AdaptiveAvgPool2d") -> None:
        super().__init__(name=name)
        self.output_size = output_size

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        self._save_for_backward(x)
        return ops.adaptive_avg_pool2d(ctx, x, self.output_size)

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self._saved_input is None:
            return grad_out
        return ops.pool_backward(ctx, grad_out, self._saved_input, kind="avg")


class Flatten(Module):
    """Flatten all dimensions after the batch dimension (metadata only)."""

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        self._save_for_backward(x)
        return ops.reshape(ctx, x, (x.shape[0], x.numel // max(1, x.shape[0])))

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self._saved_input is None:
            return grad_out
        return ops.reshape(ctx, grad_out, self._saved_input.shape)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, hidden: int, name: str = "LayerNorm") -> None:
        super().__init__(name=name)
        self.declare_parameter("weight", (hidden,))
        self.declare_parameter("bias", (hidden,))

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        self._save_for_backward(x)
        return ops.layer_norm(ctx, x, self.get_parameter("weight"), self.get_parameter("bias"))

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self._saved_input is None:
            return grad_out
        weight = self.get_parameter("weight")
        grad_w = ctx.alloc(weight.shape, name=f"{self.name}.grad_weight")
        grad_b = ctx.alloc(weight.shape, name=f"{self.name}.grad_bias")
        self.param_grads = [(weight, grad_w), (self.get_parameter("bias"), grad_b)]
        return ops.norm_backward(ctx, grad_out, self._saved_input, kind="layer")


class BatchNorm2d(Module):
    """Batch normalisation over NCHW activations."""

    def __init__(self, channels: int, name: str = "BatchNorm2d") -> None:
        super().__init__(name=name)
        self.declare_parameter("weight", (channels,))
        self.declare_parameter("bias", (channels,))
        self.declare_parameter("running_mean", (channels,))
        self.declare_parameter("running_var", (channels,))

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        self._save_for_backward(x)
        return ops.batch_norm2d(
            ctx,
            x,
            self.get_parameter("weight"),
            self.get_parameter("bias"),
            self.get_parameter("running_mean"),
            self.get_parameter("running_var"),
            training=self.training,
        )

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self._saved_input is None:
            return grad_out
        weight = self.get_parameter("weight")
        grad_w = ctx.alloc(weight.shape, name=f"{self.name}.grad_weight")
        grad_b = ctx.alloc(weight.shape, name=f"{self.name}.grad_bias")
        self.param_grads = [(weight, grad_w), (self.get_parameter("bias"), grad_b)]
        return ops.norm_backward(ctx, grad_out, self._saved_input, kind="batch")


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, vocab_size: int, hidden: int, name: str = "Embedding") -> None:
        super().__init__(name=name)
        self.vocab_size = vocab_size
        self.hidden = hidden
        self.declare_parameter("weight", (vocab_size, hidden))

    def forward(self, ctx: FrameworkContext, indices: Tensor) -> Tensor:
        self._save_for_backward(indices)
        return ops.embedding(ctx, indices, self.get_parameter("weight"))

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        if self._saved_input is None:
            return grad_out
        weight = self.get_parameter("weight")
        grad_w = ops.embedding_backward(ctx, grad_out, self._saved_input, weight)
        self.param_grads = [(weight, grad_w)]
        return grad_out


class MultiheadSelfAttention(Module):
    """Multi-head self-attention block (QKV projection, SDPA, output projection)."""

    def __init__(self, hidden: int, num_heads: int, causal: bool = False, name: str = "SelfAttention") -> None:
        super().__init__(name=name)
        if hidden % num_heads != 0:
            raise ShapeError(f"hidden size {hidden} not divisible by {num_heads} heads")
        self.hidden = hidden
        self.num_heads = num_heads
        self.causal = causal
        self.qkv = self.add_module("qkv_proj", Linear(hidden, 3 * hidden, name="qkv_proj"))
        self.out_proj = self.add_module("out_proj", Linear(hidden, hidden, name="out_proj"))

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        self._save_for_backward(x)
        batch, seq, hidden = x.shape
        head_dim = hidden // self.num_heads
        qkv = self.qkv(ctx, x)  # (batch, seq, 3*hidden)
        # Permute-and-split of the fused QKV projection into head-major Q/K/V
        # buffers.  PyTorch materialises this with a copy kernel because the
        # head-major layout is not a contiguous view of the projection output.
        with ctx.module_scope("qkv_split"):
            q = ctx.alloc((batch * self.num_heads, seq, head_dim), dtype=x.dtype, name="q_heads")
            k = ctx.alloc((batch * self.num_heads, seq, head_dim), dtype=x.dtype, name="k_heads")
            v = ctx.alloc((batch * self.num_heads, seq, head_dim), dtype=x.dtype, name="v_heads")
            with ctx.op("aten::split_with_sizes"):
                ctx.launch(
                    ctx.backend.copy_kernel_name(),
                    [ops.read(qkv), ops.write(q), ops.write(k), ops.write(v)],
                    flops=0.0,
                    grid_elements=qkv.numel,
                )
        attn = ops.scaled_dot_product_attention(ctx, q, k, v, causal=self.causal)
        context = ops.contiguous_copy(
            ctx, ops.reshape(ctx, attn, (batch, seq, hidden)), name="attn_context"
        )
        out = self.out_proj(ctx, context)
        ctx.free_all([qkv, q, k, v, attn, context])
        return out

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        batch, seq, hidden = grad_out.shape
        grad_context = self.out_proj.backward(ctx, grad_out)
        # Attention backward: two matmuls per head group plus a softmax
        # backward, mirroring the forward decomposition.
        head_dim = hidden // self.num_heads
        probs = ctx.alloc((batch * self.num_heads, seq, seq), dtype=grad_out.dtype, name="attn_probs_grad")
        grad_scores = ops.softmax_backward(ctx, probs, probs)
        grad_qkv = ctx.alloc((batch, seq, 3 * hidden), dtype=grad_out.dtype, name="grad_qkv")
        with ctx.op("aten::_scaled_dot_product_attention_backward"):
            ctx.launch(
                ctx.backend.gemm_kernel_name(seq, head_dim, seq),
                [ops.read(grad_context), ops.read(grad_scores), ops.write(grad_qkv)],
                flops=4.0 * batch * self.num_heads * seq * seq * head_dim,
                grid_elements=grad_qkv.numel,
            )
        grad_in = self.qkv.backward(ctx, grad_qkv)
        ctx.free_all([probs, grad_scores, grad_qkv, grad_context])
        self.param_grads = []
        return grad_in


class TransformerLayer(Module):
    """One transformer block: self-attention + MLP with residuals and layer norms.

    ``cross_attention=True`` adds a second attention block, turning the layer
    into a decoder layer attending over encoder state (used by Whisper).
    """

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        ffn_hidden: Optional[int] = None,
        causal: bool = False,
        cross_attention: bool = False,
        dropout_p: float = 0.1,
        name: str = "TransformerLayer",
    ) -> None:
        super().__init__(name=name)
        ffn_hidden = ffn_hidden or 4 * hidden
        self.ln1 = self.add_module("ln1", LayerNorm(hidden, name="ln1"))
        self.attn = self.add_module("attn", MultiheadSelfAttention(hidden, num_heads, causal=causal, name="attn"))
        self.cross_attn: Optional[MultiheadSelfAttention] = None
        if cross_attention:
            self.ln_cross = self.add_module("ln_cross", LayerNorm(hidden, name="ln_cross"))
            self.cross_attn = self.add_module(
                "cross_attn", MultiheadSelfAttention(hidden, num_heads, name="cross_attn")
            )
        self.ln2 = self.add_module("ln2", LayerNorm(hidden, name="ln2"))
        self.fc1 = self.add_module("fc1", Linear(hidden, ffn_hidden, name="fc1"))
        self.act = self.add_module("act", GELU(name="act"))
        self.fc2 = self.add_module("fc2", Linear(ffn_hidden, hidden, name="fc2"))
        self.dropout = self.add_module("dropout", Dropout(dropout_p, name="dropout"))

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        transient: list[Tensor] = []
        normed = self.ln1(ctx, x)
        attn_out = self.attn(ctx, normed)
        residual = ops.add(ctx, x, attn_out)
        transient.extend([normed, attn_out])
        x = residual
        if self.cross_attn is not None:
            cross_normed = self.ln_cross(ctx, x)
            cross_out = self.cross_attn(ctx, cross_normed)
            x = ops.add(ctx, x, cross_out)
            transient.extend([cross_normed, cross_out, residual])
        normed2 = self.ln2(ctx, x)
        h1 = self.fc1(ctx, normed2)
        h2 = self.act(ctx, h1)
        h3 = self.dropout(ctx, h2)
        h4 = self.fc2(ctx, h3)
        out = ops.add(ctx, x, h4)
        transient.extend([normed2, h1, h2, h3, h4, x])
        if not self.training:
            # Reference-count reclamation of intermediates in eval mode.
            ctx.free_all([t for t in transient if t is not out])
        return out

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        grad = self.fc2.backward(ctx, grad_out)
        grad = self.act.backward(ctx, grad)
        grad = self.fc1.backward(ctx, grad)
        grad = self.ln2.backward(ctx, grad)
        if self.cross_attn is not None:
            grad = self.cross_attn.backward(ctx, grad)
            grad = self.ln_cross.backward(ctx, grad)
        grad = self.attn.backward(ctx, grad)
        grad = self.ln1.backward(ctx, grad)
        return grad
