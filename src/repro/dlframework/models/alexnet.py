"""AlexNet (Krizhevsky et al.) for the simulated framework.

The paper evaluates AlexNet with batch size 128 (Table IV).  The layer
structure follows torchvision's ``alexnet``: five convolutions with ReLU and
max-pooling, followed by three fully connected layers.
"""

from __future__ import annotations

from repro.dlframework.context import FrameworkContext
from repro.dlframework.models.base import ModelBase
from repro.dlframework.modules import (
    AdaptiveAvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.dlframework.tensor import DType, Tensor


class AlexNet(ModelBase):
    """AlexNet image classifier."""

    model_name = "alexnet"
    model_type = "CNN"
    default_batch_size = 128
    paper_layer_count = 8

    def __init__(self, num_classes: int = 1000) -> None:
        super().__init__(name="AlexNet")
        self.features = self.add_module(
            "features",
            Sequential(
                Conv2d(3, 64, kernel_size=11, stride=4, padding=2, name="conv1"),
                ReLU(name="relu1"),
                MaxPool2d(kernel_size=3, stride=2, name="pool1"),
                Conv2d(64, 192, kernel_size=5, padding=2, name="conv2"),
                ReLU(name="relu2"),
                MaxPool2d(kernel_size=3, stride=2, name="pool2"),
                Conv2d(192, 384, kernel_size=3, padding=1, name="conv3"),
                ReLU(name="relu3"),
                Conv2d(384, 256, kernel_size=3, padding=1, name="conv4"),
                ReLU(name="relu4"),
                Conv2d(256, 256, kernel_size=3, padding=1, name="conv5"),
                ReLU(name="relu5"),
                MaxPool2d(kernel_size=3, stride=2, name="pool3"),
                name="features",
            ),
        )
        self.avgpool = self.add_module("avgpool", AdaptiveAvgPool2d(6, name="avgpool"))
        self.classifier = self.add_module(
            "classifier",
            Sequential(
                Dropout(0.5, name="drop1"),
                Flatten(name="flatten"),
                Linear(256 * 6 * 6, 4096, name="fc1"),
                ReLU(name="relu6"),
                Dropout(0.5, name="drop2"),
                Linear(4096, 4096, name="fc2"),
                ReLU(name="relu7"),
                Linear(4096, num_classes, name="fc3"),
                name="classifier",
            ),
        )

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        x = self.features(ctx, x)
        x = self.avgpool(ctx, x)
        x = self.classifier(ctx, x)
        return x

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        grad = self.classifier.backward(ctx, grad_out)
        grad = self.avgpool.backward(ctx, grad)
        grad = self.features.backward(ctx, grad)
        return grad

    def make_example_inputs(self, ctx: FrameworkContext, batch_size: int | None = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch, 3, 224, 224), dtype=DType.FLOAT32, name="input_images")

    def make_example_targets(self, ctx: FrameworkContext, batch_size: int | None = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch,), dtype=DType.INT64, name="labels")
