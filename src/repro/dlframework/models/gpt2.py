"""GPT-2 (small, 124M) decoder for the simulated framework.

12 causal transformer layers, hidden size 768, evaluated with batch size 8
(Table IV).  The language-model head shares the token-embedding weight, so the
(large) logits tensor is produced by a GEMM against the embedding table — one
of the dominant memory consumers in the paper's GPT-2 footprint.
"""

from __future__ import annotations

from typing import Optional

from repro.dlframework import ops
from repro.dlframework.context import FrameworkContext
from repro.dlframework.models.base import ModelBase
from repro.dlframework.modules import Dropout, Embedding, LayerNorm, TransformerLayer
from repro.dlframework.tensor import DType, Tensor


class Gpt2(ModelBase):
    """GPT-2 small decoder-only language model."""

    model_name = "gpt2"
    model_type = "Transformer"
    default_batch_size = 8
    paper_layer_count = 12

    def __init__(
        self,
        vocab_size: int = 50257,
        hidden: int = 768,
        num_layers: int = 12,
        num_heads: int = 12,
        seq_length: int = 1024,
    ) -> None:
        super().__init__(name="GPT2Model")
        self.vocab_size = vocab_size
        self.hidden = hidden
        self.seq_length = seq_length
        self.wte = self.add_module("wte", Embedding(vocab_size, hidden, name="wte"))
        self.wpe = self.add_module("wpe", Embedding(seq_length, hidden, name="wpe"))
        self.dropout = self.add_module("drop", Dropout(0.1, name="drop"))
        self.layers: list[TransformerLayer] = []
        for idx in range(num_layers):
            layer = TransformerLayer(hidden, num_heads, causal=True, name=f"h.{idx}")
            self.layers.append(self.add_module(f"h.{idx}", layer))
        self.final_norm = self.add_module("ln_f", LayerNorm(hidden, name="ln_f"))

    def forward(self, ctx: FrameworkContext, input_ids: Tensor) -> Tensor:
        tokens = self.wte(ctx, input_ids)
        positions = self.wpe(ctx, input_ids)
        hidden_states = ops.add(ctx, tokens, positions)
        hidden_states = self.dropout(ctx, hidden_states)
        for layer in self.layers:
            hidden_states = layer(ctx, hidden_states)
        hidden_states = self.final_norm(ctx, hidden_states)
        # Tied LM head: logits = hidden @ wte.T, reusing the embedding table.
        batch, seq, hidden = hidden_states.shape
        flat = ops.reshape(ctx, hidden_states, (batch * seq, hidden))
        if self.training:
            self._lm_head_input = flat
        logits = ops.linear(ctx, flat, self.wte.get_parameter("weight"), bias=None)
        return ops.reshape(ctx, logits, (batch, seq, self.vocab_size))

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        batch, seq, _vocab = grad_out.shape
        flat_grad = ops.reshape(ctx, grad_out, (batch * seq, self.vocab_size))
        saved = getattr(self, "_lm_head_input", None)
        if saved is None:
            saved = ctx.alloc((batch * seq, self.hidden), name="lm_head_saved_hidden")
        grad_hidden, grad_wte, _ = ops.linear_backward(
            ctx, flat_grad, saved, self.wte.get_parameter("weight")
        )
        self.param_grads = [(self.wte.get_parameter("weight"), grad_wte)]
        grad = ops.reshape(ctx, grad_hidden, (batch, seq, self.hidden)) if grad_hidden is not None else grad_out
        grad = self.final_norm.backward(ctx, grad)
        for layer in reversed(self.layers):
            grad = layer.backward(ctx, grad)
        self.wte.backward(ctx, grad)
        self.wpe.backward(ctx, grad)
        return grad

    def make_example_inputs(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch, self.seq_length), dtype=DType.INT64, name="input_ids")

    def make_example_targets(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch, self.seq_length), dtype=DType.INT64, name="labels")
