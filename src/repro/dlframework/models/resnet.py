"""ResNet-18 and ResNet-34 for the simulated framework.

Residual-block CNNs evaluated with batch size 32 in the paper (Table IV).
The structure follows torchvision: a stem convolution, four stages of basic
blocks, global average pooling and a classifier.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dlframework import ops
from repro.dlframework.context import FrameworkContext
from repro.dlframework.models.base import ModelBase
from repro.dlframework.modules import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.dlframework.tensor import DType, Tensor


class BasicBlock(Module):
    """Two 3x3 convolutions with batch norm and a residual connection."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, name: str = "BasicBlock") -> None:
        super().__init__(name=name)
        self.conv1 = self.add_module("conv1", Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, name="conv1"))
        self.bn1 = self.add_module("bn1", BatchNorm2d(out_channels, name="bn1"))
        self.relu = self.add_module("relu", ReLU(name="relu"))
        self.conv2 = self.add_module("conv2", Conv2d(out_channels, out_channels, 3, padding=1, bias=False, name="conv2"))
        self.bn2 = self.add_module("bn2", BatchNorm2d(out_channels, name="bn2"))
        self.downsample: Optional[Sequential] = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = self.add_module(
                "downsample",
                Sequential(
                    Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, name="conv"),
                    BatchNorm2d(out_channels, name="bn"),
                    name="downsample",
                ),
            )

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        identity = x
        h1 = self.conv1(ctx, x)
        h2 = self.bn1(ctx, h1)
        h2 = self.relu(ctx, h2)
        h3 = self.conv2(ctx, h2)
        h4 = self.bn2(ctx, h3)
        if self.downsample is not None:
            identity = self.downsample(ctx, x)
        out = ops.add(ctx, h4, identity)
        out = self.relu(ctx, out)
        if not self.training:
            ctx.free_all([t for t in (h1, h2, h3, h4) if t is not out])
            if identity is not x and identity is not out:
                ctx.free(identity)
        return out

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        grad = self.relu.backward(ctx, grad_out)
        grad = self.bn2.backward(ctx, grad)
        grad = self.conv2.backward(ctx, grad)
        grad = self.relu.backward(ctx, grad)
        grad = self.bn1.backward(ctx, grad)
        grad = self.conv1.backward(ctx, grad)
        if self.downsample is not None:
            self.downsample.backward(ctx, grad_out)
        return grad


class ResNet(ModelBase):
    """Generic ResNet built from basic blocks."""

    model_type = "CNN"
    default_batch_size = 32

    def __init__(self, stage_blocks: Sequence[int], num_classes: int = 1000, name: str = "ResNet") -> None:
        super().__init__()
        self.name = name
        self.stem = self.add_module(
            "stem",
            Sequential(
                Conv2d(3, 64, kernel_size=7, stride=2, padding=3, bias=False, name="conv1"),
                BatchNorm2d(64, name="bn1"),
                ReLU(name="relu"),
                MaxPool2d(kernel_size=3, stride=2, name="maxpool"),
                name="stem",
            ),
        )
        channels = [64, 128, 256, 512]
        self.stages: list[Sequential] = []
        in_channels = 64
        for stage_idx, (blocks, out_channels) in enumerate(zip(stage_blocks, channels)):
            layers: list[Module] = []
            for block_idx in range(blocks):
                stride = 2 if block_idx == 0 and stage_idx > 0 else 1
                layers.append(BasicBlock(in_channels, out_channels, stride=stride, name=f"block{block_idx}"))
                in_channels = out_channels
            stage = Sequential(*layers, name=f"layer{stage_idx + 1}")
            self.stages.append(self.add_module(f"layer{stage_idx + 1}", stage))
        self.avgpool = self.add_module("avgpool", AdaptiveAvgPool2d(1, name="avgpool"))
        self.flatten = self.add_module("flatten", Flatten(name="flatten"))
        self.fc = self.add_module("fc", Linear(512, num_classes, name="fc"))

    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        x = self.stem(ctx, x)
        for stage in self.stages:
            x = stage(ctx, x)
        x = self.avgpool(ctx, x)
        x = self.flatten(ctx, x)
        x = self.fc(ctx, x)
        return x

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        grad = self.fc.backward(ctx, grad_out)
        grad = self.flatten.backward(ctx, grad)
        grad = self.avgpool.backward(ctx, grad)
        for stage in reversed(self.stages):
            grad = stage.backward(ctx, grad)
        grad = self.stem.backward(ctx, grad)
        return grad

    def make_example_inputs(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch, 3, 224, 224), dtype=DType.FLOAT32, name="input_images")

    def make_example_targets(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch,), dtype=DType.INT64, name="labels")


class ResNet18(ResNet):
    """ResNet-18 (stages of 2/2/2/2 basic blocks)."""

    model_name = "resnet18"
    paper_layer_count = 18

    def __init__(self, num_classes: int = 1000) -> None:
        super().__init__((2, 2, 2, 2), num_classes=num_classes, name="ResNet18")


class ResNet34(ResNet):
    """ResNet-34 (stages of 3/4/6/3 basic blocks)."""

    model_name = "resnet34"
    paper_layer_count = 34

    def __init__(self, num_classes: int = 1000) -> None:
        super().__init__((3, 4, 6, 3), num_classes=num_classes, name="ResNet34")
