"""BERT-base encoder for the simulated framework.

12 transformer encoder layers, hidden size 768, evaluated with batch size 16
(Table IV).  The sequence length defaults to 256 tokens, a typical fine-tuning
configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.dlframework import ops
from repro.dlframework.context import FrameworkContext
from repro.dlframework.models.base import ModelBase
from repro.dlframework.modules import Dropout, Embedding, LayerNorm, Linear, TransformerLayer
from repro.dlframework.tensor import DType, Tensor


class Bert(ModelBase):
    """BERT-base encoder with a classification head."""

    model_name = "bert"
    model_type = "Transformer"
    default_batch_size = 16
    paper_layer_count = 12

    def __init__(
        self,
        vocab_size: int = 30522,
        hidden: int = 768,
        num_layers: int = 12,
        num_heads: int = 12,
        seq_length: int = 256,
        num_classes: int = 2,
    ) -> None:
        super().__init__(name="BertModel")
        self.hidden = hidden
        self.seq_length = seq_length
        self.token_embedding = self.add_module("embeddings", Embedding(vocab_size, hidden, name="word_embeddings"))
        self.position_embedding = self.add_module(
            "position_embeddings", Embedding(512, hidden, name="position_embeddings")
        )
        self.embedding_norm = self.add_module("embedding_norm", LayerNorm(hidden, name="embedding_norm"))
        self.embedding_dropout = self.add_module("embedding_dropout", Dropout(0.1, name="embedding_dropout"))
        self.layers: list[TransformerLayer] = []
        for idx in range(num_layers):
            layer = TransformerLayer(hidden, num_heads, causal=False, name=f"encoder.layer.{idx}")
            self.layers.append(self.add_module(f"encoder.layer.{idx}", layer))
        self.pooler = self.add_module("pooler", Linear(hidden, hidden, name="pooler"))
        self.classifier = self.add_module("classifier", Linear(hidden, num_classes, name="classifier"))

    def forward(self, ctx: FrameworkContext, input_ids: Tensor) -> Tensor:
        tokens = self.token_embedding(ctx, input_ids)
        positions = self.position_embedding(ctx, input_ids)
        hidden_states = ops.add(ctx, tokens, positions)
        hidden_states = self.embedding_norm(ctx, hidden_states)
        hidden_states = self.embedding_dropout(ctx, hidden_states)
        for layer in self.layers:
            hidden_states = layer(ctx, hidden_states)
        pooled = self.pooler(ctx, hidden_states)
        pooled = ops.tanh(ctx, pooled)
        logits = self.classifier(ctx, pooled)
        return logits

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        grad = self.classifier.backward(ctx, grad_out)
        grad = self.pooler.backward(ctx, grad)
        for layer in reversed(self.layers):
            grad = layer.backward(ctx, grad)
        grad = self.embedding_norm.backward(ctx, grad)
        self.token_embedding.backward(ctx, grad)
        self.position_embedding.backward(ctx, grad)
        return grad

    def make_example_inputs(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch, self.seq_length), dtype=DType.INT64, name="input_ids")

    def make_example_targets(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch,), dtype=DType.INT64, name="labels")
