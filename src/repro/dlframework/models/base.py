"""Model base class shared by the model zoo.

A model is a :class:`~repro.dlframework.modules.Module` with extra metadata the
workload runner and the experiment harness need: a registry name, a model type
(CNN / Transformer, mirroring Table IV of the paper), the batch size used in
the paper's evaluation, and factories for example inputs/targets.
"""

from __future__ import annotations

from typing import Optional

from repro.dlframework.context import FrameworkContext
from repro.dlframework.modules import Module
from repro.dlframework.tensor import Tensor


class ModelBase(Module):
    """Base class for models in the zoo."""

    #: Registry name (e.g. ``"resnet18"``).
    model_name: str = "model"
    #: "CNN" or "Transformer" (Table IV's Type column).
    model_type: str = "CNN"
    #: Batch size used in the paper's evaluation (Table IV).
    default_batch_size: int = 1
    #: Layer count reported in Table IV (for documentation and reports).
    paper_layer_count: int = 0
    #: Whether the model can be sharded for the multi-GPU parallelism
    #: profiles (DP/TP/PP); see :mod:`repro.dlframework.parallel`.
    supports_parallelism: bool = False

    def make_example_inputs(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        """Allocate an example input batch for this model."""
        raise NotImplementedError

    def make_example_targets(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        """Allocate example training targets for this model."""
        raise NotImplementedError

    def describe(self) -> dict[str, object]:
        """Summary used by reports and the experiment harness."""
        return {
            "name": self.model_name,
            "type": self.model_type,
            "batch_size": self.default_batch_size,
            "layers": self.paper_layer_count,
            "parameter_bytes": self.parameter_bytes(),
        }
