"""Model zoo: the six DL models evaluated in the paper (Table IV) plus
Megatron GPT-2 345M for the multi-GPU parallelism study (Figure 15)."""

from typing import Callable

from repro.dlframework.models.alexnet import AlexNet
from repro.dlframework.models.base import ModelBase
from repro.dlframework.models.bert import Bert
from repro.dlframework.models.gpt2 import Gpt2
from repro.dlframework.models.megatron import MegatronConfig, MegatronGpt2
from repro.dlframework.models.resnet import BasicBlock, ResNet, ResNet18, ResNet34
from repro.dlframework.models.whisper import Whisper

#: Registry of the paper's evaluation models (Table IV abbreviations map to
#: these names: AN, RN-18, RN-34, GPT-2, BERT, Whisper).
MODEL_REGISTRY: dict[str, Callable[[], ModelBase]] = {
    "alexnet": AlexNet,
    "resnet18": ResNet18,
    "resnet34": ResNet34,
    "bert": Bert,
    "gpt2": Gpt2,
    "whisper": Whisper,
    "megatron_gpt2_345m": MegatronGpt2,
}

#: Alternate spellings accepted by the ``models`` registry namespace.
MODEL_ALIASES: dict[str, str] = {
    "megatron-gpt2-345m": "megatron_gpt2_345m",
    "megatron": "megatron_gpt2_345m",
    "resnet-18": "resnet18",
    "resnet-34": "resnet34",
}

#: Abbreviations used in the paper's tables and figures.
MODEL_ABBREVIATIONS: dict[str, str] = {
    "alexnet": "AN",
    "resnet18": "RN-18",
    "resnet34": "RN-34",
    "gpt2": "GPT-2",
    "bert": "BERT",
    "whisper": "Whisper",
}

#: The six models of Table IV, in the paper's presentation order.
PAPER_MODELS: tuple[str, ...] = ("alexnet", "resnet18", "resnet34", "bert", "gpt2", "whisper")


def create_model(name: str) -> ModelBase:
    """Instantiate a model by name from the ``models`` registry namespace.

    The built-in zoo above is seeded automatically; plugin models registered
    via :mod:`repro.core.registry` (decorator or ``pasta.models`` entry
    points) resolve the same way.
    """
    # Imported lazily: the registry seeds itself from this module, so a
    # module-level import would be cyclic.
    from repro.core.registry import REGISTRY

    return REGISTRY.create("models", name)  # type: ignore[return-value]


def registered_models() -> list[str]:
    """Names of every registered model (built-ins plus plugins)."""
    from repro.core.registry import REGISTRY

    return REGISTRY.names("models")


__all__ = [
    "AlexNet",
    "BasicBlock",
    "Bert",
    "Gpt2",
    "MegatronConfig",
    "MegatronGpt2",
    "MODEL_ABBREVIATIONS",
    "MODEL_REGISTRY",
    "ModelBase",
    "PAPER_MODELS",
    "ResNet",
    "ResNet18",
    "ResNet34",
    "Whisper",
    "create_model",
    "registered_models",
]
