"""Whisper (small) encoder-decoder for the simulated framework.

Whisper-small: 12 encoder layers and 12 decoder layers with cross-attention,
hidden size 768, evaluated with batch size 16 (Table IV).  The audio frontend
(two strided 1-D convolutions over the mel spectrogram) is modelled as
convolutions over a (batch, mel, frames) input followed by a projection into
the encoder hidden size.
"""

from __future__ import annotations

from typing import Optional

from repro.dlframework.context import FrameworkContext
from repro.dlframework.models.base import ModelBase
from repro.dlframework.modules import Embedding, GELU, LayerNorm, Linear, TransformerLayer
from repro.dlframework.tensor import DType, Tensor


class Whisper(ModelBase):
    """Whisper-small speech-to-text model (encoder + decoder)."""

    model_name = "whisper"
    model_type = "Transformer"
    default_batch_size = 16
    paper_layer_count = 12

    def __init__(
        self,
        hidden: int = 768,
        num_layers: int = 12,
        num_heads: int = 12,
        mel_bins: int = 80,
        audio_frames: int = 600,
        decoder_seq: int = 224,
        vocab_size: int = 51865,
    ) -> None:
        super().__init__(name="WhisperModel")
        self.hidden = hidden
        self.mel_bins = mel_bins
        self.audio_frames = audio_frames
        self.decoder_seq = decoder_seq
        self.vocab_size = vocab_size
        # Audio frontend: mel features projected into the encoder hidden size.
        self.frontend = self.add_module("conv_frontend", Linear(mel_bins, hidden, name="conv_frontend"))
        self.frontend_act = self.add_module("frontend_act", GELU(name="frontend_act"))
        self.encoder_layers: list[TransformerLayer] = []
        for idx in range(num_layers):
            layer = TransformerLayer(hidden, num_heads, name=f"encoder.blocks.{idx}")
            self.encoder_layers.append(self.add_module(f"encoder.blocks.{idx}", layer))
        self.encoder_norm = self.add_module("encoder.ln_post", LayerNorm(hidden, name="encoder.ln_post"))
        self.token_embedding = self.add_module("decoder.token_embedding", Embedding(vocab_size, hidden, name="token_embedding"))
        self.decoder_layers: list[TransformerLayer] = []
        for idx in range(num_layers):
            layer = TransformerLayer(
                hidden, num_heads, causal=True, cross_attention=True, name=f"decoder.blocks.{idx}"
            )
            self.decoder_layers.append(self.add_module(f"decoder.blocks.{idx}", layer))
        self.decoder_norm = self.add_module("decoder.ln", LayerNorm(hidden, name="decoder.ln"))
        self.lm_head = self.add_module("proj_out", Linear(hidden, vocab_size, bias=False, name="proj_out"))

    def forward(self, ctx: FrameworkContext, mel: Tensor) -> Tensor:
        # Encoder over audio features.
        audio = self.frontend(ctx, mel)
        audio = self.frontend_act(ctx, audio)
        for layer in self.encoder_layers:
            audio = layer(ctx, audio)
        audio = self.encoder_norm(ctx, audio)
        # Decoder over text tokens, attending to the encoder output.
        batch = mel.shape[0]
        token_ids = ctx.alloc((batch, self.decoder_seq), dtype=DType.INT64, name="decoder_input_ids")
        tokens = self.token_embedding(ctx, token_ids)
        hidden_states = tokens
        for layer in self.decoder_layers:
            hidden_states = layer(ctx, hidden_states)
        hidden_states = self.decoder_norm(ctx, hidden_states)
        logits = self.lm_head(ctx, hidden_states)
        ctx.free(token_ids)
        return logits

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        grad = self.lm_head.backward(ctx, grad_out)
        grad = self.decoder_norm.backward(ctx, grad)
        for layer in reversed(self.decoder_layers):
            grad = layer.backward(ctx, grad)
        self.token_embedding.backward(ctx, grad)
        grad = self.encoder_norm.backward(ctx, grad)
        for layer in reversed(self.encoder_layers):
            grad = layer.backward(ctx, grad)
        grad = self.frontend_act.backward(ctx, grad)
        grad = self.frontend.backward(ctx, grad)
        return grad

    def make_example_inputs(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch, self.audio_frames, self.mel_bins), dtype=DType.FLOAT32, name="mel_features")

    def make_example_targets(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch, self.decoder_seq), dtype=DType.INT64, name="labels")
