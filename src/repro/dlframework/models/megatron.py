"""Megatron GPT-2 345M for the multi-GPU parallelism experiments (Figure 15).

24 transformer layers, hidden size 1024, 16 attention heads, sequence length
1024.  The model supports construction of *shards*: a tensor-parallel shard
keeps every layer but divides the attention/MLP widths by the tensor-parallel
degree; a pipeline-parallel shard keeps full-width layers but only a contiguous
slice of the layer stack (plus the embedding on the first stage and the LM head
on the last stage — which is why the last pipeline stage shows the heavier tail
in Figure 15c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ModelError
from repro.dlframework import ops
from repro.dlframework.context import FrameworkContext
from repro.dlframework.models.base import ModelBase
from repro.dlframework.modules import Dropout, Embedding, LayerNorm, Linear, TransformerLayer
from repro.dlframework.tensor import DType, Tensor


@dataclass(frozen=True)
class MegatronConfig:
    """Configuration of the Megatron GPT-2 345M model."""

    vocab_size: int = 50257
    hidden: int = 1024
    num_layers: int = 24
    num_heads: int = 16
    seq_length: int = 1024
    batch_size: int = 4


class MegatronGpt2(ModelBase):
    """Megatron GPT-2 345M, optionally sharded for TP or PP execution."""

    model_name = "megatron_gpt2_345m"
    model_type = "Transformer"
    default_batch_size = 4
    paper_layer_count = 24
    supports_parallelism = True

    def __init__(
        self,
        config: Optional[MegatronConfig] = None,
        tensor_parallel_size: int = 1,
        pipeline_stage: Optional[tuple[int, int]] = None,
    ) -> None:
        """Build the full model or one shard of it.

        Parameters
        ----------
        tensor_parallel_size:
            Divide attention/MLP widths by this factor (each rank holds 1/N of
            every layer's parameters).
        pipeline_stage:
            ``(stage_index, num_stages)``; the shard holds only its contiguous
            slice of the layer stack.  Stage 0 additionally holds the
            embeddings; the last stage holds the final norm and LM head.
        """
        super().__init__(name="MegatronGPT2")
        self.config = config or MegatronConfig()
        cfg = self.config
        if cfg.hidden % tensor_parallel_size != 0:
            raise ModelError("hidden size must divide evenly across tensor-parallel ranks")
        self.tensor_parallel_size = tensor_parallel_size
        self.pipeline_stage = pipeline_stage
        self.default_batch_size = cfg.batch_size

        shard_hidden = cfg.hidden
        shard_heads = cfg.num_heads
        ffn_hidden = 4 * cfg.hidden // tensor_parallel_size
        if tensor_parallel_size > 1:
            shard_heads = max(1, cfg.num_heads // tensor_parallel_size)

        first_layer, last_layer = 0, cfg.num_layers
        self.is_first_stage, self.is_last_stage = True, True
        if pipeline_stage is not None:
            stage, num_stages = pipeline_stage
            if not 0 <= stage < num_stages:
                raise ModelError(f"invalid pipeline stage {stage} of {num_stages}")
            per_stage = cfg.num_layers // num_stages
            first_layer = stage * per_stage
            last_layer = cfg.num_layers if stage == num_stages - 1 else first_layer + per_stage
            self.is_first_stage = stage == 0
            self.is_last_stage = stage == num_stages - 1

        if self.is_first_stage:
            self.wte = self.add_module("wte", Embedding(cfg.vocab_size, shard_hidden, name="wte"))
            self.wpe = self.add_module("wpe", Embedding(cfg.seq_length, shard_hidden, name="wpe"))
            self.drop = self.add_module("drop", Dropout(0.1, name="drop"))
        self.layers: list[TransformerLayer] = []
        for idx in range(first_layer, last_layer):
            layer = TransformerLayer(
                shard_hidden, shard_heads, ffn_hidden=ffn_hidden, causal=True, name=f"h.{idx}"
            )
            self.layers.append(self.add_module(f"h.{idx}", layer))
        if self.is_last_stage:
            self.ln_f = self.add_module("ln_f", LayerNorm(shard_hidden, name="ln_f"))
            self.lm_head = self.add_module(
                "lm_head", Linear(shard_hidden, cfg.vocab_size // tensor_parallel_size, bias=False, name="lm_head")
            )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def forward(self, ctx: FrameworkContext, x: Tensor) -> Tensor:
        """Run this shard.  ``x`` is token ids on the first stage and the
        previous stage's activations otherwise."""
        if self.is_first_stage:
            tokens = self.wte(ctx, x)
            positions = self.wpe(ctx, x)
            hidden_states = ops.add(ctx, tokens, positions)
            hidden_states = self.drop(ctx, hidden_states)
        else:
            hidden_states = x
        for layer in self.layers:
            hidden_states = layer(ctx, hidden_states)
        if self.is_last_stage:
            hidden_states = self.ln_f(ctx, hidden_states)
            hidden_states = self.lm_head(ctx, hidden_states)
        return hidden_states

    def backward(self, ctx: FrameworkContext, grad_out: Tensor) -> Tensor:
        grad = grad_out
        if self.is_last_stage:
            grad = self.lm_head.backward(ctx, grad)
            grad = self.ln_f.backward(ctx, grad)
        for layer in reversed(self.layers):
            grad = layer.backward(ctx, grad)
        if self.is_first_stage:
            self.wte.backward(ctx, grad)
            self.wpe.backward(ctx, grad)
        return grad

    def make_example_inputs(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        cfg = self.config
        if self.is_first_stage:
            return ctx.alloc((batch, cfg.seq_length), dtype=DType.INT64, name="input_ids")
        return ctx.alloc((batch, cfg.seq_length, cfg.hidden), dtype=DType.FLOAT32, name="stage_input")

    def make_example_targets(self, ctx: FrameworkContext, batch_size: Optional[int] = None) -> Tensor:
        batch = batch_size or self.default_batch_size
        return ctx.alloc((batch, self.config.seq_length), dtype=DType.INT64, name="labels")
