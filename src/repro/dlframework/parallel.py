"""Multi-GPU parallelism strategies: data, tensor and pipeline parallelism.

Section V-D2 of the paper profiles one training iteration of Megatron GPT-2
345M on two A100s under three parallelism strategies and shows that:

* **Data parallelism (DP)** — each rank holds a full replica and the two GPUs'
  memory timelines are identical;
* **Tensor parallelism (TP)** — every layer is split across ranks, the
  timelines are again symmetric but the peak is roughly half of DP's;
* **Pipeline parallelism (PP)** — the layer stack is split at the midpoint, so
  the last stage (which also owns the final norm and the LM head that produces
  the large logits tensor) shows a heavier tail than the first stage.

The runners here reproduce those semantics over a simulated
:class:`~repro.gpusim.multigpu.DeviceSet`: one :class:`FrameworkContext` per
rank, gradient all-reduce for DP, activation all-reduce for TP, and activation
send/recv for PP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import FrameworkError
from repro.dlframework import ops
from repro.dlframework.context import FrameworkContext
from repro.dlframework.models.megatron import MegatronConfig, MegatronGpt2
from repro.dlframework.optim import Adam
from repro.gpusim.multigpu import DeviceSet
from repro.gpusim.runtime import MemcpyKind


@dataclass
class ParallelRunResult:
    """Per-rank outcome of one parallel training iteration."""

    strategy: str
    contexts: list[FrameworkContext]

    @property
    def device_indices(self) -> list[int]:
        """Global device index of each rank's runtime."""
        return [ctx.runtime.device.index for ctx in self.contexts]

    def usage_timelines(self) -> list[list[tuple[int, int]]]:
        """Per-rank (event_index, allocated_bytes) timelines (Figure 15's y-axis)."""
        return [list(ctx.allocator.usage_timeline) for ctx in self.contexts]

    def peak_bytes(self) -> list[int]:
        """Per-rank peak allocated bytes."""
        return [ctx.allocator.stats.peak_allocated_bytes for ctx in self.contexts]

    def allocation_event_counts(self) -> list[int]:
        """Per-rank number of allocation/reclamation events."""
        return [ctx.allocator.event_count for ctx in self.contexts]


class ParallelRunner:
    """Base class for multi-GPU training runners.

    Construction only builds the per-rank framework contexts; the models are
    built, materialized and given optimizers by :meth:`prepare`.  The split
    lets a profiling session attach to each rank's context *before* parameter
    allocation happens, so the recorded event stream covers the whole run —
    :meth:`run_iteration` still calls :meth:`prepare` on first use, keeping
    the historical construct-then-run usage working unchanged.
    """

    strategy = "none"

    def __init__(self, device_set: DeviceSet, config: Optional[MegatronConfig] = None) -> None:
        if len(device_set) < 2:
            raise FrameworkError("parallel runners require at least two devices")
        self.device_set = device_set
        self.config = config or MegatronConfig()
        self.contexts = [FrameworkContext(rt) for rt in device_set]
        self.models: list[MegatronGpt2] = []
        self.optimizers: list[Adam] = []
        self._prepared = False

    def prepare(self) -> None:
        """Build and materialize the per-rank model shards (idempotent)."""
        if self._prepared:
            return
        self._build_models()
        for ctx, model in zip(self.contexts, self.models):
            model.materialize(ctx)
        self.optimizers = [
            Adam(list(model.parameters())) for model in self.models
        ]
        self._prepared = True

    def _build_models(self) -> None:
        raise NotImplementedError

    def run_iteration(self) -> ParallelRunResult:
        """Run one training iteration across all ranks."""
        raise NotImplementedError

    def run(
        self,
        iterations: int = 1,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> ParallelRunResult:
        """Run ``iterations`` training iterations; returns the final result.

        ``progress(completed, iterations)`` is invoked after each iteration —
        the hook live progress streaming (``pasta campaign watch``) uses to
        report per-rank advancement without the runner knowing about it.
        """
        if iterations < 1:
            raise FrameworkError(f"iterations must be >= 1, got {iterations}")
        result = self.run_iteration()
        if progress is not None:
            progress(1, iterations)
        for completed in range(2, iterations + 1):
            result = self.run_iteration()
            if progress is not None:
                progress(completed, iterations)
        return result

    @property
    def world_size(self) -> int:
        """Number of ranks."""
        return len(self.device_set)

    def _train_step_local(self, rank: int) -> None:
        """Forward + loss + backward on one rank (no cross-rank communication)."""
        ctx, model = self.contexts[rank], self.models[rank]
        model.train()
        model.clear_grads()
        inputs = model.make_example_inputs(ctx)
        targets = model.make_example_targets(ctx)
        ctx.copy_to_device(inputs)
        ctx.copy_to_device(targets)
        logits = model(ctx, inputs)
        ops.cross_entropy(ctx, logits, targets)
        grad_logits = ctx.alloc(logits.shape, dtype=logits.dtype, name="grad_logits")
        model.backward(ctx, grad_logits)

    def _optimizer_step(self, rank: int) -> None:
        ctx, model = self.contexts[rank], self.models[rank]
        grads = {p.tensor_id: g for p, g in model.collect_param_grads()}
        self.optimizers[rank].step(ctx, grads)
        ctx.synchronize()
        ctx.release_transients()


class DataParallelRunner(ParallelRunner):
    """Each rank holds a full model replica; gradients are all-reduced."""

    strategy = "data_parallel"

    def _build_models(self) -> None:
        self.models = [MegatronGpt2(self.config) for _ in range(self.world_size)]

    def run_iteration(self) -> ParallelRunResult:
        self.prepare()
        for rank in range(self.world_size):
            self._train_step_local(rank)
        # Gradient all-reduce across replicas (one collective per rank).
        for rank in range(self.world_size):
            ctx, model = self.contexts[rank], self.models[rank]
            for _param, grad in model.collect_param_grads():
                ops.all_reduce(ctx, grad, world_size=self.world_size)
        for rank in range(self.world_size):
            self._optimizer_step(rank)
        return ParallelRunResult(self.strategy, self.contexts)


class TensorParallelRunner(ParallelRunner):
    """Every layer is sharded across ranks; activations are all-reduced."""

    strategy = "tensor_parallel"

    def _build_models(self) -> None:
        self.models = [
            MegatronGpt2(self.config, tensor_parallel_size=self.world_size)
            for _ in range(self.world_size)
        ]

    def run_iteration(self) -> ParallelRunResult:
        self.prepare()
        for rank in range(self.world_size):
            ctx, model = self.contexts[rank], self.models[rank]
            model.train()
            model.clear_grads()
            inputs = model.make_example_inputs(ctx)
            targets = model.make_example_targets(ctx)
            ctx.copy_to_device(inputs)
            ctx.copy_to_device(targets)
            logits = model(ctx, inputs)
            # Row-parallel output layers all-reduce their partial activations.
            ops.all_reduce(ctx, logits, world_size=self.world_size)
            ops.cross_entropy(ctx, logits, targets)
            grad_logits = ctx.alloc(logits.shape, dtype=logits.dtype, name="grad_logits")
            model.backward(ctx, grad_logits)
            # Backward all-reduce of input gradients.
            ops.all_reduce(ctx, grad_logits, world_size=self.world_size)
        for rank in range(self.world_size):
            self._optimizer_step(rank)
        return ParallelRunResult(self.strategy, self.contexts)


class PipelineParallelRunner(ParallelRunner):
    """The layer stack is split across ranks; activations flow stage to stage."""

    strategy = "pipeline_parallel"

    def __init__(
        self,
        device_set: DeviceSet,
        config: Optional[MegatronConfig] = None,
        num_microbatches: int = 2,
    ) -> None:
        self.num_microbatches = num_microbatches
        super().__init__(device_set, config)

    def _build_models(self) -> None:
        self.models = [
            MegatronGpt2(self.config, pipeline_stage=(rank, self.world_size))
            for rank in range(self.world_size)
        ]

    def run_iteration(self) -> ParallelRunResult:
        self.prepare()
        cfg = self.config
        micro_batch = max(1, cfg.batch_size // self.num_microbatches)
        for _micro in range(self.num_microbatches):
            stage_activation = None
            # Forward through the pipeline stages.
            for rank in range(self.world_size):
                ctx, model = self.contexts[rank], self.models[rank]
                model.train()
                if rank == 0:
                    model.clear_grads()
                    inputs = model.make_example_inputs(ctx, micro_batch)
                    ctx.copy_to_device(inputs)
                else:
                    inputs = ctx.alloc(
                        (micro_batch, cfg.seq_length, cfg.hidden), name="recv_activation"
                    )
                    ops.send_recv(ctx, inputs, direction="recv")
                stage_activation = model(ctx, inputs)
                if rank < self.world_size - 1:
                    ops.send_recv(ctx, stage_activation, direction="send")
                    self.contexts[rank].runtime.memcpy(
                        stage_activation.nbytes, MemcpyKind.DEVICE_TO_DEVICE,
                        src_address=stage_activation.address,
                    )
            # Loss and backward on the last stage, then grads flow backwards.
            last = self.world_size - 1
            ctx_last, model_last = self.contexts[last], self.models[last]
            targets = model_last.make_example_targets(ctx_last, micro_batch)
            ops.cross_entropy(ctx_last, stage_activation, targets)
            grad = ctx_last.alloc(stage_activation.shape, name="grad_stage_out")
            for rank in range(self.world_size - 1, -1, -1):
                ctx, model = self.contexts[rank], self.models[rank]
                if rank != self.world_size - 1:
                    grad = ctx.alloc(
                        (micro_batch, cfg.seq_length, cfg.hidden), name="recv_grad"
                    )
                    ops.send_recv(ctx, grad, direction="recv")
                grad = model.backward(ctx, grad)
                if rank > 0:
                    ops.send_recv(ctx, grad, direction="send")
        for rank in range(self.world_size):
            self._optimizer_step(rank)
        return ParallelRunResult(self.strategy, self.contexts)


#: Registry of parallelism strategies for the experiment harness.
PARALLEL_RUNNERS: dict[str, type[ParallelRunner]] = {
    "data_parallel": DataParallelRunner,
    "tensor_parallel": TensorParallelRunner,
    "pipeline_parallel": PipelineParallelRunner,
}

#: Short strategy names (the :class:`~repro.api.spec.ParallelismSpec`
#: vocabulary) mapped to the runner registry's long-form keys.
STRATEGY_SHORT_NAMES: dict[str, str] = {
    "dp": "data_parallel",
    "tp": "tensor_parallel",
    "pp": "pipeline_parallel",
}


def create_parallel_runner(
    strategy: str,
    device_set: DeviceSet,
    config: Optional[MegatronConfig] = None,
    num_microbatches: Optional[int] = None,
) -> ParallelRunner:
    """Instantiate a parallel training runner by strategy name.

    Accepts both the long-form runner names (``"tensor_parallel"``) and the
    profile-spec short names (``"tp"``).  ``num_microbatches`` applies to
    pipeline parallelism only and is rejected for the other strategies.
    """
    key = strategy.strip().lower()
    key = STRATEGY_SHORT_NAMES.get(key, key)
    runner_cls = PARALLEL_RUNNERS.get(key)
    if runner_cls is None:
        known = sorted(PARALLEL_RUNNERS) + sorted(STRATEGY_SHORT_NAMES)
        raise FrameworkError(
            f"unknown parallelism strategy {strategy!r}; known: {known}"
        )
    if num_microbatches is not None:
        if runner_cls is not PipelineParallelRunner:
            raise FrameworkError(
                f"num_microbatches applies to pipeline parallelism only, "
                f"not {key!r}"
            )
        return PipelineParallelRunner(device_set, config, num_microbatches=num_microbatches)
    return runner_cls(device_set, config)
