"""PyTorch-style caching (pool) allocator for the DL framework substrate.

Contemporary DL frameworks do not call ``cudaMalloc`` per tensor.  They request
large *segments* from the driver and carve them into blocks, keeping freed
blocks cached for reuse (PyTorch's ``CUDACachingAllocator``).  Two consequences
matter for the paper:

* A single driver-level memory object contains many tensors with different
  lifetimes — the object/tensor granularity mismatch behind the UVM prefetch
  study (Section V-C1, Figures 11/12).
* Memory-usage timelines must be reconstructed from framework callbacks
  (``c10::reportMemoryUsage``-style), not from ``cudaMalloc`` events, because
  most tensor allocations never reach the driver (Figures 14/15).

The allocator reproduces the behaviours analyses depend on: size rounding,
small/large pools with different segment sizes, block splitting and coalescing,
caching of freed blocks, and signed memory-usage callbacks with a logical event
index.

Internally the hot operations are designed to stay off the profiler's radar
(the allocator runs inside every simulated workload):

* blocks within a segment form a doubly-linked list, so splitting and
  coalescing are O(1) pointer updates — no ``list.index`` scans;
* free blocks are kept in a per-pool size-ordered index, so best-fit lookup
  is a binary search instead of a linear walk over every block of every
  segment; and
* :class:`Block` compares by identity (``eq=False``), so membership tests
  never trigger field-by-field dataclass comparisons.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, NamedTuple, Optional

from repro.errors import AllocatorError
from repro.dlframework.tensor import DType, Tensor
from repro.gpusim.device import MiB
from repro.gpusim.memory import MemoryObject
from repro.gpusim.runtime import AcceleratorRuntime

_block_ids = itertools.count(1)
_segment_seqs = itertools.count(1)

#: Allocation request rounding, matching PyTorch's 512-byte granularity.
ROUND_BYTES = 512
#: Requests below this size are served from the small pool.
SMALL_ALLOCATION_LIMIT = 1 * MiB


def round_size(nbytes: int, round_to: int = ROUND_BYTES) -> int:
    """Round a request up to the allocator granularity (minimum one granule)."""
    if nbytes <= 0:
        return round_to
    return ((nbytes + round_to - 1) // round_to) * round_to


@dataclass(frozen=True)
class AllocatorProfile:
    """Backend-specific allocator behaviour.

    The CUDA and HIP caching allocators share their design but differ in
    segment sizing and in how aggressively the surrounding framework fuses
    operators (which changes how many transient tensors exist at all).  The
    profile captures the allocator-side half; operator fusion lives in
    :mod:`repro.dlframework.backend`.
    """

    name: str = "cuda"
    small_segment_bytes: int = 2 * MiB
    large_segment_bytes: int = 20 * MiB
    round_bytes: int = ROUND_BYTES
    #: Large requests above this fraction of ``large_segment_bytes`` get a
    #: dedicated segment sized to the request.
    oversize_threshold: float = 1.0


CUDA_ALLOCATOR_PROFILE = AllocatorProfile(name="cuda")
#: HIP's allocator uses the same design; modelled with smaller large-pool
#: segments, which yields more driver segments and more splitting activity.
HIP_ALLOCATOR_PROFILE = AllocatorProfile(name="hip", large_segment_bytes=10 * MiB)


@dataclass(eq=False)
class Block:
    """One block inside a pool segment.

    Blocks compare by identity and link to their in-segment neighbours, so
    split/coalesce are pointer surgery rather than list manipulation.
    """

    segment: "Segment"
    offset: int
    size: int
    free: bool = True
    block_id: int = field(default_factory=lambda: next(_block_ids))
    requested_size: int = 0
    prev: Optional["Block"] = field(default=None, repr=False)
    next: Optional["Block"] = field(default=None, repr=False)

    @property
    def address(self) -> int:
        """Device address of the block's first byte."""
        return self.segment.memory_object.address + self.offset


@dataclass(eq=False)
class Segment:
    """A driver-level memory object managed by the caching allocator."""

    memory_object: MemoryObject
    pool: str  # "small" or "large"
    #: Creation order of the segment; ties in the free-block index break on
    #: it, mirroring the segment scan order of a linear best-fit search.
    seq: int = field(default_factory=lambda: next(_segment_seqs))
    #: First block (offset 0) of the intrusive block list.
    head: Optional[Block] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        """Segment capacity in bytes."""
        return self.memory_object.size

    def iter_blocks(self) -> Iterator[Block]:
        """Blocks in offset order."""
        block = self.head
        while block is not None:
            yield block
            block = block.next

    @property
    def blocks(self) -> list[Block]:
        """Blocks in offset order (materialised view of the linked list)."""
        return list(self.iter_blocks())

    def free_bytes(self) -> int:
        """Bytes currently available inside this segment."""
        return sum(b.size for b in self.iter_blocks() if b.free)


class FreeBlockIndex:
    """Size-ordered index over one pool's free blocks.

    Keys are ``(size, segment seq, offset)``, so a binary search for the
    smallest key at or above a request size lands on exactly the block a
    linear best-fit scan (segments in creation order, blocks in offset
    order, strict-improvement updates) would have chosen — same block, found
    in O(log n).

    The index requires the discipline that a block's ``size`` never changes
    while it is indexed: remove, mutate, re-add.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[int, int, int, Block]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Block]:
        return (entry[3] for entry in self._entries)

    @staticmethod
    def _key(block: Block) -> tuple[int, int, int]:
        return (block.size, block.segment.seq, block.offset)

    def add(self, block: Block) -> None:
        """Index one free block."""
        size, seq, offset = self._key(block)
        insort(self._entries, (size, seq, offset, block))

    def remove(self, block: Block) -> None:
        """Drop one indexed block (must still have its indexed size)."""
        size, seq, offset = self._key(block)
        idx = bisect_left(self._entries, (size, seq, offset))
        if idx < len(self._entries) and self._entries[idx][3] is block:
            del self._entries[idx]
            return
        raise AllocatorError(
            f"free-block index out of sync: block {block.block_id} "
            f"(size={block.size}, offset={block.offset}) is not indexed"
        )

    def best_fit(self, nbytes: int) -> Optional[Block]:
        """Smallest free block of at least ``nbytes`` (ties: oldest segment,
        lowest offset), or None."""
        idx = bisect_left(self._entries, (nbytes, -1, -1))
        if idx >= len(self._entries):
            return None
        return self._entries[idx][3]


class MemoryUsageRecord(NamedTuple):
    """One framework memory-usage callback (``c10::reportMemoryUsage`` analogue).

    ``delta_bytes`` is positive for allocations and negative for reclamations —
    the sign convention PASTA's event processor normalises (Section III-G).
    A named tuple: one record is constructed per tensor alloc/free, which
    puts construction cost on the simulation's hot path.
    """

    event_index: int
    delta_bytes: int
    allocated_bytes: int
    reserved_bytes: int
    device_index: int
    tensor_id: int
    tensor_name: str = ""
    address: int = 0
    nbytes: int = 0


#: Callback signature for memory-usage observers.
MemoryUsageCallback = Callable[[MemoryUsageRecord], None]


@dataclass
class AllocatorStats:
    """Aggregate allocator statistics."""

    allocated_bytes: int = 0
    reserved_bytes: int = 0
    peak_allocated_bytes: int = 0
    peak_reserved_bytes: int = 0
    allocation_count: int = 0
    free_count: int = 0
    segment_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesce_count: int = 0


class CachingAllocator:
    """Pool-based tensor allocator sitting on a simulated runtime.

    Parameters
    ----------
    runtime:
        Runtime whose ``malloc``/``malloc_managed`` provides pool segments.
    profile:
        Backend-specific sizing behaviour.
    use_managed_memory:
        Allocate segments with ``malloc_managed`` so they participate in UVM
        paging (the configuration used by the prefetching study).
    """

    def __init__(
        self,
        runtime: AcceleratorRuntime,
        profile: AllocatorProfile = CUDA_ALLOCATOR_PROFILE,
        use_managed_memory: bool = False,
    ) -> None:
        self.runtime = runtime
        self.profile = profile
        self.use_managed_memory = use_managed_memory
        self.segments: list[Segment] = []
        self.stats = AllocatorStats()
        self._callbacks: list[MemoryUsageCallback] = []
        self._event_index = 0
        self._blocks_by_id: dict[int, Block] = {}
        self._free_blocks: dict[str, FreeBlockIndex] = {
            "small": FreeBlockIndex(),
            "large": FreeBlockIndex(),
        }
        #: Timeline of (event_index, allocated_bytes) pairs for usage plots.
        self.usage_timeline: list[tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    # observer registration
    # ------------------------------------------------------------------ #
    def register_callback(self, callback: MemoryUsageCallback) -> None:
        """Register a memory-usage observer (PASTA's framework adapter)."""
        if callback not in self._callbacks:
            self._callbacks.append(callback)

    def unregister_callback(self, callback: MemoryUsageCallback) -> None:
        """Remove a previously registered observer."""
        if callback in self._callbacks:
            self._callbacks.remove(callback)

    def _report(self, delta: int, tensor: Tensor) -> None:
        self._event_index += 1
        record = MemoryUsageRecord(
            event_index=self._event_index,
            delta_bytes=delta,
            allocated_bytes=self.stats.allocated_bytes,
            reserved_bytes=self.stats.reserved_bytes,
            device_index=self.runtime.device.index,
            tensor_id=tensor.tensor_id,
            tensor_name=tensor.name,
            address=tensor.address,
            nbytes=tensor.nbytes,
        )
        self.usage_timeline.append((self._event_index, self.stats.allocated_bytes))
        for callback in list(self._callbacks):
            callback(record)

    # ------------------------------------------------------------------ #
    # segment management
    # ------------------------------------------------------------------ #
    def _new_segment(self, pool: str, min_bytes: int) -> Segment:
        if pool == "small":
            segment_bytes = self.profile.small_segment_bytes
        else:
            segment_bytes = max(self.profile.large_segment_bytes, round_size(min_bytes))
        tag = f"{self.profile.name}_pool_{pool}"
        if self.use_managed_memory:
            obj = self.runtime.malloc_managed(segment_bytes, tag=tag)
        else:
            obj = self.runtime.malloc(segment_bytes, tag=tag)
        segment = Segment(memory_object=obj, pool=pool)
        segment.head = Block(segment=segment, offset=0, size=obj.size, free=True)
        self._free_blocks[pool].add(segment.head)
        self.segments.append(segment)
        self.stats.reserved_bytes += obj.size
        self.stats.peak_reserved_bytes = max(self.stats.peak_reserved_bytes, self.stats.reserved_bytes)
        self.stats.segment_count += 1
        return segment

    def _pool_for(self, nbytes: int) -> str:
        return "small" if nbytes < SMALL_ALLOCATION_LIMIT else "large"

    def _split_block(self, block: Block, nbytes: int) -> Block:
        """Carve ``nbytes`` off the front of an (unindexed) free block.

        The remainder, if any, becomes a new free block linked after
        ``block`` and goes into the free index.
        """
        remainder = block.size - nbytes
        if remainder >= self.profile.round_bytes:
            tail = Block(
                segment=block.segment,
                offset=block.offset + nbytes,
                size=remainder,
                free=True,
                prev=block,
                next=block.next,
            )
            if block.next is not None:
                block.next.prev = tail
            block.next = tail
            block.size = nbytes
            self._free_blocks[block.segment.pool].add(tail)
        return block

    def _coalesce(self, block: Block) -> Block:
        """Merge a newly freed (unindexed) block with free neighbours.

        Absorbed neighbours leave both the free index and the segment's
        block list; the caller indexes the surviving block.
        """
        free_index = self._free_blocks[block.segment.pool]
        nxt = block.next
        if nxt is not None and nxt.free:
            free_index.remove(nxt)
            block.size += nxt.size
            block.next = nxt.next
            if nxt.next is not None:
                nxt.next.prev = block
            self.stats.coalesce_count += 1
        prev = block.prev
        if prev is not None and prev.free:
            free_index.remove(prev)
            prev.size += block.size
            prev.next = block.next
            if block.next is not None:
                block.next.prev = prev
            block = prev
            self.stats.coalesce_count += 1
        return block

    # ------------------------------------------------------------------ #
    # allocation API
    # ------------------------------------------------------------------ #
    def allocate_tensor(
        self,
        shape: tuple[int, ...],
        dtype: DType = DType.FLOAT32,
        name: str = "",
        is_parameter: bool = False,
        requires_grad: bool = False,
    ) -> Tensor:
        """Allocate storage for a tensor and report the allocation."""
        tensor = Tensor(
            shape=shape,
            dtype=dtype,
            name=name,
            is_parameter=is_parameter,
            requires_grad=requires_grad,
            device_index=self.runtime.device.index,
        )
        return self.materialize(tensor)

    def materialize(self, tensor: Tensor) -> Tensor:
        """Assign storage to an existing (unmaterialised) tensor."""
        nbytes = round_size(max(1, tensor.nbytes), self.profile.round_bytes)
        pool = self._pool_for(nbytes)
        free_index = self._free_blocks[pool]
        block = free_index.best_fit(nbytes)
        if block is None:
            self.stats.cache_misses += 1
            segment = self._new_segment(pool, nbytes)
            block = segment.head
            if block is None or block.size < nbytes:
                raise AllocatorError(
                    f"new segment of {0 if block is None else block.size} bytes "
                    f"cannot satisfy request of {nbytes} bytes"
                )
        else:
            self.stats.cache_hits += 1
        free_index.remove(block)
        block = self._split_block(block, nbytes)
        block.free = False
        block.requested_size = tensor.nbytes
        self._blocks_by_id[block.block_id] = block

        tensor.address = block.address
        tensor.block_id = block.block_id
        tensor.segment_object_id = block.segment.memory_object.object_id
        tensor.freed = False

        self.stats.allocated_bytes += block.size
        self.stats.peak_allocated_bytes = max(
            self.stats.peak_allocated_bytes, self.stats.allocated_bytes
        )
        self.stats.allocation_count += 1
        self._report(block.size, tensor)
        return tensor

    def free_tensor(self, tensor: Tensor) -> None:
        """Release a tensor's storage back to the pool and report the reclamation."""
        if tensor.block_id is None:
            raise AllocatorError(f"tensor {tensor.tensor_id} has no allocated storage")
        block = self._blocks_by_id.get(tensor.block_id)
        if block is None or block.free:
            raise AllocatorError(f"double free of tensor {tensor.tensor_id}")
        block.free = True
        freed_bytes = block.size
        self.stats.allocated_bytes -= freed_bytes
        self.stats.free_count += 1
        del self._blocks_by_id[block.block_id]
        merged = self._coalesce(block)
        self._free_blocks[merged.segment.pool].add(merged)
        tensor.freed = True
        self._report(-freed_bytes, tensor)
        tensor.block_id = None

    def free_tensors(self, tensors: Iterable[Tensor]) -> None:
        """Free several tensors, skipping ones already freed."""
        for tensor in tensors:
            if tensor.block_id is not None and not tensor.freed:
                self.free_tensor(tensor)

    def free_list_depth(self) -> int:
        """Number of free blocks currently indexed across all pools.

        A health indicator sampled by the telemetry layer: sustained growth
        means fragmentation (frees that never coalesce back into big blocks).
        """
        return sum(len(index) for index in self._free_blocks.values())

    def empty_cache(self) -> int:
        """Return fully-free segments to the driver; returns bytes released."""
        released = 0
        remaining: list[Segment] = []
        for segment in self.segments:
            if all(block.free for block in segment.iter_blocks()):
                for block in segment.iter_blocks():
                    self._free_blocks[segment.pool].remove(block)
                self.runtime.free(segment.memory_object)
                released += segment.size
                self.stats.reserved_bytes -= segment.size
                self.stats.segment_count -= 1
            else:
                remaining.append(segment)
        self.segments = remaining
        return released

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def event_count(self) -> int:
        """Number of allocation/reclamation events reported so far."""
        return self._event_index

    def segment_for_address(self, address: int) -> Optional[Segment]:
        """Return the pool segment containing ``address`` (or None)."""
        for segment in self.segments:
            obj = segment.memory_object
            if obj.address <= address < obj.address + obj.size:
                return segment
        return None

    def live_tensor_bytes(self) -> int:
        """Bytes currently handed out to live tensors."""
        return self.stats.allocated_bytes

    def reserved_bytes(self) -> int:
        """Bytes of driver memory reserved by the pool."""
        return self.stats.reserved_bytes

    # ------------------------------------------------------------------ #
    # invariant checking (used by the allocator stress tests)
    # ------------------------------------------------------------------ #
    def check_consistency(self) -> None:
        """Verify the block lists, free index and byte accounting agree.

        Raises :class:`~repro.errors.AllocatorError` on the first violated
        invariant; cheap enough for tests, not called on the hot path.
        """
        indexed = {"small": set(), "large": set()}
        for pool, free_index in self._free_blocks.items():
            for block in free_index:
                if not block.free:
                    raise AllocatorError(
                        f"allocated block {block.block_id} is in the {pool} free index"
                    )
                if block.segment.pool != pool:
                    raise AllocatorError(
                        f"block {block.block_id} indexed under the wrong pool"
                    )
                indexed[pool].add(id(block))
        allocated = 0
        reserved = 0
        for segment in self.segments:
            reserved += segment.size
            offset = 0
            previous: Optional[Block] = None
            for block in segment.iter_blocks():
                if block.offset != offset:
                    raise AllocatorError(
                        f"segment {segment.seq}: block {block.block_id} at offset "
                        f"{block.offset}, expected {offset}"
                    )
                if block.prev is not previous:
                    raise AllocatorError(
                        f"segment {segment.seq}: broken prev link at block {block.block_id}"
                    )
                if block.free:
                    if previous is not None and previous.free:
                        raise AllocatorError(
                            f"segment {segment.seq}: adjacent free blocks "
                            f"{previous.block_id} and {block.block_id} not coalesced"
                        )
                    if id(block) not in indexed[segment.pool]:
                        raise AllocatorError(
                            f"free block {block.block_id} missing from the free index"
                        )
                    indexed[segment.pool].discard(id(block))
                else:
                    allocated += block.size
                offset += block.size
                previous = block
            if offset != segment.size:
                raise AllocatorError(
                    f"segment {segment.seq}: blocks cover {offset} of {segment.size} bytes"
                )
        stale = {pool: blocks for pool, blocks in indexed.items() if blocks}
        if stale:
            raise AllocatorError(f"free index holds stale blocks: {stale}")
        if allocated != self.stats.allocated_bytes:
            raise AllocatorError(
                f"allocated-bytes accounting drifted: blocks say {allocated}, "
                f"stats say {self.stats.allocated_bytes}"
            )
        if reserved != self.stats.reserved_bytes:
            raise AllocatorError(
                f"reserved-bytes accounting drifted: segments say {reserved}, "
                f"stats say {self.stats.reserved_bytes}"
            )
