"""Tensors for the simulated deep-learning framework.

Tensors are metadata-only: a shape, a dtype, and a placement inside a pool
block handed out by the caching allocator.  No element data is ever stored —
PASTA's analyses care about *where tensors live, how large they are, and when
they are allocated, accessed and reclaimed*, not about their values.

The address of a tensor is its block's device address; because the caching
allocator sub-divides large driver-level memory objects (pool segments) into
blocks, a tensor address lies *inside* a memory object, which is precisely the
object-vs-tensor granularity mismatch the paper's UVM prefetching study is
about (Section V-C1).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from functools import cached_property
from enum import Enum
from typing import Optional, Sequence

from repro.errors import ShapeError


class DType(str, Enum):
    """Element types supported by the substrate."""

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    BFLOAT16 = "bfloat16"
    INT64 = "int64"
    INT32 = "int32"
    INT8 = "int8"
    BOOL = "bool"

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return _ITEMSIZE[self]


_ITEMSIZE = {
    DType.FLOAT32: 4,
    DType.FLOAT16: 2,
    DType.BFLOAT16: 2,
    DType.INT64: 8,
    DType.INT32: 4,
    DType.INT8: 1,
    DType.BOOL: 1,
}

_tensor_ids = itertools.count(1)


@dataclass
class Tensor:
    """A metadata-only tensor placed in device memory.

    Attributes
    ----------
    shape:
        Tensor dimensions.
    dtype:
        Element type.
    address:
        Device virtual address of the first element (assigned by the caching
        allocator; ``0`` for tensors that have not been materialised).
    device_index:
        Owning device.
    requires_grad:
        Whether the autograd engine should produce a gradient for it.
    name:
        Optional human-readable name (e.g. ``"encoder.layer.0.attention.query.weight"``).
    is_parameter:
        True for model parameters (long-lived), False for activations and
        other transient tensors.
    block_id / segment_object_id:
        Identifiers linking the tensor back to its allocator block and the
        driver-level memory object (pool segment) containing it.
    """

    shape: tuple[int, ...]
    dtype: DType = DType.FLOAT32
    address: int = 0
    device_index: int = 0
    requires_grad: bool = False
    name: str = ""
    is_parameter: bool = False
    tensor_id: int = field(default_factory=lambda: next(_tensor_ids))
    block_id: Optional[int] = None
    segment_object_id: Optional[int] = None
    grad: Optional["Tensor"] = None
    #: Set by the allocator when the tensor's storage has been released.
    freed: bool = False

    def __post_init__(self) -> None:
        shape = self.shape
        if any(d < 0 for d in shape):
            raise ShapeError(f"tensor shape must be non-negative, got {shape}")
        # Fast path: shapes are almost always tuples of plain ints already.
        if type(shape) is not tuple or any(type(d) is not int for d in shape):
            self.shape = tuple(int(d) for d in shape)

    # ------------------------------------------------------------------ #
    # size helpers
    # ------------------------------------------------------------------ #
    # Cached: shape and dtype are fixed after __post_init__, and both sizes
    # are re-read on every allocator report and kernel-argument lowering.
    @cached_property
    def numel(self) -> int:
        """Number of elements."""
        return math.prod(self.shape) if self.shape else 1

    @cached_property
    def nbytes(self) -> int:
        """Storage size in bytes."""
        return self.numel * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def end_address(self) -> int:
        """One past the last byte of the tensor's storage."""
        return self.address + self.nbytes

    def size(self, dim: Optional[int] = None) -> tuple[int, ...] | int:
        """Shape, or the extent of one dimension (PyTorch-style)."""
        if dim is None:
            return self.shape
        return self.shape[dim]

    def address_range(self) -> tuple[int, int]:
        """``(address, nbytes)`` of the tensor's storage."""
        return self.address, self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"Tensor(id={self.tensor_id}{label}, shape={self.shape}, dtype={self.dtype.value})"


def tensor_shape_for_bytes(nbytes: int, dtype: DType = DType.FLOAT32) -> tuple[int, ...]:
    """Return a flat shape whose storage is at least ``nbytes``."""
    if nbytes <= 0:
        raise ShapeError("nbytes must be positive")
    return (max(1, math.ceil(nbytes / dtype.itemsize)),)


def check_matmul_shapes(a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
    """Validate and compute the result shape of ``a @ b`` (batched 2-D semantics)."""
    if len(a) < 2 or len(b) < 2:
        raise ShapeError(f"matmul requires >=2-D operands, got {tuple(a)} and {tuple(b)}")
    if a[-1] != b[-2]:
        raise ShapeError(f"matmul inner dimensions mismatch: {tuple(a)} @ {tuple(b)}")
    batch_a, batch_b = tuple(a[:-2]), tuple(b[:-2])
    if batch_a and batch_b and batch_a != batch_b:
        raise ShapeError(f"matmul batch dimensions mismatch: {tuple(a)} @ {tuple(b)}")
    batch = batch_a or batch_b
    return (*batch, a[-2], b[-1])
