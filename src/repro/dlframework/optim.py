"""Optimizers for the simulated framework: SGD and Adam.

Optimizer state follows the real frameworks' behaviour that matters for memory
analysis: Adam keeps two float32 moment buffers per parameter (allocated
lazily on the first step and persistent afterwards), which is a large part of
why training footprints in Table V exceed inference footprints.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import FrameworkError
from repro.dlframework import ops
from repro.dlframework.context import FrameworkContext
from repro.dlframework.tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Sequence[Tensor]) -> None:
        self.params = list(params)
        if not self.params:
            raise FrameworkError("optimizer requires at least one parameter")

    def step(self, ctx: FrameworkContext, grads_by_param: dict[int, Tensor]) -> None:
        """Apply one update given a map from parameter tensor_id to gradient."""
        raise NotImplementedError

    def _ordered_grads(self, grads_by_param: dict[int, Tensor]) -> tuple[list[Tensor], list[Tensor]]:
        params, grads = [], []
        for param in self.params:
            grad = grads_by_param.get(param.tensor_id)
            if grad is not None:
                params.append(param)
                grads.append(grad)
        return params, grads


class SGD(Optimizer):
    """Plain SGD (no momentum buffers)."""

    def __init__(self, params: Sequence[Tensor], lr: float = 0.01) -> None:
        super().__init__(params)
        self.lr = lr

    def step(self, ctx: FrameworkContext, grads_by_param: dict[int, Tensor]) -> None:
        params, grads = self._ordered_grads(grads_by_param)
        if params:
            ops.sgd_step(ctx, params, grads)


class Adam(Optimizer):
    """Adam with persistent first/second moment state per parameter."""

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-4) -> None:
        super().__init__(params)
        self.lr = lr
        self._exp_avg: dict[int, Tensor] = {}
        self._exp_avg_sq: dict[int, Tensor] = {}

    def state_bytes(self) -> int:
        """Bytes of optimizer state currently allocated."""
        return sum(t.nbytes for t in self._exp_avg.values()) + sum(
            t.nbytes for t in self._exp_avg_sq.values()
        )

    def _ensure_state(self, ctx: FrameworkContext, params: Sequence[Tensor]) -> None:
        for param in params:
            if param.tensor_id not in self._exp_avg:
                self._exp_avg[param.tensor_id] = ctx.alloc(
                    param.shape, dtype=param.dtype,
                    name=f"{param.name}.exp_avg", is_parameter=True,
                )
                self._exp_avg_sq[param.tensor_id] = ctx.alloc(
                    param.shape, dtype=param.dtype,
                    name=f"{param.name}.exp_avg_sq", is_parameter=True,
                )

    def step(self, ctx: FrameworkContext, grads_by_param: dict[int, Tensor]) -> None:
        params, grads = self._ordered_grads(grads_by_param)
        if not params:
            return
        self._ensure_state(ctx, params)
        exp_avg = [self._exp_avg[p.tensor_id] for p in params]
        exp_avg_sq = [self._exp_avg_sq[p.tensor_id] for p in params]
        ops.adam_step(ctx, params, grads, exp_avg, exp_avg_sq)
