"""Framework-level callback registry (operator and tensor events).

DL frameworks expose hooks that tools can register with — PyTorch's
``at::RecordFunction`` for operator start/end and ``c10::reportMemoryUsage``
for tensor allocation/reclamation.  PASTA's event handler registers with this
registry to receive *high-level* framework events alongside the *low-level*
vendor events (Section III-E of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.dlframework.allocator import MemoryUsageRecord

_op_ids = itertools.count(1)


@dataclass(frozen=True)
class OperatorEvent:
    """One operator start or end event (``at::RecordFunction`` analogue)."""

    op_id: int
    name: str
    phase: str  # "start" or "end"
    device_index: int
    #: Logical sequence number within the run.
    sequence: int
    #: Optional module / layer scope the operator executed under.
    scope: str = ""
    #: Number of kernels the operator launched (filled on the end event).
    kernel_count: int = 0
    #: Python-level call stack captured at dispatch time (innermost first).
    python_stack: tuple[str, ...] = ()


#: Callback signatures.
OperatorCallback = Callable[[OperatorEvent], None]
MemoryCallback = Callable[[MemoryUsageRecord], None]


class FrameworkCallbackRegistry:
    """Holds operator and memory observers and fans events out to them."""

    def __init__(self) -> None:
        self._operator_callbacks: list[OperatorCallback] = []
        self._memory_callbacks: list[MemoryCallback] = []
        self._sequence = 0
        self.operator_event_count = 0
        self.memory_event_count = 0

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_operator_callback(self, callback: OperatorCallback) -> None:
        """Register an ``at::RecordFunction``-style observer."""
        if callback not in self._operator_callbacks:
            self._operator_callbacks.append(callback)

    def remove_operator_callback(self, callback: OperatorCallback) -> None:
        """Remove an operator observer."""
        if callback in self._operator_callbacks:
            self._operator_callbacks.remove(callback)

    def add_memory_callback(self, callback: MemoryCallback) -> None:
        """Register a ``c10::reportMemoryUsage``-style observer."""
        if callback not in self._memory_callbacks:
            self._memory_callbacks.append(callback)

    def remove_memory_callback(self, callback: MemoryCallback) -> None:
        """Remove a memory observer."""
        if callback in self._memory_callbacks:
            self._memory_callbacks.remove(callback)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def new_operator_id(self) -> int:
        """Allocate a fresh operator id."""
        return next(_op_ids)

    def emit_operator(
        self,
        op_id: int,
        name: str,
        phase: str,
        device_index: int,
        scope: str = "",
        kernel_count: int = 0,
        python_stack: tuple[str, ...] = (),
    ) -> OperatorEvent:
        """Emit an operator start/end event to all operator observers."""
        self._sequence += 1
        event = OperatorEvent(
            op_id=op_id,
            name=name,
            phase=phase,
            device_index=device_index,
            sequence=self._sequence,
            scope=scope,
            kernel_count=kernel_count,
            python_stack=python_stack,
        )
        self.operator_event_count += 1
        for callback in list(self._operator_callbacks):
            callback(event)
        return event

    def emit_memory(self, record: MemoryUsageRecord) -> None:
        """Forward a memory-usage record to all memory observers."""
        self.memory_event_count += 1
        for callback in list(self._memory_callbacks):
            callback(record)
