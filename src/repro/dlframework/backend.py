"""Framework backends: CUDA (NVIDIA) and HIP (AMD) lowering behaviour.

PyTorch dispatches the same operator graph to different kernels depending on
the backend: kernel names differ (cuBLAS/cuDNN vs rocBLAS/MIOpen), operator
decomposition and fusion differ (e.g. bias+activation epilogues are fused on
CUDA but lowered separately on HIP in this model), and the caching allocator is
tuned slightly differently.  Figure 14 of the paper attributes the differences
it observes between NVIDIA and AMD memory timelines to exactly these effects:
the NVIDIA run issues fewer allocation/deallocation events but reaches a
slightly higher peak.

A :class:`BackendProfile` collects those knobs so the operator layer
(:mod:`repro.dlframework.ops`) stays backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dlframework.allocator import (
    AllocatorProfile,
    CUDA_ALLOCATOR_PROFILE,
    HIP_ALLOCATOR_PROFILE,
)
from repro.gpusim.device import DeviceSpec, Vendor


@dataclass(frozen=True)
class BackendProfile:
    """Backend-specific lowering behaviour.

    Attributes
    ----------
    name:
        ``"cuda"`` or ``"hip"``.
    vendor:
        Device vendor the backend targets.
    allocator_profile:
        Pool-allocator sizing used by this backend.
    fuse_bias_activation:
        Whether elementwise bias-add + activation epilogues fuse into the GEMM
        kernel.  When False the framework materialises an extra temporary and
        launches an extra elementwise kernel per affected operator.
    fuse_dropout_add:
        Whether dropout + residual-add fuse into a single kernel.
    gemm_reuse_factor:
        Average number of times a GEMM operand element is re-read from global
        memory (captures tiling efficiency; feeds access counts).
    kernel_launch_overhead_ns:
        Fixed host-side launch latency added per kernel.
    """

    name: str
    vendor: Vendor
    allocator_profile: AllocatorProfile
    fuse_bias_activation: bool = True
    fuse_dropout_add: bool = True
    #: Whether the tanh-approximation GELU is a single fused kernel.  When
    #: False the framework decomposes it into elementwise primitives with
    #: intermediate tensors, producing more allocation events (one of the
    #: backend differences visible in Figure 14).
    fuse_gelu: bool = True
    #: Bytes of BLAS workspace requested per GEMM (cuBLAS asks for a larger
    #: workspace than rocBLAS, nudging the NVIDIA peak slightly higher).
    gemm_workspace_bytes: int = 0
    gemm_reuse_factor: float = 2.0
    kernel_launch_overhead_ns: int = 4_000

    # ------------------------------------------------------------------ #
    # kernel naming
    # ------------------------------------------------------------------ #
    def gemm_kernel_name(self, m: int, n: int, k: int, dtype_tag: str = "s") -> str:
        """Name of the GEMM kernel the BLAS library would pick for this problem."""
        if self.vendor is Vendor.NVIDIA:
            tile = "128x128" if min(m, n) >= 512 else ("128x64" if min(m, n) >= 128 else "32x32_sliced1x4")
            return f"ampere_{dtype_tag}gemm_{tile}_tn"
        tile = "MT128x128x16" if min(m, n) >= 512 else ("MT64x64x16" if min(m, n) >= 128 else "MT32x32x16")
        return f"Cijk_Ailk_Bljk_SB_{tile}_SE_K1"

    def gemm_bias_kernel_name(self, m: int, n: int, k: int) -> str:
        """GEMM-with-bias-epilogue kernel (the hot kernel in Figure 4)."""
        if self.vendor is Vendor.NVIDIA:
            return "at::cuda::blas::gemm_and_bias"
        return "rocblas_gemm_ex_bias"

    def conv_kernel_names(self, forward: bool = True) -> list[str]:
        """Kernels a convolution lowers to (im2col + implicit GEMM on both backends)."""
        if self.vendor is Vendor.NVIDIA:
            if forward:
                return ["at::native::im2col_kernel", "implicit_convolve_sgemm"]
            return [
                "at::native::col2im_kernel",
                "cudnn::detail::dgrad2d_alg1_1",
                "cudnn::detail::wgrad_alg0_engine",
            ]
        if forward:
            return ["MIOpenIm2Col", "MIOpenConvUni"]
        return ["MIOpenCol2Im", "MIOpenConvBwdData", "MIOpenConvBwdWeights"]

    def elementwise_kernel_name(self, op: str) -> str:
        """Vectorised elementwise kernel name for a unary/binary op."""
        if self.vendor is Vendor.NVIDIA:
            return f"at::native::vectorized_elementwise_kernel<4, {op}>"
        return f"at::native::elementwise_kernel_hip<{op}>"

    def reduction_kernel_name(self, op: str) -> str:
        """Reduction kernel name."""
        if self.vendor is Vendor.NVIDIA:
            return f"at::native::reduce_kernel<512, {op}>"
        return f"at::native::reduce_kernel_hip<{op}>"

    def softmax_kernel_name(self, backward: bool = False) -> str:
        """Softmax kernel name."""
        direction = "backward" if backward else "forward"
        if self.vendor is Vendor.NVIDIA:
            return f"at::native::(anonymous namespace)::softmax_warp_{direction}"
        return f"at::native::softmax_warp_{direction}_hip"

    def layernorm_kernel_name(self, backward: bool = False) -> str:
        """Layer-norm kernel name."""
        if self.vendor is Vendor.NVIDIA:
            if backward:
                return "at::native::(anonymous namespace)::layer_norm_grad_input_kernel"
            return "at::native::(anonymous namespace)::vectorized_layer_norm_kernel"
        return "MIOpenLayerNorm" + ("Bwd" if backward else "Fwd")

    def batchnorm_kernel_name(self, backward: bool = False) -> str:
        """Batch-norm kernel name."""
        if self.vendor is Vendor.NVIDIA:
            return "cudnn::bn_" + ("bw" if backward else "fw") + "_1C11_kernel_NCHW"
        return "MIOpenBatchNorm" + ("Bwd" if backward else "FwdTrain")

    def pool_kernel_name(self, kind: str, backward: bool = False) -> str:
        """Pooling kernel name (``kind`` is ``"max"`` or ``"avg"``)."""
        suffix = "backward" if backward else "forward"
        if self.vendor is Vendor.NVIDIA:
            return f"at::native::(anonymous namespace)::{kind}_pool_{suffix}_nchw"
        return f"MIOpenPooling{kind.capitalize()}{suffix.capitalize()}"

    def copy_kernel_name(self) -> str:
        """Device copy kernel name."""
        if self.vendor is Vendor.NVIDIA:
            return "at::native::unrolled_elementwise_kernel<direct_copy_kernel_cuda>"
        return "at::native::copy_device_to_device_hip"

    def embedding_kernel_name(self, backward: bool = False) -> str:
        """Embedding lookup / backward kernel name."""
        if self.vendor is Vendor.NVIDIA:
            if backward:
                return "at::native::(anonymous namespace)::embedding_backward_feature_kernel"
            return "at::native::(anonymous namespace)::indexSelectLargeIndex"
        return "at::native::embedding_hip_" + ("bwd" if backward else "fwd")

    def optimizer_kernel_name(self) -> str:
        """Fused multi-tensor optimizer kernel name."""
        if self.vendor is Vendor.NVIDIA:
            return "at::native::(anonymous namespace)::multi_tensor_apply_kernel"
        return "at::native::multi_tensor_apply_kernel_hip"

    def communication_kernel_name(self, collective: str) -> str:
        """NCCL/RCCL collective kernel name (multi-GPU runs)."""
        if self.vendor is Vendor.NVIDIA:
            return f"ncclDevKernel_{collective}_RING_LL"
        return f"rcclDevKernel_{collective}_RING_LL"


CUDA_BACKEND = BackendProfile(
    name="cuda",
    vendor=Vendor.NVIDIA,
    allocator_profile=CUDA_ALLOCATOR_PROFILE,
    fuse_bias_activation=True,
    fuse_dropout_add=True,
    fuse_gelu=True,
    gemm_workspace_bytes=32 * 1024 * 1024,
    gemm_reuse_factor=2.0,
)

HIP_BACKEND = BackendProfile(
    name="hip",
    vendor=Vendor.AMD,
    allocator_profile=HIP_ALLOCATOR_PROFILE,
    fuse_bias_activation=False,
    fuse_dropout_add=False,
    fuse_gelu=False,
    gemm_workspace_bytes=4 * 1024 * 1024,
    gemm_reuse_factor=2.0,
)


def backend_for_device(spec: DeviceSpec) -> BackendProfile:
    """Select the framework backend matching a device's vendor."""
    return CUDA_BACKEND if spec.vendor is Vendor.NVIDIA else HIP_BACKEND
