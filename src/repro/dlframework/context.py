"""Execution context tying the framework substrate to a simulated device.

A :class:`FrameworkContext` is the substrate's equivalent of a PyTorch CUDA
device context: it owns the caching allocator, the callback registry, the
backend profile, and the operator/module scope stacks, and it is the single
place where operators allocate tensors and launch kernels.  Everything PASTA
observes about a DL workload flows through this object:

* tensor allocations/reclamations → allocator callbacks → framework events,
* operator start/end → callback registry → framework events,
* kernel launches / memcpys / syncs → runtime → vendor backends → low-level
  events.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.dlframework.allocator import CachingAllocator
from repro.dlframework.backend import BackendProfile, backend_for_device
from repro.dlframework.callbacks import FrameworkCallbackRegistry
from repro.dlframework.tensor import DType, Tensor
from repro.gpusim.kernel import GridConfig, KernelArgument, KernelLaunch, estimate_kernel_duration_ns
from repro.gpusim.runtime import AcceleratorRuntime, MemcpyKind


@dataclass(frozen=True)
class TensorUse:
    """How one kernel uses one tensor (the operator-level access declaration)."""

    tensor: Tensor
    accessed_fraction: float = 1.0
    is_read: bool = True
    is_written: bool = False
    accesses_per_byte: float = 0.25

    def to_kernel_argument(self) -> KernelArgument:
        """Lower to the simulator's :class:`KernelArgument`."""
        return KernelArgument(
            address=self.tensor.address,
            size=self.tensor.nbytes,
            accessed_fraction=self.accessed_fraction,
            is_read=self.is_read,
            is_written=self.is_written,
            accesses_per_byte=self.accesses_per_byte,
            label=self.tensor.name or f"tensor-{self.tensor.tensor_id}",
        )


def read(tensor: Tensor, fraction: float = 1.0, intensity: float = 0.25) -> TensorUse:
    """Declare a read-only use of ``tensor``."""
    return TensorUse(tensor, accessed_fraction=fraction, is_read=True, is_written=False,
                     accesses_per_byte=intensity)


def write(tensor: Tensor, fraction: float = 1.0, intensity: float = 0.25) -> TensorUse:
    """Declare a write-only use of ``tensor``."""
    return TensorUse(tensor, accessed_fraction=fraction, is_read=False, is_written=True,
                     accesses_per_byte=intensity)


def readwrite(tensor: Tensor, fraction: float = 1.0, intensity: float = 0.5) -> TensorUse:
    """Declare a read-modify-write use of ``tensor``."""
    return TensorUse(tensor, accessed_fraction=fraction, is_read=True, is_written=True,
                     accesses_per_byte=intensity)


def unused(tensor: Tensor) -> TensorUse:
    """Declare a tensor passed to a kernel but never referenced.

    This models arguments like unused workspace buffers — the case the paper's
    working-set tool must exclude from the working set.
    """
    return TensorUse(tensor, accessed_fraction=0.0, is_read=False, is_written=False,
                     accesses_per_byte=0.0)


class FrameworkContext:
    """Device execution context for the simulated DL framework.

    Parameters
    ----------
    runtime:
        Simulated runtime to execute on.
    backend:
        Lowering behaviour; defaults to the backend matching the runtime vendor.
    use_managed_memory:
        Allocate pool segments from unified (managed) memory so UVM paging
        applies — the configuration used by the prefetching experiments.
    """

    def __init__(
        self,
        runtime: AcceleratorRuntime,
        backend: Optional[BackendProfile] = None,
        use_managed_memory: bool = False,
    ) -> None:
        self.runtime = runtime
        self.backend = backend or backend_for_device(runtime.device.spec)
        self.allocator = CachingAllocator(
            runtime,
            profile=self.backend.allocator_profile,
            use_managed_memory=use_managed_memory,
        )
        self.callbacks = FrameworkCallbackRegistry()
        self.allocator.register_callback(self.callbacks.emit_memory)
        #: Stack of module scope names (outermost first), e.g.
        #: ``["BertModel", "encoder", "layer.0", "attention"]``.
        self._module_scopes: list[str] = []
        #: (scope stack, script frames) -> rendered python stack.
        self._python_stack_cache: dict[tuple, tuple[str, ...]] = {}
        #: Stack of operator names currently executing.
        self._op_stack: list[str] = []
        self._kernel_counts: list[int] = []
        self.kernel_launch_count = 0
        #: Script-level frames prefixed to synthesised Python stacks.
        self.script_frames: tuple[str, ...] = (
            "examples/run_model.py:177 def <module>()",
            "examples/run_model.py:146 def run_model()",
        )
        #: Non-parameter tensors allocated since the last release_transients().
        self._transient_tensors: list[Tensor] = []

    # ------------------------------------------------------------------ #
    # tensor allocation
    # ------------------------------------------------------------------ #
    def alloc(
        self,
        shape: Sequence[int],
        dtype: DType = DType.FLOAT32,
        name: str = "",
        is_parameter: bool = False,
        requires_grad: bool = False,
    ) -> Tensor:
        """Allocate a tensor through the caching allocator."""
        tensor = self.allocator.allocate_tensor(
            tuple(shape), dtype=dtype, name=name,
            is_parameter=is_parameter, requires_grad=requires_grad,
        )
        if not is_parameter:
            self._transient_tensors.append(tensor)
        return tensor

    def alloc_like(self, tensor: Tensor, name: str = "") -> Tensor:
        """Allocate a tensor with the same shape/dtype as ``tensor``."""
        return self.alloc(tensor.shape, dtype=tensor.dtype, name=name)

    def free(self, tensor: Tensor) -> None:
        """Release a tensor's storage."""
        if tensor.block_id is not None and not tensor.freed:
            self.allocator.free_tensor(tensor)

    def free_all(self, tensors: Sequence[Tensor]) -> None:
        """Release several tensors (ignoring already-freed ones)."""
        self.allocator.free_tensors(tensors)

    def release_transients(self) -> int:
        """Free every still-live non-parameter tensor allocated so far.

        The execution engine calls this between iterations so activations and
        other temporaries do not accumulate across steps (mirroring Python
        reference-count reclamation at the end of a training step).  Returns
        the number of tensors released.
        """
        released = 0
        for tensor in self._transient_tensors:
            if tensor.block_id is not None and not tensor.freed:
                self.allocator.free_tensor(tensor)
                released += 1
        self._transient_tensors = []
        return released

    # ------------------------------------------------------------------ #
    # scopes and operator boundaries
    # ------------------------------------------------------------------ #
    @contextmanager
    def module_scope(self, name: str) -> Iterator[None]:
        """Push a module name onto the scope stack (used by ``Module.__call__``)."""
        self._module_scopes.append(name)
        try:
            yield
        finally:
            self._module_scopes.pop()

    @property
    def current_scope(self) -> str:
        """Dotted path of the current module scope."""
        return ".".join(self._module_scopes)

    def current_python_stack(self) -> tuple[str, ...]:
        """Synthesised Python-level call stack (innermost frame first).

        On real hardware PASTA captures this with the CPython ``PyFrame`` API;
        here it is reconstructed from the module scope stack so the
        cross-layer call-stack feature (Figure 4) has realistic content.
        The same scope stack recurs for every launch of a layer across
        iterations, so rendered stacks are memoised.
        """
        key = (tuple(self._module_scopes), tuple(self.script_frames))
        cached = self._python_stack_cache.get(key)
        if cached is not None:
            return cached
        frames = [
            "torch/nn/modules/module.py:1518 def _wrapped_call_impl()",
            "torch/nn/modules/module.py:1527 def _call_impl()",
        ]
        for depth, scope in enumerate(reversed(self._module_scopes)):
            frames.append(f"model/{scope.replace('.', '/')}.py:{16 + depth} def forward()")
        frames.extend(reversed(self.script_frames))
        stack = tuple(frames)
        self._python_stack_cache[key] = stack
        return stack

    @contextmanager
    def op(self, name: str) -> Iterator[None]:
        """Operator boundary: emits RecordFunction-style start/end events."""
        op_id = self.callbacks.new_operator_id()
        self._op_stack.append(name)
        self._kernel_counts.append(0)
        self.callbacks.emit_operator(
            op_id=op_id,
            name=name,
            phase="start",
            device_index=self.runtime.device.index,
            scope=self.current_scope,
            python_stack=self.current_python_stack(),
        )
        try:
            yield
        finally:
            kernel_count = self._kernel_counts.pop()
            self._op_stack.pop()
            if self._kernel_counts:
                self._kernel_counts[-1] += kernel_count
            self.callbacks.emit_operator(
                op_id=op_id,
                name=name,
                phase="end",
                device_index=self.runtime.device.index,
                scope=self.current_scope,
                kernel_count=kernel_count,
                python_stack=self.current_python_stack(),
            )

    @property
    def current_op(self) -> str:
        """Name of the innermost operator currently executing ('' outside ops)."""
        return self._op_stack[-1] if self._op_stack else ""

    # ------------------------------------------------------------------ #
    # kernel launches and data movement
    # ------------------------------------------------------------------ #
    def launch(
        self,
        kernel_name: str,
        uses: Sequence[TensorUse],
        flops: float = 0.0,
        grid_elements: Optional[int] = None,
        stream_id: int = 0,
    ) -> KernelLaunch:
        """Launch a kernel that uses the given tensors.

        Duration follows a roofline estimate from ``flops`` and the bytes the
        kernel actually references on the current device.
        """
        args = [use.to_kernel_argument() for use in uses]
        bytes_moved = sum(arg.referenced_bytes for arg in args)
        spec = self.runtime.device.spec
        duration = estimate_kernel_duration_ns(
            flop_count=flops,
            bytes_moved=bytes_moved,
            device_tflops=self._device_tflops(),
            device_bandwidth_gbs=spec.memory_bandwidth_gbs,
            launch_overhead_ns=self.backend.kernel_launch_overhead_ns,
        )
        elements = grid_elements if grid_elements is not None else max(1, bytes_moved // 4)
        grid = GridConfig.for_elements(min(elements, 1 << 22))
        launch = self.runtime.launch_kernel(
            kernel_name=kernel_name,
            grid_config=grid,
            arguments=args,
            duration_ns=duration,
            stream_id=stream_id,
            op_context=self.current_op,
        )
        self.kernel_launch_count += 1
        if self._kernel_counts:
            self._kernel_counts[-1] += 1
        return launch

    def _device_tflops(self) -> float:
        spec = self.runtime.device.spec
        # Rough FP32 FMA throughput: 2 flops x 64 lanes per SM per clock.
        return spec.sm_count * 64 * 2 * spec.core_clock_mhz * 1e6 / 1e12

    def copy_to_device(self, tensor: Tensor) -> None:
        """Host-to-device copy of a tensor's storage (input staging)."""
        self.runtime.memcpy(tensor.nbytes, MemcpyKind.HOST_TO_DEVICE, dst_address=tensor.address)

    def copy_to_host(self, tensor: Tensor) -> None:
        """Device-to-host copy of a tensor's storage (result readback)."""
        self.runtime.memcpy(tensor.nbytes, MemcpyKind.DEVICE_TO_HOST, src_address=tensor.address)

    def synchronize(self) -> None:
        """Device-wide synchronisation."""
        self.runtime.synchronize()
