"""Workload runner helpers used by examples, tests and benchmarks."""

from repro.workloads.runner import WorkloadResult, record_uvm_schedule, run_workload

__all__ = ["WorkloadResult", "record_uvm_schedule", "run_workload"]
