"""Workload runner: glue for profiling a model on a simulated device.

Wraps the common experiment recipe — create a runtime, a framework context and
an execution engine, attach a PASTA session with a set of tools, run inference
or training, and return everything the caller needs to inspect — so examples,
tests and benchmarks do not repeat the wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.errors import ReproError
from repro.core.session import PastaSession
from repro.core.tool import PastaTool
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine, RunSummary
from repro.dlframework.models import create_model
from repro.dlframework.models.base import ModelBase
from repro.gpusim.device import DeviceSpec, get_device_spec
from repro.gpusim.runtime import AcceleratorRuntime, create_runtime
from repro.tools.uvm_prefetch import KernelScheduleEntry, UvmPrefetchAdvisor


@dataclass
class WorkloadResult:
    """Everything produced by one profiled workload run."""

    model: ModelBase
    runtime: AcceleratorRuntime
    ctx: FrameworkContext
    session: PastaSession
    summary: RunSummary

    def reports(self) -> dict[str, dict[str, object]]:
        """Tool reports collected by the session."""
        return self.session.reports()

    def tool(self, name: str) -> PastaTool:
        """Fetch one of the session's tools by its registry name."""
        for tool in self.session.tools:
            if tool.tool_name == name:
                return tool
        raise ReproError(f"tool {name!r} was not attached to this session")


def _resolve_device(device: Union[str, DeviceSpec]) -> DeviceSpec:
    if isinstance(device, DeviceSpec):
        return device
    return get_device_spec(device)


def run_workload(
    model_name: str,
    device: Union[str, DeviceSpec] = "a100",
    mode: str = "inference",
    iterations: int = 1,
    tools: Optional[Sequence[PastaTool]] = None,
    vendor_backend: Optional[str] = None,
    enable_fine_grained: bool = False,
    batch_size: Optional[int] = None,
) -> WorkloadResult:
    """Profile one model on one device with the given PASTA tools.

    Parameters
    ----------
    model_name:
        A name from the model registry (``"alexnet"``, ``"bert"``, ...).
    device:
        Device short name (``"a100"``, ``"rtx3060"``, ``"mi300x"``) or a spec.
    mode:
        ``"inference"`` or ``"train"``.
    iterations:
        Number of inference passes / training steps.
    tools:
        PASTA tools to attach (may be empty — the session still records
        overhead statistics).
    vendor_backend:
        Profiling backend name; defaults to the vendor's recommended backend.
    enable_fine_grained:
        Enable device-side (instruction-level) instrumentation.
    batch_size:
        Override the model's paper batch size.
    """
    if mode not in ("inference", "train"):
        raise ReproError(f"mode must be 'inference' or 'train', got {mode!r}")
    spec = _resolve_device(device)
    runtime = create_runtime(spec)
    ctx = FrameworkContext(runtime)
    engine = ExecutionEngine(ctx)
    model = create_model(model_name)
    session = PastaSession(
        runtime,
        tools=tools,
        vendor_backend=vendor_backend,
        enable_fine_grained=enable_fine_grained,
    )
    session.attach_framework(ctx)
    with session:
        engine.prepare(model)
        if mode == "inference":
            summary = engine.run_inference(model, iterations=iterations, batch_size=batch_size)
        else:
            summary = engine.run_training(model, iterations=iterations, batch_size=batch_size)
    return WorkloadResult(model=model, runtime=runtime, ctx=ctx, session=session, summary=summary)


def record_uvm_schedule(
    model_name: str,
    device: Union[str, DeviceSpec] = "rtx3060",
    mode: str = "inference",
    iterations: int = 1,
    batch_size: Optional[int] = None,
) -> tuple[list[KernelScheduleEntry], UvmPrefetchAdvisor, WorkloadResult]:
    """Profile a model with the UVM prefetch advisor and return its schedule.

    The schedule (kernel launches with their object- and tensor-level address
    ranges) is what the :class:`~repro.tools.uvm_prefetch.UvmPrefetchExecutor`
    replays under different prefetch policies for Figures 11 and 12.
    """
    advisor = UvmPrefetchAdvisor()
    result = run_workload(
        model_name,
        device=device,
        mode=mode,
        iterations=iterations,
        tools=[advisor],
        batch_size=batch_size,
    )
    return advisor.schedule, advisor, result
