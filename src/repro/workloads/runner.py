"""Workload runner: glue for profiling a model on a simulated device.

Wraps the common experiment recipe — create a runtime, a framework context and
an execution engine, attach a PASTA session with a set of tools, run inference
or training, and return everything the caller needs to inspect — so examples,
tests and benchmarks do not repeat the wiring.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.errors import ReproError
from repro.core.annotations import RangeFilter
from repro.core.serialization import json_sanitize
from repro.core.session import PastaSession
from repro.core.tool import PastaTool
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine, RunSummary
from repro.dlframework.models import create_model
from repro.dlframework.models.base import ModelBase
from repro.gpusim.costmodel import CostModelConfig
from repro.gpusim.device import DeviceSpec, get_device_spec
from repro.gpusim.runtime import AcceleratorRuntime, create_runtime
from repro.tools.uvm_prefetch import KernelScheduleEntry, UvmPrefetchAdvisor


@dataclass
class WorkloadResult:
    """Everything produced by one profiled workload run."""

    model: ModelBase
    runtime: AcceleratorRuntime
    ctx: FrameworkContext
    session: PastaSession
    summary: RunSummary

    def reports(self) -> dict[str, dict[str, object]]:
        """Tool reports collected by the session."""
        return self.session.reports()

    def tool(self, name: str) -> PastaTool:
        """Fetch one of the session's tools by its registry name."""
        for tool in self.session.tools:
            if tool.tool_name == name:
                return tool
        attached = sorted(tool.tool_name for tool in self.session.tools)
        raise ReproError(
            f"tool {name!r} was not attached to this session; "
            f"attached tools: {attached if attached else 'none'}"
        )

    def report(self, name: str) -> dict[str, object]:
        """One attached tool's report by registry name.

        Convenience for campaign-style callers that only need the report
        payload: ``result.report("kernel_frequency")`` instead of
        ``result.tool("kernel_frequency").report()``.
        """
        return self.tool(name).report()


def _resolve_device(device: Union[str, DeviceSpec]) -> DeviceSpec:
    if isinstance(device, DeviceSpec):
        return device
    return get_device_spec(device)


#: Valid run modes plus common near-misses mapped to the intended value.
_RUN_MODES = ("inference", "train")
_MODE_ALIASES = {
    "training": "train",
    "trained": "train",
    "infer": "inference",
    "inferencing": "inference",
    "eval": "inference",
    "evaluation": "inference",
    "predict": "inference",
}


def _check_mode(mode: str) -> None:
    if mode in _RUN_MODES:
        return
    valid = ", ".join(repr(m) for m in _RUN_MODES)
    suggestion = _MODE_ALIASES.get(str(mode).strip().lower())
    if suggestion is None:
        close = difflib.get_close_matches(str(mode).strip().lower(), _RUN_MODES, n=1)
        suggestion = close[0] if close else None
    hint = f"; did you mean {suggestion!r}?" if suggestion else ""
    raise ReproError(f"mode must be one of {valid}, got {mode!r}{hint}")


def run_workload(
    model_name: str,
    device: Union[str, DeviceSpec] = "a100",
    mode: str = "inference",
    iterations: int = 1,
    tools: Optional[Sequence[Union[PastaTool, str]]] = None,
    vendor_backend: Optional[str] = None,
    enable_fine_grained: bool = False,
    batch_size: Optional[int] = None,
    analysis_model: Optional[str] = None,
    range_filter: Optional[RangeFilter] = None,
    cost_config: Optional[CostModelConfig] = None,
    record_to: Union[str, Path, None] = None,
) -> WorkloadResult:
    """Profile one model on one device with the given PASTA tools.

    Parameters
    ----------
    model_name:
        A name from the model registry (``"alexnet"``, ``"bert"``, ...).
    device:
        Device short name (``"a100"``, ``"rtx3060"``, ``"mi300x"``) or a spec.
    mode:
        ``"inference"`` or ``"train"``.
    iterations:
        Number of inference passes / training steps.
    tools:
        PASTA tools to attach: instances and/or registry names such as
        ``"kernel_frequency"`` (may be empty — the session still records
        overhead statistics).
    vendor_backend:
        Profiling backend name; defaults to the vendor's recommended backend.
    enable_fine_grained:
        Enable device-side (instruction-level) instrumentation.
    batch_size:
        Override the model's paper batch size.
    analysis_model:
        Where fine-grained analysis runs: ``"gpu_resident"`` (default) or
        ``"cpu_side"``.
    range_filter:
        Restrict analysis to a kernel-launch window (grid-id filter).
    cost_config:
        Override the overhead cost-model constants.
    record_to:
        Record the session's normalised event stream to this trace file for
        later offline replay (see :mod:`repro.replay`).
    """
    _check_mode(mode)
    spec = _resolve_device(device)
    runtime = create_runtime(spec)
    ctx = FrameworkContext(runtime)
    engine = ExecutionEngine(ctx)
    model = create_model(model_name)
    session_kwargs: dict[str, object] = {}
    if analysis_model is not None:
        session_kwargs["analysis_model"] = analysis_model
    if record_to is not None:
        session_kwargs["record_to"] = record_to
        session_kwargs["trace_metadata"] = {
            "model": model_name,
            "mode": mode,
            "iterations": iterations,
            "batch_size": batch_size,
        }
    session = PastaSession(
        runtime,
        tools=tools,
        vendor_backend=vendor_backend,
        enable_fine_grained=enable_fine_grained,
        range_filter=range_filter,
        cost_config=cost_config,
        **session_kwargs,
    )
    session.attach_framework(ctx)
    with session:
        engine.prepare(model)
        if mode == "inference":
            summary = engine.run_inference(model, iterations=iterations, batch_size=batch_size)
        else:
            summary = engine.run_training(model, iterations=iterations, batch_size=batch_size)
    return WorkloadResult(model=model, runtime=runtime, ctx=ctx, session=session, summary=summary)


def record_uvm_schedule(
    model_name: str,
    device: Union[str, DeviceSpec] = "rtx3060",
    mode: str = "inference",
    iterations: int = 1,
    batch_size: Optional[int] = None,
) -> tuple[list[KernelScheduleEntry], UvmPrefetchAdvisor, WorkloadResult]:
    """Profile a model with the UVM prefetch advisor and return its schedule.

    The schedule (kernel launches with their object- and tensor-level address
    ranges) is what the :class:`~repro.tools.uvm_prefetch.UvmPrefetchExecutor`
    replays under different prefetch policies for Figures 11 and 12.
    """
    advisor = UvmPrefetchAdvisor()
    result = run_workload(
        model_name,
        device=device,
        mode=mode,
        iterations=iterations,
        tools=[advisor],
        batch_size=batch_size,
    )
    return advisor.schedule, advisor, result


# ---------------------------------------------------------------------- #
# spec-driven execution (campaign subsystem)
# ---------------------------------------------------------------------- #

#: Job-payload knob names that configure the grid-id analysis window rather
#: than the cost model.
_RANGE_KNOBS = ("start_grid_id", "end_grid_id")

_COST_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(CostModelConfig))


def _knobs_to_overrides(
    knobs: Mapping[str, object],
) -> tuple[Optional[RangeFilter], Optional[CostModelConfig]]:
    """Split a job's knob dict into a range filter and a cost-config override."""
    range_values = {name: knobs.get(name) for name in _RANGE_KNOBS}
    cost_overrides = {k: v for k, v in knobs.items() if k not in _RANGE_KNOBS}
    unknown = set(cost_overrides) - _COST_CONFIG_FIELDS
    if unknown:
        raise ReproError(
            f"unknown job knobs {sorted(unknown)}; expected {sorted(_RANGE_KNOBS)} "
            f"or a CostModelConfig field ({sorted(_COST_CONFIG_FIELDS)})"
        )
    for name, value in cost_overrides.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ReproError(f"cost-model knob {name!r} must be numeric, got {value!r}")
    for name, value in range_values.items():
        if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
            raise ReproError(f"knob {name!r} must be an integer grid id, got {value!r}")
    range_filter = None
    if any(v is not None for v in range_values.values()):
        range_filter = RangeFilter()
        range_filter.set_grid_window(
            None if range_values["start_grid_id"] is None else int(range_values["start_grid_id"]),  # type: ignore[arg-type]
            None if range_values["end_grid_id"] is None else int(range_values["end_grid_id"]),  # type: ignore[arg-type]
        )
    cost_config = CostModelConfig(**cost_overrides) if cost_overrides else None  # type: ignore[arg-type]
    return range_filter, cost_config


def execute_job_payload(
    payload: Mapping[str, object], record_to: Union[str, Path, None] = None
) -> dict[str, object]:
    """Run one campaign job described by a plain (picklable) dict.

    This is the module-level worker invoked by the campaign scheduler — in
    the calling process or, under the process-pool executor, in a freshly
    spawned interpreter — so both its argument and its return value are
    JSON-native data, never live simulator objects.  The payload is a
    :meth:`repro.campaign.spec.JobSpec.to_dict` dict; the returned record
    holds the echoed job, the run summary, and every tool report.  Pass
    ``record_to`` to also persist the job's event stream as a replayable
    trace (see :mod:`repro.replay`).
    """
    # Imported lazily (and inside the worker process) so that registering the
    # built-in tools happens wherever the job actually runs.
    import repro.tools  # noqa: F401  (side effect: tool registration)
    from repro.core.registry import create_tool

    job = dict(payload)
    knobs = job.get("knobs") or {}
    if not isinstance(knobs, Mapping):
        raise ReproError(f"job knobs must be a mapping, got {type(knobs).__name__}")
    range_filter, cost_config = _knobs_to_overrides(knobs)
    tools = [create_tool(str(name)) for name in (job.get("tools") or ())]
    result = run_workload(
        str(job["model"]),
        device=str(job.get("device", "a100")),
        mode=str(job.get("mode", "inference")),
        iterations=int(job.get("iterations", 1)),
        tools=tools,
        vendor_backend=None if job.get("backend") is None else str(job["backend"]),
        enable_fine_grained=bool(job.get("fine_grained", False)),
        batch_size=None if job.get("batch_size") is None else int(job["batch_size"]),
        analysis_model=str(job.get("analysis_model", "gpu_resident")),
        range_filter=range_filter,
        cost_config=cost_config,
        record_to=record_to,
    )
    return json_sanitize({
        "job": job,
        "status": "ok",
        "summary": result.summary.as_dict(),
        "reports": result.reports(),
        "execution": "simulate",
    })


# ---------------------------------------------------------------------- #
# trace-backed execution (campaign replay mode)
# ---------------------------------------------------------------------- #

def job_workload_signature(payload: Mapping[str, object]) -> tuple[object, ...]:
    """Identity of the simulation a job needs, ignoring analysis-only fields.

    Two jobs share a signature iff a single recorded trace can serve both:
    the tool set, analysis model and knobs only affect offline analysis
    (dispatch, overhead accounting and range filtering), while these fields —
    plus whether any requested tool needs device-side instrumentation —
    determine the event stream itself.
    """
    import repro.tools  # noqa: F401  (side effect: tool registration)
    from repro.core.registry import create_tool

    fine_grained = bool(payload.get("fine_grained", False)) or any(
        create_tool(str(name)).requires_fine_grained for name in (payload.get("tools") or ())
    )
    return (
        str(payload["model"]),
        str(payload.get("device", "a100")),
        str(payload.get("mode", "inference")),
        int(payload.get("iterations", 1)),
        None if payload.get("batch_size") is None else int(payload["batch_size"]),
        None if payload.get("backend") is None else str(payload["backend"]),
        fine_grained,
    )


def record_job_trace(
    payload: Mapping[str, object], trace_path: Union[str, Path]
) -> dict[str, object]:
    """Simulate a job's workload once, recording every event to ``trace_path``.

    The recording session attaches no tools and no range filter so the trace
    carries the complete event stream; any job with the same
    :func:`job_workload_signature` can then be answered by replay.  Returns
    the JSON-native run summary shared by every job of the group.
    """
    model, device, mode, iterations, batch_size, backend, fine_grained = (
        job_workload_signature(payload)
    )
    result = run_workload(
        str(model),
        device=str(device),
        mode=str(mode),
        iterations=int(iterations),  # type: ignore[arg-type]
        tools=(),
        vendor_backend=None if backend is None else str(backend),
        enable_fine_grained=bool(fine_grained),
        batch_size=None if batch_size is None else int(batch_size),  # type: ignore[arg-type]
        record_to=trace_path,
    )
    return json_sanitize(result.summary.as_dict())


def replay_job_payload(
    payload: Mapping[str, object],
    trace: object,
    summary: Mapping[str, object],
    events: Optional[Sequence[object]] = None,
) -> dict[str, object]:
    """Answer one campaign job by replaying a recorded workload trace.

    ``trace`` is a path or an open :class:`~repro.replay.reader.TraceReader`;
    pass ``events`` (a pre-decoded list) when replaying several jobs from the
    same trace so the decode cost is paid once.  Produces a record with the
    same shape (and, for the shared fields, the same values) as
    :func:`execute_job_payload`, but without re-simulating: the job's tools,
    analysis model and knobs are re-driven offline through
    :func:`~repro.replay.replayer.replay_trace`.
    """
    import repro.tools  # noqa: F401  (side effect: tool registration)
    from repro.core.registry import create_tool
    from repro.replay.replayer import replay_trace

    job = dict(payload)
    knobs = job.get("knobs") or {}
    if not isinstance(knobs, Mapping):
        raise ReproError(f"job knobs must be a mapping, got {type(knobs).__name__}")
    range_filter, cost_config = _knobs_to_overrides(knobs)
    tools = [create_tool(str(name)) for name in (job.get("tools") or ())]
    result = replay_trace(
        trace,  # type: ignore[arg-type]
        tools=tools,
        analysis_model=str(job.get("analysis_model", "gpu_resident")),
        cost_config=cost_config,
        range_filter=range_filter,
        events=events,
    )
    return json_sanitize({
        "job": job,
        "status": "ok",
        "summary": dict(summary),
        "reports": result.reports(),
        "execution": "replay",
    })
