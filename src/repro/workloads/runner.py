"""Legacy workload-runner surface (deprecated shims over :mod:`repro.api`).

Everything this module used to implement lives in the unified runner now:
:func:`repro.api.run` / :func:`repro.api.execute` take a
:class:`~repro.api.spec.ProfileSpec` (or build one from keywords) and drive
the single execution path shared with recording, replay and campaigns.  The
functions here keep the historical signatures working, each emitting a
:class:`DeprecationWarning` that names its replacement; they produce exactly
the same results as the new API.

:func:`record_uvm_schedule` remains a supported convenience (it is a helper
around the UVM prefetch case study, not an execution path of its own).
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro import api
from repro.api.runner import ProfileResult
from repro.core.annotations import RangeFilter
from repro.core.tool import PastaTool
from repro.gpusim.costmodel import CostModelConfig
from repro.gpusim.device import DeviceSpec
from repro.tools.uvm_prefetch import KernelScheduleEntry, UvmPrefetchAdvisor

#: Deprecated name for the unified result type (same class, same fields).
WorkloadResult = ProfileResult


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_workload(
    model_name: str,
    device: Union[str, DeviceSpec] = "a100",
    mode: str = "inference",
    iterations: int = 1,
    tools: Optional[Sequence[Union[PastaTool, str]]] = None,
    vendor_backend: Optional[str] = None,
    enable_fine_grained: bool = False,
    batch_size: Optional[int] = None,
    analysis_model: Optional[str] = None,
    range_filter: Optional[RangeFilter] = None,
    cost_config: Optional[CostModelConfig] = None,
    record_to: Union[str, Path, None] = None,
) -> ProfileResult:
    """Deprecated: use ``repro.api.run(...)`` / ``pasta.profile(...).run()``.

    Same behaviour and result as the new facade — this wrapper only remaps
    the historical parameter names (``vendor_backend`` -> ``backend``,
    ``enable_fine_grained`` -> ``fine_grained``).
    """
    _deprecated(
        "run_workload()",
        'repro.api.run(model, ...) or pasta.profile(model).on(device).run()',
    )
    return api.run(
        model_name,
        device=device,
        mode=mode,
        iterations=iterations,
        tools=tools,
        backend=vendor_backend,
        fine_grained=enable_fine_grained,
        batch_size=batch_size,
        analysis_model=analysis_model,
        range_filter=range_filter,
        cost_config=cost_config,
        record_to=record_to,
    )


def record_uvm_schedule(
    model_name: str,
    device: Union[str, DeviceSpec] = "rtx3060",
    mode: str = "inference",
    iterations: int = 1,
    batch_size: Optional[int] = None,
) -> tuple[list[KernelScheduleEntry], UvmPrefetchAdvisor, ProfileResult]:
    """Profile a model with the UVM prefetch advisor and return its schedule.

    The schedule (kernel launches with their object- and tensor-level address
    ranges) is what the :class:`~repro.tools.uvm_prefetch.UvmPrefetchExecutor`
    replays under different prefetch policies for Figures 11 and 12.
    """
    advisor = UvmPrefetchAdvisor()
    result = api.run(
        model_name,
        device=device,
        mode=mode,
        iterations=iterations,
        tools=[advisor],
        batch_size=batch_size,
    )
    return advisor.schedule, advisor, result


# ---------------------------------------------------------------------- #
# deprecated payload-runner names (now in repro.api.runner)
# ---------------------------------------------------------------------- #

def execute_job_payload(
    payload: Mapping[str, object], record_to: Union[str, Path, None] = None
) -> dict[str, object]:
    """Deprecated: use :func:`repro.api.execute_payload`."""
    _deprecated("execute_job_payload()", "repro.api.execute_payload(payload)")
    return api.execute_payload(payload, record_to=record_to)


def job_workload_signature(payload: Mapping[str, object]) -> tuple[object, ...]:
    """Deprecated: use :func:`repro.api.workload_signature`."""
    _deprecated(
        "job_workload_signature()",
        "repro.api.workload_signature(payload) or ProfileSpec.workload_signature()",
    )
    return api.workload_signature(payload)


def record_job_trace(
    payload: Mapping[str, object], trace_path: Union[str, Path]
) -> dict[str, object]:
    """Deprecated: use :func:`repro.api.record_workload_trace`."""
    _deprecated("record_job_trace()", "repro.api.record_workload_trace(payload, path)")
    return api.record_workload_trace(payload, trace_path)


def replay_job_payload(
    payload: Mapping[str, object],
    trace: object,
    summary: Mapping[str, object],
    events: Optional[Sequence[object]] = None,
) -> dict[str, object]:
    """Deprecated: use :func:`repro.api.replay_payload`."""
    _deprecated("replay_job_payload()", "repro.api.replay_payload(payload, trace, summary)")
    return api.replay_payload(payload, trace, summary, events=events)
