"""Command-line interface: the reproduction's ``accelprof`` equivalent.

The paper's artifact launches profiled applications as
``accelprof -t <tool> <executable>``.  Since the workloads here are the
simulated models of the zoo, the CLI takes a model name instead of an
executable and otherwise mirrors that interface: pick one or more tools from
the registry, a device, a mode, and optionally a grid-id analysis window, then
print each tool's report.

Examples
--------
::

    pasta-profile resnet18 --tool kernel_frequency --device a100
    pasta-profile gpt2 --mode train --tool memory_characteristics --tool memory_timeline
    pasta-profile bert --tool kernel_frequency --start-grid-id 0 --end-grid-id 49 --json
    pasta-profile --list-tools

Batch campaigns
---------------
``pasta-profile`` runs one configuration per invocation.  To sweep a grid of
models x devices x tools x knobs — the shape of every figure in the paper's
evaluation — use the campaign engine instead (:mod:`repro.campaign`): write a
JSON campaign spec and run it with the ``pasta-campaign`` command, which
executes the expanded grid over a worker pool (``--jobs N``), serves repeated
configurations from a content-addressed result cache, appends records to a
JSONL store, and aggregates them into per-model/per-device tables and
baseline-vs-current regression diffs::

    pasta-campaign run sweep.json --jobs 4 --store results.jsonl
    pasta-campaign report results.jsonl --by device
    pasta-campaign diff baseline.jsonl results.jsonl --threshold 0.1
    pasta-campaign clean

See :mod:`repro.campaign.cli` for the spec format and
``examples/campaign_sweep.py`` for the programmatic API.

Trace record & replay
---------------------
Every ``pasta-profile`` run pays for a full simulation and discards the event
stream when it exits.  To keep the stream for offline analysis — re-running
different tools or analysis models against one recorded simulation — use the
trace subsystem (:mod:`repro.replay`) and its ``pasta-trace`` command::

    pasta-trace record resnet18 -o resnet18.pastatrace
    pasta-trace replay resnet18.pastatrace --tool kernel_frequency
    pasta-trace replay resnet18.pastatrace --tool hotness --analysis-model cpu_side
    pasta-trace info resnet18.pastatrace
    pasta-trace slice resnet18.pastatrace -o window.pastatrace --start-grid-id 0 --end-grid-id 49
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.annotations import RangeFilter
from repro.core.registry import create_tool, registered_tools
from repro.core.session import PastaSession
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine
from repro.dlframework.models import MODEL_REGISTRY, create_model
from repro.errors import ReproError
from repro.gpusim.device import get_device_spec
from repro.gpusim.runtime import create_runtime

# Importing the tools package registers the built-in tool collection.
import repro.tools  # noqa: F401  (side effect: tool registration)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="pasta-profile",
        description="Profile a simulated DL workload with PASTA analysis tools.",
    )
    parser.add_argument("model", nargs="?", choices=sorted(MODEL_REGISTRY),
                        help="model to profile (from the model zoo)")
    parser.add_argument("--tool", "-t", action="append", default=[],
                        help="tool name from the registry; may be repeated")
    parser.add_argument("--device", "-d", default="a100",
                        help="device short name: a100, rtx3060, mi300x (default: a100)")
    parser.add_argument("--mode", choices=["inference", "train"], default="inference")
    parser.add_argument("--iterations", type=int, default=1)
    parser.add_argument("--batch-size", type=int, default=None,
                        help="override the model's paper batch size")
    parser.add_argument("--backend", default=None,
                        help="profiling backend: compute_sanitizer, nvbit, rocprofiler")
    parser.add_argument("--fine-grained", action="store_true",
                        help="enable device-side (instruction-level) instrumentation")
    parser.add_argument("--start-grid-id", type=int, default=None,
                        help="first kernel-launch index to analyse (START_GRID_ID)")
    parser.add_argument("--end-grid-id", type=int, default=None,
                        help="last kernel-launch index to analyse (END_GRID_ID)")
    parser.add_argument("--json", action="store_true", help="emit reports as JSON")
    parser.add_argument("--list-tools", action="store_true",
                        help="list registered tools and exit")
    return parser


def _print_text_report(reports: dict[str, dict[str, object]]) -> None:
    for tool_name, report in reports.items():
        print(f"\n[{tool_name}]")
        for key, value in report.items():
            if key == "tool":
                continue
            print(f"  {key}: {value}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_tools:
        for name in registered_tools():
            print(name)
        return 0
    if not args.model:
        parser.error("a model name is required unless --list-tools is given")
    if not args.tool:
        parser.error("at least one --tool is required (see --list-tools)")

    try:
        spec = get_device_spec(args.device)
        tools = [create_tool(name) for name in args.tool]
        runtime = create_runtime(spec)
        ctx = FrameworkContext(runtime)
        engine = ExecutionEngine(ctx)
        model = create_model(args.model)

        range_filter = RangeFilter()
        if args.start_grid_id is not None or args.end_grid_id is not None:
            range_filter.set_grid_window(args.start_grid_id, args.end_grid_id)

        session = PastaSession(
            runtime,
            tools=tools,
            vendor_backend=args.backend,
            enable_fine_grained=args.fine_grained,
            range_filter=range_filter,
        )
        session.attach_framework(ctx)
        with session:
            engine.prepare(model)
            if args.mode == "inference":
                summary = engine.run_inference(model, iterations=args.iterations,
                                               batch_size=args.batch_size)
            else:
                summary = engine.run_training(model, iterations=args.iterations,
                                              batch_size=args.batch_size)
        reports = session.reports()
        reports["run"] = summary.as_dict()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(reports, indent=2, default=str))
    else:
        _print_text_report(reports)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
