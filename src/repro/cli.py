"""Deprecated ``pasta-profile`` console script (use ``pasta profile``).

Everything this module used to implement lives in the umbrella CLI
(:mod:`repro.commands`) now; :func:`main` forwards its arguments to
``pasta profile`` unchanged, emitting a :class:`DeprecationWarning`.  The
flags are a strict subset of the new subcommand's, so any historical
invocation keeps producing identical output::

    pasta-profile resnet18 --tool kernel_frequency --device a100
    pasta profile  resnet18 --tool kernel_frequency --device a100   # new
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Optional, Sequence

from repro.commands.render import print_text_report as _print_text_report  # noqa: F401
# Re-exported for backward compatibility: callers historically imported the
# text renderer from this module.


def build_parser() -> argparse.ArgumentParser:
    """The legacy standalone ``pasta-profile`` parser (same flags as
    ``pasta profile``, minus the umbrella)."""
    from repro.commands import profile

    parser = argparse.ArgumentParser(
        prog="pasta-profile",
        description="Deprecated alias of `pasta profile`.",
    )
    profile.configure_parser(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    warnings.warn(
        "the pasta-profile command is deprecated; use `pasta profile ...` "
        "(same flags)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.commands import main as pasta_main

    argv = list(sys.argv[1:] if argv is None else argv)
    return pasta_main(["profile", *argv])


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
