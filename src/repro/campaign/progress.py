"""Live campaign progress: a status event bus streaming to ``status.jsonl``.

The result store records what a campaign *produced*; this module records
what it is *doing right now*.  A :class:`ProgressWriter` appends one small
JSON record per lifecycle transition — campaign start/end, job
queued/started/retried/finished (with cache hit/miss attribution), per-rank
iteration progress for parallel profiles — to a ``status.jsonl`` next to the
result store, flushing every line so a concurrent reader (``pasta campaign
watch``) always sees a consistent prefix of the stream.

Like the telemetry layer, the bus has a process-global active handle
(:func:`active_progress` / :func:`progress_scope`) defaulting to a shared
no-op, so instrumented layers (the scheduler, the api runner, the parallel
runner) emit unconditionally at the cost of one method call when no one is
watching.  Worker *threads* share the active bus; process-pool workers run
in fresh interpreters and cannot reach it — their jobs still produce
queued/started/finished records (emitted by the scheduler's main thread),
they just lack in-job rank events.

:func:`snapshot_status` folds the stream into completion counts, cache
attribution, throughput and an ETA; :func:`render_status` renders that for
the ``watch`` terminal.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping, Optional, Union

from repro.core.serialization import stable_json_dumps
from repro.errors import ReproError
from repro.obs.sink import read_records

#: File name used when the status target is a directory.
STATUS_FILE = "status.jsonl"


def status_path(target: Union[str, Path]) -> Path:
    """Resolve a status target: a ``.jsonl`` path verbatim, else ``dir/status.jsonl``."""
    path = Path(target)
    if path.suffix == ".jsonl":
        return path
    return path / STATUS_FILE


class ProgressWriter:
    """Append-only, flush-per-write JSONL stream of progress events."""

    enabled = True

    def __init__(self, target: Union[str, Path]) -> None:
        self.path = status_path(target)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = self.path.open("a", encoding="utf-8")
        self.records_written = 0

    def emit(self, kind: str, **fields: object) -> None:
        """Append one ``{"type": kind, "ts_unix": now, **fields}`` record.

        Thread-safe: scheduler worker threads emit through the same writer
        as the main thread.  Every record is flushed immediately — a watcher
        (or a post-mortem after a kill) reads everything emitted so far.
        """
        record = {"type": kind, "ts_unix": round(time.time(), 6), **fields}
        line = stable_json_dumps(record)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line)
            self._fh.write("\n")
            self._fh.flush()
            self.records_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "ProgressWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullProgress:
    """The disabled bus: ``emit`` falls through immediately."""

    enabled = False
    records_written = 0

    def emit(self, kind: str, **fields: object) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullProgress":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared disabled bus (the module default).
NULL_PROGRESS = NullProgress()

_active: Union[ProgressWriter, NullProgress] = NULL_PROGRESS


def active_progress() -> Union[ProgressWriter, NullProgress]:
    """The currently active progress bus (the shared null object when off)."""
    return _active


def activate_progress(
    bus: Union[ProgressWriter, NullProgress],
) -> Union[ProgressWriter, NullProgress]:
    """Install ``bus`` as the process-wide active progress bus."""
    global _active
    _active = bus
    return bus


def deactivate_progress() -> None:
    """Reset the active bus to the shared null object."""
    global _active
    _active = NULL_PROGRESS


@contextmanager
def progress_scope(
    bus: Union[ProgressWriter, NullProgress], *, close: bool = True
) -> Iterator[Union[ProgressWriter, NullProgress]]:
    """Scope ``bus`` as active, restoring (and closing) on exit."""
    global _active
    previous = _active
    _active = bus
    try:
        yield bus
    finally:
        _active = previous
        if close:
            bus.close()


# ---------------------------------------------------------------------- #
# reading + aggregation (the `watch` side)
# ---------------------------------------------------------------------- #
def read_status(target: Union[str, Path]) -> list[dict[str, object]]:
    """All readable status records (torn trailing lines are tolerated)."""
    path = status_path(target)
    if not path.exists():
        raise ReproError(f"no status file at {path}")
    return read_records(path)


def snapshot_status(
    records: list[dict[str, object]], *, now_unix: Optional[float] = None
) -> dict[str, object]:
    """Fold a status stream into one JSON-native progress snapshot.

    Captures: campaign identity, job lifecycle counts (queued / running /
    finished, by outcome status), cache hit/miss attribution, retries,
    throughput and a naive ETA (remaining jobs at the observed rate), plus
    the latest per-rank iteration progress of any in-flight parallel job.
    """
    campaign: dict[str, object] = {}
    jobs: dict[object, dict[str, object]] = {}
    ranks: dict[object, dict[int, dict[str, object]]] = {}
    retried_events = 0
    lease_events: dict[str, int] = {}
    started_ts: Optional[float] = None
    last_ts: Optional[float] = None
    ended = False
    for record in records:
        ts = record.get("ts_unix")
        if isinstance(ts, (int, float)):
            last_ts = float(ts)
        kind = record.get("type")
        event = record.get("event")
        if kind == "campaign":
            if event == "start":
                campaign = {
                    "campaign": record.get("campaign"),
                    "execution": record.get("execution"),
                    "total": record.get("total"),
                    "slots": record.get("slots"),
                }
                if isinstance(ts, (int, float)):
                    started_ts = float(ts)
            elif event == "end":
                ended = True
        elif kind == "job":
            key = record.get("index", record.get("job"))
            state = jobs.setdefault(key, {"job": record.get("job")})
            state["event"] = event
            if event == "finished":
                state["status"] = record.get("status")
                state["cache_hit"] = bool(record.get("cache_hit"))
                state["duration_s"] = record.get("duration_s")
                if record.get("stolen"):
                    state["stolen"] = True
            elif event == "retried":
                retried_events += 1
        elif kind == "lease":
            if isinstance(event, str):
                lease_events[event] = lease_events.get(event, 0) + 1
        elif kind == "rank":
            job_ranks = ranks.setdefault(record.get("job"), {})
            rank = record.get("rank")
            if isinstance(rank, int):
                job_ranks[rank] = {
                    "iteration": record.get("iteration"),
                    "iterations": record.get("iterations"),
                }

    finished = [s for s in jobs.values() if s.get("event") == "finished"]
    running = sum(1 for s in jobs.values() if s.get("event") in ("started", "retried"))
    queued = sum(1 for s in jobs.values() if s.get("event") == "queued")
    by_status: dict[str, int] = {}
    for state in finished:
        status = str(state.get("status"))
        by_status[status] = by_status.get(status, 0) + 1
    cache_hits = sum(1 for s in finished if s.get("cache_hit"))
    total = campaign.get("total")
    total_jobs = int(total) if isinstance(total, int) else len(jobs)
    remaining = max(0, total_jobs - len(finished))

    now = time.time() if now_unix is None else now_unix
    # A live stream measures elapsed against the wall clock; a finished (or
    # stale) one against its own last record.
    end_ts = last_ts if (ended or last_ts is None) else max(now, last_ts)
    elapsed_s = (
        max(0.0, end_ts - started_ts)
        if started_ts is not None and end_ts is not None else 0.0
    )
    throughput = (len(finished) / elapsed_s) if elapsed_s > 0 and finished else None
    eta_s = (
        remaining / throughput
        if throughput and remaining and not ended else (0.0 if ended else None)
    )
    return {
        **campaign,
        "total": total_jobs,
        "queued": queued,
        "running": running,
        "finished": len(finished),
        "remaining": remaining,
        "by_status": dict(sorted(by_status.items())),
        "cache_hits": cache_hits,
        "cache_misses": len(finished) - cache_hits,
        "retried": retried_events,
        "stolen": sum(1 for s in finished if s.get("stolen")),
        "leases": dict(sorted(lease_events.items())),
        "elapsed_s": round(elapsed_s, 3),
        "throughput_jobs_s": (
            round(throughput, 3) if throughput is not None else None
        ),
        "eta_s": round(eta_s, 3) if eta_s is not None else None,
        "ranks": {
            str(job): {f"rank{r}": dict(v) for r, v in sorted(job_ranks.items())}
            for job, job_ranks in ranks.items() if job_ranks
        },
        "ended": ended,
    }


def render_status(snapshot: Mapping[str, object]) -> str:
    """Terminal rendering of one :func:`snapshot_status` result."""
    by_status = snapshot.get("by_status") or {}
    status_text = (
        "  [" + ", ".join(f"{k} {v}" for k, v in by_status.items()) + "]"  # type: ignore[union-attr]
        if by_status else ""
    )
    lines = [
        f"campaign {snapshot.get('campaign')}  "
        f"execution={snapshot.get('execution')}  "
        f"{snapshot.get('total')} jobs  slots={snapshot.get('slots')}",
        f"progress: {snapshot.get('finished')}/{snapshot.get('total')} finished "
        f"({snapshot.get('running')} running, {snapshot.get('queued')} queued)"
        f"{status_text}",
        f"cache: {snapshot.get('cache_hits')} hits / "
        f"{snapshot.get('cache_misses')} misses  retries: {snapshot.get('retried')}",
    ]
    stolen = snapshot.get("stolen")
    leases = snapshot.get("leases") or {}
    if stolen or leases:
        lease_text = ", ".join(f"{k} {v}" for k, v in leases.items())  # type: ignore[union-attr]
        lines.append(
            f"fabric: {stolen or 0} stolen"
            + (f"  leases: [{lease_text}]" if lease_text else "")
        )
    throughput = snapshot.get("throughput_jobs_s")
    eta = snapshot.get("eta_s")
    lines.append(
        f"elapsed: {snapshot.get('elapsed_s')}s  "
        f"throughput: {throughput if throughput is not None else 'n/a'} jobs/s  "
        f"eta: {f'{eta}s' if eta is not None else 'n/a'}"
    )
    ranks = snapshot.get("ranks") or {}
    for job, job_ranks in ranks.items():  # type: ignore[union-attr]
        parts = ", ".join(
            f"{rank} {v.get('iteration')}/{v.get('iterations')}"
            for rank, v in job_ranks.items()
        )
        lines.append(f"ranks[{job}]: {parts}")
    if snapshot.get("ended"):
        lines.append("campaign finished")
    return "\n".join(lines)


__all__ = [
    "NULL_PROGRESS",
    "NullProgress",
    "ProgressWriter",
    "STATUS_FILE",
    "active_progress",
    "activate_progress",
    "deactivate_progress",
    "progress_scope",
    "read_status",
    "render_status",
    "snapshot_status",
    "status_path",
]
