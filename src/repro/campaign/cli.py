"""Deprecated ``pasta-campaign`` console script (use ``pasta campaign``).

The implementation lives in :mod:`repro.commands.campaign`; :func:`main`
forwards its arguments to the ``pasta campaign`` subcommand unchanged,
emitting a :class:`DeprecationWarning`.  Campaign spec JSON files are
unaffected — both spellings load the same format::

    pasta-campaign run sweep.json --jobs 4 --store results.jsonl
    pasta campaign  run sweep.json --jobs 4 --store results.jsonl   # new
"""

from __future__ import annotations

import sys
import warnings
from typing import Optional, Sequence

#: Default cache location (kept importable from the historical path).
from repro.commands.campaign import DEFAULT_CACHE_DIR  # noqa: F401


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    warnings.warn(
        "the pasta-campaign command is deprecated; use `pasta campaign ...` "
        "(same subcommands and flags)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.commands import main as pasta_main

    argv = list(sys.argv[1:] if argv is None else argv)
    return pasta_main(["campaign", *argv])


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
