"""Content-addressed on-disk result cache.

Campaign jobs are deterministic functions of their spec: the simulator has no
hidden state, so a (job spec, package version) pair fully determines the
result.  The cache exploits that — each record lives at
``<root>/<digest[:2]>/<digest>.json`` where the digest is the stable hash of
the canonical job dict salted with ``repro.__version__`` (see
:meth:`~repro.campaign.spec.JobSpec.digest`).  Re-running an identical
campaign therefore simulates nothing; bumping the package version invalidates
everything automatically.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.serialization import stable_json_dumps


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


@dataclass
class ResultCache:
    """Sharded directory of cached job records, keyed by content digest."""

    root: Union[str, Path]
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, digest: str) -> Path:
        """Location of the record for ``digest`` (whether or not it exists)."""
        return Path(self.root) / digest[:2] / f"{digest}.json"

    def contains(self, digest: str) -> bool:
        """True if a record is cached under ``digest``."""
        return self.path_for(digest).exists()

    def get(self, digest: str) -> Optional[dict[str, object]]:
        """Cached record for ``digest``, or None.  Corrupt entries are misses."""
        path = self.path_for(digest)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        if not isinstance(record, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(self, digest: str, record: dict[str, object]) -> Path:
        """Atomically store ``record`` under ``digest``."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-to-temp + rename so concurrent workers never observe partial
        # JSON, even when two jobs race to fill the same entry.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(stable_json_dumps(record))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def evict(self, digest: str) -> bool:
        """Remove one entry; returns True if it existed."""
        path = self.path_for(digest)
        if path.exists():
            path.unlink()
            return True
        return False

    def entries(self) -> list[str]:
        """All cached digests."""
        root = Path(self.root)
        if not root.exists():
            return []
        return sorted(p.stem for p in root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        root = Path(self.root)
        if not root.exists():
            return 0
        for path in root.glob("*/*.json"):
            path.unlink()
            removed += 1
        for shard in root.glob("*"):
            if shard.is_dir() and not any(shard.iterdir()):
                shard.rmdir()
        return removed
