"""Content-addressed on-disk result cache.

Campaign jobs are deterministic functions of their spec: the simulator has no
hidden state, so a (job spec, package version) pair fully determines the
result.  The cache exploits that — each record lives at
``<root>/<digest[:2]>/<digest>.json`` where the digest is the stable hash of
the canonical job dict salted with ``repro.__version__`` (see
:meth:`~repro.campaign.spec.JobSpec.digest`).  Re-running an identical
campaign therefore simulates nothing; bumping the package version invalidates
everything automatically.

Concurrency: the cache is shared by multiple scheduler processes (the
distributed campaign fabric).  Writes are write-to-temp + ``os.replace`` so
readers never observe partial JSON; ``evict``/``clear`` tolerate losing
unlink races (two schedulers cleaning at once); a corrupt entry — torn by a
crashed writer or bit-rotted on disk — is *quarantined* on first read (moved
aside to ``<digest>.json.corrupt``) so the digest becomes a clean refillable
miss instead of a silent re-miss forever.  ``fsync=True`` additionally
fsyncs entry data before the rename (and the shard directory after), for
campaign directories on filesystems where a host crash may otherwise leave
a renamed-but-empty entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Protocol, Union, runtime_checkable

from repro.campaign.faults import active_faults
from repro.core.serialization import stable_json_dumps

#: Suffix quarantined (corrupt) entries are renamed to.
QUARANTINE_SUFFIX = ".corrupt"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Corrupt entries moved aside by :meth:`ResultCache.get`.
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }


@runtime_checkable
class CacheBackend(Protocol):
    """What campaign execution needs from a result cache.

    The contract the scheduler (and the serve daemon's job manager) code
    against: digest-keyed ``get``/``put``/``contains`` plus shared
    :class:`CacheStats`.  Two implementations ship:

    * :class:`ResultCache` — the sharded on-disk store (this module);
    * :class:`~repro.campaign.cache_http.HttpResultCache` — the same
      operations over a ``pasta serve`` daemon's ``/v1/cache`` endpoints,
      for workers without a shared filesystem (``pasta campaign run
      --cache-url``).

    Semantics both must honour (covered by the shared conformance test in
    ``tests/test_cache_backend.py``): ``get`` of an absent digest is a
    ``None`` miss; ``get`` of a corrupt entry is *also* a ``None`` miss and
    quarantines the entry so the slot becomes refillable; ``put`` then
    ``get`` round-trips the record exactly (JSON-native data only).
    """

    stats: CacheStats

    def get(self, digest: str) -> Optional[dict[str, object]]:
        """Cached record for ``digest``, or ``None`` on any kind of miss."""
        ...

    def put(self, digest: str, record: dict[str, object]) -> object:
        """Store ``record`` under ``digest`` (atomically, last write wins)."""
        ...

    def contains(self, digest: str) -> bool:
        """True if a record is currently cached under ``digest``."""
        ...


@dataclass
class ResultCache:
    """Sharded directory of cached job records, keyed by content digest."""

    root: Union[str, Path]
    #: fsync entry data before rename (and the shard dir after) on ``put``.
    fsync: bool = False
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, digest: str) -> Path:
        """Location of the record for ``digest`` (whether or not it exists)."""
        return Path(self.root) / digest[:2] / f"{digest}.json"

    def contains(self, digest: str) -> bool:
        """True if a record is cached under ``digest``."""
        return self.path_for(digest).exists()

    def get(self, digest: str) -> Optional[dict[str, object]]:
        """Cached record for ``digest``, or None.

        A corrupt entry is a miss *and* is quarantined — renamed to
        ``<digest>.json.corrupt`` (kept for post-mortems) so the next ``put``
        refills the slot and the next ``get`` is an honest absent-miss, not a
        parse failure repeated on every lookup.
        """
        path = self.path_for(digest)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            self.stats.misses += 1
            return None
        if not isinstance(record, dict):
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (racing schedulers tolerate a loss)."""
        try:
            os.replace(path, path.with_name(path.name + QUARANTINE_SUFFIX))
        except OSError:
            return  # another scheduler quarantined (or evicted) it first
        self.stats.quarantined += 1

    def put(self, digest: str, record: dict[str, object]) -> Path:
        """Atomically store ``record`` under ``digest``."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = stable_json_dumps(record)
        fault = active_faults().fire("cache.put", label=digest)
        if fault is not None and fault.kind in ("cache_corrupt", "torn_write"):
            # Emulate a writer dying mid-write / silent media corruption:
            # the entry lands truncated to half its JSON.
            payload = payload[: max(1, len(payload) // 2)]
        # Write-to-temp + rename so concurrent workers never observe partial
        # JSON, even when two jobs race to fill the same entry.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp_name, path)
            if self.fsync:
                self._fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Durably record the rename itself (best-effort on odd filesystems)."""
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def evict(self, digest: str) -> bool:
        """Remove one entry; returns True if this call removed it.

        Losing an unlink race to another scheduler (exists-then-vanishes) is
        a normal False, never an exception.
        """
        try:
            self.path_for(digest).unlink()
        except FileNotFoundError:
            return False
        except OSError:
            return False
        return True

    def _walk(self, suffix: str) -> list[Path]:
        """Two-level listing that tolerates directories vanishing mid-walk.

        ``Path.glob`` raises if a racing ``clear`` rmdir's a shard while the
        generator is inside it; this walk treats a vanished shard as empty.
        """
        root = Path(self.root)
        try:
            shards = sorted(p for p in root.iterdir() if p.is_dir())
        except OSError:
            return []
        out: list[Path] = []
        for shard in shards:
            try:
                children = sorted(shard.iterdir())
            except OSError:
                continue  # lost to a concurrent clear
            out.extend(p for p in children if p.name.endswith(suffix))
        return out

    def entries(self) -> list[str]:
        """All cached digests."""
        return [p.stem for p in self._walk(".json")]

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self, quarantined: bool = True) -> int:
        """Delete every entry; returns how many *this call* removed.

        Safe against a concurrent ``clear``/``evict``: entries that vanish
        mid-walk are simply not counted.  ``quarantined`` also sweeps
        ``.corrupt`` tombstones.
        """
        removed = 0
        root = Path(self.root)
        if not root.exists():
            return 0
        suffixes = [".json"]
        if quarantined:
            suffixes.append(f".json{QUARANTINE_SUFFIX}")
        for suffix in suffixes:
            for path in self._walk(suffix):
                if suffix == ".json" and path.name.endswith(QUARANTINE_SUFFIX):
                    continue  # tombstones are not cached results
                try:
                    path.unlink()
                except OSError:
                    continue  # lost the race to a concurrent clear/evict
                if path.suffix == ".json":
                    removed += 1
        try:
            shards = list(root.iterdir())
        except OSError:
            return removed
        for shard in shards:
            try:
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
            except OSError:
                continue
        return removed
