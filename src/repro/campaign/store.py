"""Append-only JSONL result store.

Every completed (or failed) campaign job appends one self-describing JSON
record to a ``.jsonl`` file.  Append-only keeps concurrent writers safe and
preserves history across re-runs; readers deduplicate by job digest, keeping
the most recent record, which makes the store double as the input to
baseline-vs-current regression diffs — and, for the distributed fabric, the
source of truth crash-resume rebuilds completed work from.

Crash behaviour: a worker killed mid-append leaves a *torn* trailing line.
Reads tolerate that by default — the same discipline as the telemetry sink
(:func:`repro.obs.sink.read_records`): a malformed line is warned about and
skipped, everything parseable is kept.  ``strict=True`` restores
fail-on-anything for forensic reads.  Appends self-heal the tear: when the
file does not end in a newline (a previous writer died mid-line), the next
append starts on a fresh line, so one crash corrupts at most one record,
never the records written after resume.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.campaign.faults import active_faults
from repro.core.serialization import stable_json_dumps
from repro.errors import ReproError


class ResultStore:
    """One JSONL file of campaign job records."""

    def __init__(self, path: Union[str, Path], fsync: bool = False) -> None:
        self.path = Path(path)
        #: fsync after every append (durability against host crashes).
        self.fsync = fsync

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, record: dict[str, object]) -> None:
        """Append one record (sanitized, stable key order) to the store."""
        if not isinstance(record, dict):
            raise ReproError(f"store records must be dicts, got {type(record).__name__}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = stable_json_dumps(record)
        fault = active_faults().fire("store.append", label=str(record.get("digest", "")))
        with self.path.open("a", encoding="utf-8") as fh:
            if self._needs_newline_boundary(fh):
                fh.write("\n")
            if fault is not None and fault.kind == "torn_write":
                # Emulate dying mid-append: half a line, no newline, and the
                # caller sees the crash as an exception.
                fh.write(line[: max(1, len(line) // 2)])
                fh.flush()
                raise ReproError(
                    f"injected torn write at {self.path}"
                )
            fh.write(line)
            fh.write("\n")
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())

    def _needs_newline_boundary(self, fh) -> bool:
        """True when the file ends mid-line (a previous writer was killed)."""
        try:
            end = fh.tell()
            if end == 0:
                return False
            with self.path.open("rb") as probe:
                probe.seek(end - 1)
                return probe.read(1) != b"\n"
        except OSError:
            return False

    def extend(self, records: list[dict[str, object]]) -> None:
        """Append several records."""
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def iter_records(self, strict: bool = False) -> Iterator[dict[str, object]]:
        """Yield records in append order.

        A malformed line — the torn tail of a ``kill -9``'d writer, or a
        tear mid-file that a later append healed past — is warned about and
        skipped by default, so one crash never makes the whole store
        unreadable.  ``strict=True`` raises instead (the historical
        behaviour), for callers that must not silently lose a record.
        """
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                record: object
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    if strict:
                        raise ReproError(
                            f"corrupt record at {self.path}:{lineno}: {error}"
                        ) from error
                    warnings.warn(
                        f"skipping torn/corrupt record at {self.path}:{lineno}: "
                        f"{error}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                if not isinstance(record, dict):
                    if strict:
                        raise ReproError(f"non-object record at {self.path}:{lineno}")
                    warnings.warn(
                        f"skipping non-object record at {self.path}:{lineno}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                yield record

    def load(self, strict: bool = False) -> list[dict[str, object]]:
        """All records in append order."""
        return list(self.iter_records(strict=strict))

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    def __iter__(self) -> Iterator[dict[str, object]]:
        return self.iter_records()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        status: Optional[str] = None,
        campaign: Optional[str] = None,
        **job_fields: object,
    ) -> list[dict[str, object]]:
        """Records filtered by status, campaign name, and job-spec fields.

        ``job_fields`` match against the record's embedded job dict, e.g.
        ``store.query(model="bert", device="a100")``.
        """
        out = []
        for record in self.iter_records():
            if status is not None and record.get("status") != status:
                continue
            if campaign is not None and record.get("campaign") != campaign:
                continue
            job = record.get("job") or {}
            if not isinstance(job, dict):
                continue
            if all(job.get(key) == value for key, value in job_fields.items()):
                out.append(record)
        return out

    def latest_by_digest(self) -> dict[str, dict[str, object]]:
        """Most recent record per job digest (later appends win)."""
        out: dict[str, dict[str, object]] = {}
        for record in self.iter_records():
            digest = record.get("digest")
            if isinstance(digest, str):
                out[digest] = record
        return out

    def clear(self) -> None:
        """Delete the backing file (used by ``pasta-campaign clean``)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
