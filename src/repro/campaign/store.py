"""Append-only JSONL result store.

Every completed (or failed) campaign job appends one self-describing JSON
record to a ``.jsonl`` file.  Append-only keeps concurrent writers safe and
preserves history across re-runs; readers deduplicate by job digest, keeping
the most recent record, which makes the store double as the input to
baseline-vs-current regression diffs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.serialization import stable_json_dumps
from repro.errors import ReproError


class ResultStore:
    """One JSONL file of campaign job records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, record: dict[str, object]) -> None:
        """Append one record (sanitized, stable key order) to the store."""
        if not isinstance(record, dict):
            raise ReproError(f"store records must be dicts, got {type(record).__name__}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(stable_json_dumps(record))
            fh.write("\n")

    def extend(self, records: list[dict[str, object]]) -> None:
        """Append several records."""
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def iter_records(self) -> Iterator[dict[str, object]]:
        """Yield records in append order; malformed lines raise."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ReproError(
                        f"corrupt record at {self.path}:{lineno}: {error}"
                    ) from error
                if not isinstance(record, dict):
                    raise ReproError(f"non-object record at {self.path}:{lineno}")
                yield record

    def load(self) -> list[dict[str, object]]:
        """All records in append order."""
        return list(self.iter_records())

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    def __iter__(self) -> Iterator[dict[str, object]]:
        return self.iter_records()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        status: Optional[str] = None,
        campaign: Optional[str] = None,
        **job_fields: object,
    ) -> list[dict[str, object]]:
        """Records filtered by status, campaign name, and job-spec fields.

        ``job_fields`` match against the record's embedded job dict, e.g.
        ``store.query(model="bert", device="a100")``.
        """
        out = []
        for record in self.iter_records():
            if status is not None and record.get("status") != status:
                continue
            if campaign is not None and record.get("campaign") != campaign:
                continue
            job = record.get("job") or {}
            if not isinstance(job, dict):
                continue
            if all(job.get(key) == value for key, value in job_fields.items()):
                out.append(record)
        return out

    def latest_by_digest(self) -> dict[str, dict[str, object]]:
        """Most recent record per job digest (later appends win)."""
        out: dict[str, dict[str, object]] = {}
        for record in self.iter_records():
            digest = record.get("digest")
            if isinstance(digest, str):
                out[digest] = record
        return out

    def clear(self) -> None:
        """Delete the backing file (used by ``pasta-campaign clean``)."""
        if self.path.exists():
            self.path.unlink()
