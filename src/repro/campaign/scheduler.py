"""Parallel campaign scheduler: worker pool, retries, timeouts, cache reuse.

The scheduler is the throughput engine of the campaign subsystem.  It expands
a :class:`~repro.campaign.spec.CampaignSpec` into
:class:`~repro.api.spec.ProfileSpec` jobs, serves any job whose digest (the
spec's canonical serialization salted with the package version) is already in
the :class:`~repro.campaign.cache.ResultCache` without re-simulating, and
fans the rest out over a ``concurrent.futures`` worker pool.  Execution goes
through the unified runner (:mod:`repro.api.runner`) — the same path a live
``pasta profile`` run takes.  Jobs are isolated: one job crashing (or timing
out) is recorded as a failed outcome and never takes down the campaign.
Fresh results are written to the cache and appended to the
:class:`~repro.campaign.store.ResultStore` as they complete.

Execution modes
---------------
``"simulate"`` (the default) runs every cache-missing job as a fresh
simulation.  ``"replay"`` instead groups the cache-missing jobs by their
:meth:`~repro.api.spec.ProfileSpec.workload_signature` — the identity of the
underlying simulation, ignoring tools, analysis model and knobs — records each
distinct workload **once** as a trace (:mod:`repro.replay`), and answers every
job in the group by offline replay.  A grid sweeping N tool/analysis-model
combinations over one workload therefore simulates once instead of N times,
while producing the same records.

The distributed fabric
----------------------
Several schedulers — separate processes or hosts sharing a campaign
directory — can run *one* grid together:

* **Sharding** — ``shard=(k, n)`` makes this scheduler primary for the jobs
  whose digest falls in shard ``k`` of ``n`` (:func:`~repro.campaign.leases.shard_of`).
* **Leases** — each job is claimed through a
  :class:`~repro.campaign.leases.LeaseManager` before execution (atomic
  ``O_EXCL`` claim files with pid/host/owner and heartbeats), so two workers
  never simulate the same cell.  A heartbeat thread keeps held leases fresh;
  a worker that dies (``kill -9``) simply stops heartbeating and its leases
  go stale.
* **Work-stealing** — after its own shard, a scheduler sweeps the remaining
  cells: anything already completed elsewhere is served from the shared
  cache/store, anything whose lease is absent or stale is claimed and run
  here (``steal=False`` waits without stealing).
* **Crash-resume** — with ``resume=True`` (the default when a store is
  attached), completed work is reconstructed from
  :meth:`~repro.campaign.store.ResultStore.latest_by_digest` on startup, so
  a rerun after a crash simulates only the missing cells.

Failure policy (``on_failure``): ``"isolate"`` (default) records the failure
and moves on; ``"fail_fast"`` aborts the campaign, marking unstarted jobs
``"skipped"``; ``"degrade"`` re-runs a failed job stripped to its bare
workload (no tools, no knobs) and records the partial result as
``"degraded"``.  Retries sleep between attempts with exponential backoff and
decorrelated jitter (``backoff_s`` / ``backoff_cap_s``), surfaced per
attempt in :class:`JobOutcome` and on the progress stream.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

import repro
from repro.api.runner import (
    execute_payload,
    record_workload_trace,
    replay_payload,
)
from repro.api.spec import ProfileSpec
from repro.campaign.cache import CacheBackend, ResultCache
from repro.campaign.faults import active_faults
from repro.campaign.leases import LeaseManager, shard_of
from repro.campaign.progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressWriter,
    active_progress,
)
from repro.campaign.spec import EXECUTION_MODES, CampaignSpec, expand_jobs
from repro.campaign.store import ResultStore
from repro.core.serialization import json_sanitize
from repro.errors import ReproError
from repro.obs.metrics import DURATION_BUCKETS_S
from repro.obs.telemetry import active as _active_telemetry
from repro.replay.reader import TraceReader

#: Signature of a job runner: canonical job dict in, JSON-native record out.
JobRunner = Callable[[dict[str, object]], dict[str, object]]

_EXECUTORS = ("serial", "thread", "process")

#: Outcome statuses that carry a usable record.
_OK_STATUSES = ("ok", "cached", "degraded")

#: Every status an outcome can end in.
_ALL_STATUSES = ("ok", "cached", "degraded", "failed", "timeout", "skipped")

#: Per-job failure policies.
FAILURE_POLICIES = ("isolate", "fail_fast", "degrade")

#: Patchable sleep used by retry backoff and lease polling (tests stub it).
_sleep = time.sleep

#: Store keys added on append that a resumed/cached record must not carry.
_STORE_ONLY_KEYS = ("campaign", "cache_hit")


class JobAttemptsError(ReproError):
    """Every attempt of one job failed.

    Carries each attempt's error (message and traceback) so a flaky job's
    intermediate failures are never silently discarded — only the final one
    used to be reported.  ``str()`` is the *last* attempt's message, keeping
    existing ``"boom" in outcome.error`` style matching working.
    """

    def __init__(self, errors: list[dict[str, object]]) -> None:
        self.errors = list(errors)
        last = str(self.errors[-1].get("error")) if self.errors else "unknown error"
        super().__init__(last)

    def __reduce__(self):
        # ProcessPoolExecutor pickles worker exceptions; the default reduce
        # would re-call __init__ with the formatted message, losing .errors.
        return (JobAttemptsError, (self.errors,))


def _attempt_error_entry(attempt: int, error: BaseException) -> dict[str, object]:
    return {
        "attempt": attempt,
        "error": f"{type(error).__name__}: {error}",
        "traceback": "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        ),
    }


def _errors_of(error: BaseException) -> list[dict[str, object]]:
    """Per-attempt error entries for an exhausted-retries (or one-shot) failure."""
    if isinstance(error, JobAttemptsError):
        return list(error.errors)
    return [_attempt_error_entry(1, error)]


def _error_detail(error: BaseException) -> str:
    """``Type: message`` for one failure, without double-prefixing wrappers."""
    if isinstance(error, JobAttemptsError):
        # str() is already the last attempt's "Type: message".
        return str(error)
    return f"{type(error).__name__}: {error}"


def _backoff_total(entries: list[dict[str, object]]) -> float:
    return float(sum(
        e.get("backoff_s", 0.0) for e in entries  # type: ignore[arg-type]
        if isinstance(e.get("backoff_s", 0.0), (int, float))
    ))


def _run_with_retries(
    payload: dict[str, object],
    retries: int,
    runner: JobRunner,
    backoff_s: float = 0.0,
    backoff_cap_s: float = 30.0,
) -> dict[str, object]:
    """Invoke ``runner`` with up to ``retries`` re-attempts on exception.

    Failed attempts sleep before the next try: exponential backoff with
    *decorrelated jitter* (each delay drawn uniformly from ``[base, 3 *
    previous]``, capped), so a fleet of retrying workers spreads out instead
    of hammering in lockstep.  The chosen delay is recorded on the attempt's
    error entry as ``backoff_s``.

    Returns the record augmented with the attempt count (plus
    ``attempt_errors`` when earlier attempts failed); raises
    :class:`JobAttemptsError` carrying every attempt's error once attempts
    are exhausted.
    """
    attempts = 0
    attempt_errors: list[dict[str, object]] = []
    rng = random.Random()
    previous_delay = max(backoff_s, 0.0)
    faults = active_faults()
    # Rich enough for FaultRule.match substring filters to single out one
    # grid cell; built from the payload so it works in pool workers too.
    label = (
        f"{payload.get('model', '')}[bs{payload.get('batch_size', '?')}]"
        f"@{payload.get('device', '')}"
    )
    while True:
        attempts += 1
        try:
            faults.fire("scheduler.job", label=label)
            record = runner(payload)
        except Exception as error:
            entry = _attempt_error_entry(attempts, error)
            if attempts > retries:
                attempt_errors.append(entry)
                raise JobAttemptsError(attempt_errors) from error
            if backoff_s > 0.0:
                delay = min(
                    max(backoff_cap_s, 0.0),
                    rng.uniform(backoff_s, max(backoff_s, previous_delay * 3.0)),
                )
                previous_delay = delay
                entry["backoff_s"] = round(delay, 6)
                _sleep(delay)
            attempt_errors.append(entry)
        else:
            if not isinstance(record, dict):
                raise ReproError(
                    f"job runner must return a dict record, got {type(record).__name__}"
                )
            record.setdefault("attempts", attempts)
            if attempt_errors:
                # Succeeded after failures: keep what the retries swallowed.
                record.setdefault("attempt_errors", attempt_errors)
            return record


def _run_default_with_retries(
    payload: dict[str, object],
    retries: int,
    backoff_s: float = 0.0,
    backoff_cap_s: float = 30.0,
) -> dict[str, object]:
    """Module-level (picklable) wrapper used by the process-pool executor."""
    return _run_with_retries(payload, retries, execute_payload,
                             backoff_s=backoff_s, backoff_cap_s=backoff_cap_s)


@dataclass
class JobOutcome:
    """What happened to one job in one campaign run."""

    job: ProfileSpec
    digest: str
    status: str  # one of _ALL_STATUSES
    record: Optional[dict[str, object]] = None
    error: Optional[str] = None
    attempts: int = 1
    duration_s: float = 0.0
    #: Per-attempt error entries (``attempt`` / ``error`` / ``traceback`` /
    #: ``backoff_s``), covering *every* failed attempt — including the ones a
    #: later retry recovered from (``status == "ok"`` with a non-empty list).
    errors: list[dict[str, object]] = field(default_factory=list)
    #: Total seconds slept in retry backoff for this job.
    backoff_s: float = 0.0
    #: True when this scheduler took the job from another worker's shard.
    stolen: bool = False

    @property
    def ok(self) -> bool:
        """True if the job produced a usable record."""
        return self.status in _OK_STATUSES

    @property
    def cached(self) -> bool:
        """True if the record came from the result cache."""
        return self.status == "cached"


@dataclass
class CampaignRunResult:
    """Aggregate outcome of one scheduler run."""

    name: str
    outcomes: list[JobOutcome] = field(default_factory=list)
    duration_s: float = 0.0
    #: Execution mode the run used ("simulate" or "replay").
    execution: str = "simulate"
    #: Distinct workloads actually simulated (and recorded) in replay mode;
    #: equals :attr:`executed` in simulate mode.
    workloads_recorded: int = 0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def executed(self) -> int:
        """Jobs that were actually simulated (cache misses that ran)."""
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def degraded(self) -> int:
        """Jobs answered by the stripped-down degraded fallback."""
        return sum(1 for o in self.outcomes if o.status == "degraded")

    @property
    def skipped(self) -> int:
        """Jobs never started because a ``fail_fast`` abort fired first."""
        return sum(1 for o in self.outcomes if o.status == "skipped")

    @property
    def stolen(self) -> int:
        """Jobs this scheduler work-stole from another worker's shard."""
        return sum(1 for o in self.outcomes if o.stolen)

    def records(self) -> list[dict[str, object]]:
        """Usable records from all successful outcomes."""
        return [o.record for o in self.outcomes if o.ok and o.record is not None]

    def failures(self) -> list[JobOutcome]:
        """Outcomes that did not produce a record."""
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> dict[str, object]:
        """JSON-native roll-up for CLI output."""
        return json_sanitize({
            "campaign": self.name,
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "degraded": self.degraded,
            "skipped": self.skipped,
            "stolen": self.stolen,
            "execution": self.execution,
            "workloads_recorded": self.workloads_recorded,
            "duration_s": round(self.duration_s, 3),
            "backoff_s": round(sum(o.backoff_s for o in self.outcomes), 6),
            "failures": [
                {
                    "job": o.job.label(),
                    "status": o.status,
                    "error": o.error,
                    "attempts": o.attempts,
                    "errors": [str(e.get("error")) for e in o.errors],
                }
                for o in self.failures()
            ],
        })


class CampaignScheduler:
    """Runs campaign jobs over a worker pool with caching and isolation.

    Parameters
    ----------
    jobs:
        Worker-pool width (``--jobs N``); 1 with ``executor="serial"`` runs
        everything inline.
    executor:
        ``"thread"`` (default), ``"process"`` (true parallelism, requires the
        default picklable runner), or ``"serial"``.
    timeout_s:
        Per-job wall-clock budget.  A job exceeding it is recorded as
        ``"timeout"`` and the campaign moves on.
    retries:
        Re-attempts per job before recording a failure.
    backoff_s / backoff_cap_s:
        Base (and cap) of the exponential-backoff-with-decorrelated-jitter
        sleep between retry attempts; ``backoff_s=0`` (default) retries
        immediately, preserving the historical behaviour.
    cache / store:
        Optional result cache (digest-keyed reuse) and JSONL store (append
        per completed job).
    resume:
        Reconstruct completed work from the store's ``latest_by_digest()``
        on startup (version-matched ``"ok"`` records become cache hits), so
        a rerun after a crash simulates only the missing cells.  Default
        True; meaningless without a store.
    leases / shard / steal / steal_timeout_s:
        The distributed fabric: a :class:`~repro.campaign.leases.LeaseManager`
        over a shared lease directory, an optional ``(index, count)`` digest
        shard this worker is primary for, whether to work-steal cells whose
        lease is absent or stale (default True), and how long to wait on
        cells held by other live workers before giving up (None = wait until
        they finish or their lease goes stale).
    on_failure:
        ``"isolate"`` (default), ``"fail_fast"``, or ``"degrade"`` — see the
        module docstring.
    job_runner:
        Override the job execution function (tests inject stubs here).
        Ignored by the process executor, which always uses the default
        picklable runner, and by replay-mode execution.
    execution:
        ``"simulate"``, ``"replay"``, or ``None`` to honour the campaign
        spec's ``execution`` field (explicit job lists default to simulate).
        Replay mode runs inline (one recording then cheap in-memory replays
        per workload group): ``jobs``/``executor`` and ``timeout_s`` apply
        only to simulate-mode execution, while ``retries`` covers the
        recording step.  Jobs whose spec sets ``record_to`` are always
        simulated, even in replay mode — they need a live event stream to
        produce their trace artifact.  Work-stolen jobs are likewise always
        simulated (a stolen cell has no recorded group trace to share).
    trace_dir:
        Where replay-mode workload traces are written; defaults to a
        temporary directory discarded after the run.
    progress:
        Optional :class:`~repro.campaign.progress.ProgressWriter` streaming
        job lifecycle records (queued/started/retried/finished with cache
        hit/miss attribution) to a ``status.jsonl`` for ``pasta campaign
        watch``.  When omitted, each run uses the process-wide active bus
        (a no-op unless one was installed).
    """

    def __init__(
        self,
        jobs: int = 1,
        executor: str = "thread",
        timeout_s: Optional[float] = None,
        retries: int = 0,
        cache: Optional[CacheBackend] = None,
        store: Optional[ResultStore] = None,
        job_runner: Optional[JobRunner] = None,
        version: Optional[str] = None,
        execution: Optional[str] = None,
        trace_dir: Union[str, Path, None] = None,
        progress: Union[ProgressWriter, NullProgress, None] = None,
        backoff_s: float = 0.0,
        backoff_cap_s: float = 30.0,
        resume: bool = True,
        leases: Optional[LeaseManager] = None,
        shard: Optional[tuple[int, int]] = None,
        steal: bool = True,
        steal_timeout_s: Optional[float] = None,
        on_failure: str = "isolate",
        heartbeat_interval_s: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        if executor not in _EXECUTORS:
            raise ReproError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0 or backoff_cap_s < 0:
            raise ReproError("backoff_s and backoff_cap_s must be >= 0")
        if executor == "process" and job_runner is not None:
            raise ReproError("custom job runners are not picklable; use the thread executor")
        if execution is not None and execution not in EXECUTION_MODES:
            raise ReproError(
                f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
            )
        if on_failure not in FAILURE_POLICIES:
            raise ReproError(
                f"on_failure must be one of {FAILURE_POLICIES}, got {on_failure!r}"
            )
        if shard is not None:
            index, count = shard
            if count < 1 or not 0 <= index < count:
                raise ReproError(f"shard must be (index, count) with 0 <= index < count, got {shard!r}")
            if leases is None:
                raise ReproError("sharded execution requires a lease manager "
                                 "(shards coordinate through leases)")
        self.jobs = jobs
        self.executor = executor
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.cache = cache
        self.store = store
        self.resume = resume
        self.leases = leases
        self.shard = shard
        self.steal = steal
        self.steal_timeout_s = steal_timeout_s
        self.on_failure = on_failure
        self.heartbeat_interval_s = heartbeat_interval_s
        self.job_runner: JobRunner = job_runner or execute_payload
        self.version = version if version is not None else repro.__version__
        self.execution = execution
        self.trace_dir = trace_dir
        # Explicit writer wins; otherwise each run() picks up whatever bus is
        # active at that moment (the CLI's --status flag installs one).
        self.progress = progress
        self._progress: Union[ProgressWriter, NullProgress] = NULL_PROGRESS
        #: Set to the abort reason once a fail_fast failure fires.
        self._abort: Optional[str] = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        spec: Union[CampaignSpec, Iterable[ProfileSpec]],
        name: Optional[str] = None,
    ) -> CampaignRunResult:
        """Run every job of ``spec`` and return per-job outcomes.

        Cached (and store-resumable) jobs are answered immediately; the rest
        execute on the worker pool — lease-gated when the distributed fabric
        is configured.  Completed records are cached and appended to the
        store as they finish, so an interrupted campaign keeps everything it
        already simulated.
        """
        started = time.monotonic()
        campaign_name = name or (spec.name if isinstance(spec, CampaignSpec) else "adhoc")
        execution = self.execution or (
            spec.execution if isinstance(spec, CampaignSpec) else "simulate"
        )
        job_list = expand_jobs(spec)
        telemetry = _active_telemetry()
        telemetry.annotate(campaign=campaign_name, execution=execution)
        self._abort = None
        self._progress = (
            self.progress if self.progress is not None else active_progress()
        )
        self._progress.emit(
            "campaign", event="start", campaign=campaign_name,
            execution=execution, total=len(job_list), slots=self.jobs,
            worker=self.leases.owner if self.leases is not None else None,
            shard=list(self.shard) if self.shard is not None else None,
        )
        resume_map = self._resume_map() if (self.resume and self.store is not None) else {}
        with telemetry.span(
            "campaign.run",
            campaign=campaign_name,
            execution=execution,
            executor=self.executor,
            jobs=self.jobs,
            total_jobs=len(job_list),
        ) as campaign_span:
            outcomes: dict[int, JobOutcome] = {}
            pending: list[tuple[int, ProfileSpec, str]] = []
            workloads_recorded = 0

            for index, job in enumerate(job_list):
                digest = job.digest(self.version)
                self._progress.emit(
                    "job", event="queued", index=index, job=job.label(),
                    digest=digest[:12],
                )
                # record_to is excluded from the digest (it cannot change the
                # reports), but a job that asks for a trace file wants that side
                # artifact produced — never answer it from the cache.
                use_cache = self.cache is not None and job.record_to is None
                cached_record = self.cache.get(digest) if use_cache else None
                if cached_record is not None:
                    telemetry.counter("campaign.cache_hits").inc()
                elif job.record_to is None and digest in resume_map:
                    # Crash-resume: the store already holds this cell's
                    # result from an earlier (possibly killed) run.  Serve
                    # it as a cache hit and refill the cache for the fleet.
                    cached_record = resume_map[digest]
                    telemetry.counter("campaign.resumed").inc()
                    if use_cache:
                        self.cache.put(digest, cached_record)
                if cached_record is not None:
                    self._record_outcome(outcomes, index, JobOutcome(
                        job=job, digest=digest, status="cached", record=cached_record
                    ), campaign_name)
                else:
                    if use_cache:
                        telemetry.counter("campaign.cache_misses").inc()
                    pending.append((index, job, digest))

            if self.leases is not None:
                workloads_recorded = self._run_leased(
                    pending, outcomes, campaign_name, execution
                )
            else:
                workloads_recorded = self._run_pending(
                    pending, outcomes, campaign_name, execution
                )
            for status in _ALL_STATUSES:
                campaign_span.set_counter(
                    f"jobs_{status}",
                    sum(1 for o in outcomes.values() if o.status == status),
                )
        result = CampaignRunResult(
            name=campaign_name,
            outcomes=[outcomes[i] for i in range(len(job_list))],
            duration_s=time.monotonic() - started,
            execution=execution,
        )
        result.workloads_recorded = (
            workloads_recorded if execution == "replay" else result.executed
        )
        self._progress.emit(
            "campaign", event="end", campaign=campaign_name,
            duration_s=round(result.duration_s, 3), executed=result.executed,
            cached=result.cached, failed=result.failed, stolen=result.stolen,
        )
        return result

    def _resume_map(self) -> dict[str, dict[str, object]]:
        """Completed cells recoverable from the store: digest -> record.

        Only version-matched ``"ok"`` records count — failed, degraded and
        stale-version records must re-simulate.  Store-only bookkeeping keys
        are stripped so a resumed record is byte-identical to a cache hit.
        """
        assert self.store is not None
        out: dict[str, dict[str, object]] = {}
        for digest, record in self.store.latest_by_digest().items():
            if record.get("status") != "ok":
                continue
            if record.get("version") != self.version:
                continue
            out[digest] = {
                k: v for k, v in record.items() if k not in _STORE_ONLY_KEYS
            }
        return out

    def _run_pending(
        self,
        pending: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
        execution: str,
    ) -> int:
        """Execute the cache-missing jobs; returns the workloads recorded."""
        workloads_recorded = 0
        if self._abort is not None:
            self._skip_remaining(pending, outcomes, campaign_name)
            return 0
        if pending and execution == "replay":
            # A job that asks for its own trace artifact needs a live event
            # stream to record — replaying the shared group trace would
            # complete it without ever writing the file.  Such jobs are
            # simulated (with the default runner, like the rest of replay
            # mode); everything else goes through record-once/replay-many.
            recordings = [entry for entry in pending if entry[1].record_to is not None]
            replayable = [entry for entry in pending if entry[1].record_to is None]
            for position, (index, job, digest) in enumerate(recordings):
                if self._abort is not None:
                    self._skip_remaining(recordings[position:], outcomes, campaign_name)
                    return workloads_recorded
                self._emit_job(index, job, digest, "started")
                self._record_outcome(
                    outcomes, index,
                    self._run_one_inline(job, digest, runner=execute_payload),
                    campaign_name,
                )
            workloads_recorded = len(recordings)
            if replayable:
                workloads_recorded += self._run_replay(
                    replayable, outcomes, campaign_name
                )
        elif pending:
            # The inline path cannot interrupt a job, so any timeout budget
            # forces a (possibly single-worker) pool.
            inline = self.timeout_s is None and (
                self.executor == "serial" or (self.executor == "thread" and self.jobs == 1)
            )
            if inline:
                for position, (index, job, digest) in enumerate(pending):
                    if self._abort is not None:
                        self._skip_remaining(pending[position:], outcomes, campaign_name)
                        break
                    self._emit_job(index, job, digest, "started")
                    self._record_outcome(
                        outcomes, index, self._run_one_inline(job, digest), campaign_name
                    )
            else:
                self._run_pool(pending, outcomes, campaign_name)
        return workloads_recorded

    # ------------------------------------------------------------------ #
    # the distributed fabric
    # ------------------------------------------------------------------ #
    def _run_leased(
        self,
        pending: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
        execution: str,
    ) -> int:
        """Lease-gated execution: claim own shard, run it, then work-steal."""
        assert self.leases is not None
        shard_index, shard_count = self.shard if self.shard is not None else (0, 1)
        mine: list[tuple[int, ProfileSpec, str]] = []
        theirs: list[tuple[int, ProfileSpec, str]] = []
        for entry in pending:
            if shard_of(entry[2], shard_count) == shard_index:
                mine.append(entry)
            else:
                theirs.append(entry)
        claimed: list[tuple[int, ProfileSpec, str]] = []
        telemetry = _active_telemetry()
        for entry in mine:
            takeovers_before = self.leases.takeovers
            if self.leases.claim(entry[2]):
                claimed.append(entry)
                if self.leases.takeovers > takeovers_before:
                    self._emit_lease("takeover", entry[2])
            else:
                # A live worker beat us to our own cell (it was stealing, or
                # shards overlap); treat it like a foreign cell.
                self._emit_lease("contested", entry[2])
                theirs.append(entry)
        telemetry.counter("campaign.leases_claimed").inc(len(claimed))
        stop_beating = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop, args=(stop_beating,),
            name="pasta-lease-heartbeat", daemon=True,
        )
        beater.start()
        try:
            recorded = self._run_pending(claimed, outcomes, campaign_name, execution)
            self._steal_phase(theirs, outcomes, campaign_name)
        finally:
            stop_beating.set()
            beater.join(timeout=5.0)
            self.leases.release_all()
        return recorded

    def _heartbeat_loop(self, stop: threading.Event) -> None:
        assert self.leases is not None
        interval = (
            self.heartbeat_interval_s
            if self.heartbeat_interval_s is not None
            else max(0.05, self.leases.ttl_s / 3.0)
        )
        while not stop.wait(interval):
            self.leases.heartbeat_all()

    def _steal_phase(
        self,
        entries: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
    ) -> None:
        """Resolve the cells other workers are (were) responsible for.

        Each pass over the unresolved cells: serve anything completed
        elsewhere from the shared cache/store, claim-and-run anything whose
        lease is absent or stale (work-stealing), and wait on cells held by
        live workers.  A dead worker's lease stops heartbeating, goes stale
        within the ttl, and its cells are taken over here.
        """
        assert self.leases is not None
        remaining = list(entries)
        if not remaining:
            return
        telemetry = _active_telemetry()
        deadline = (
            time.monotonic() + self.steal_timeout_s
            if self.steal_timeout_s is not None else None
        )
        poll_s = max(0.05, min(self.leases.ttl_s / 4.0, 1.0))
        while remaining:
            if self._abort is not None:
                self._skip_remaining(remaining, outcomes, campaign_name)
                return
            progressed = False
            unresolved: list[tuple[int, ProfileSpec, str]] = []
            for index, job, digest in remaining:
                record = self._completed_elsewhere(job, digest)
                if record is not None:
                    telemetry.counter("campaign.cache_hits").inc()
                    self._record_outcome(outcomes, index, JobOutcome(
                        job=job, digest=digest, status="cached", record=record,
                    ), campaign_name)
                    progressed = True
                    continue
                takeovers_before = self.leases.takeovers
                if self.steal and self.leases.claim(digest):
                    self._emit_lease(
                        "takeover" if self.leases.takeovers > takeovers_before
                        else "steal",
                        digest,
                    )
                    telemetry.counter("campaign.jobs_stolen").inc()
                    self._emit_job(index, job, digest, "started")
                    outcome = self._run_one_inline(job, digest)
                    outcome.stolen = True
                    self._record_outcome(outcomes, index, outcome, campaign_name)
                    progressed = True
                    continue
                unresolved.append((index, job, digest))
            remaining = unresolved
            if not remaining:
                return
            if deadline is not None and time.monotonic() >= deadline:
                for index, job, digest in remaining:
                    holder = self.leases.holder(digest)
                    owner = holder.owner if holder is not None else "unknown"
                    self._record_outcome(outcomes, index, JobOutcome(
                        job=job, digest=digest, status="failed",
                        error=f"job leased by {owner}; gave up after "
                              f"{self.steal_timeout_s}s",
                    ), campaign_name)
                return
            if not progressed:
                _sleep(poll_s)

    def _completed_elsewhere(
        self, job: ProfileSpec, digest: str
    ) -> Optional[dict[str, object]]:
        """Another worker's finished record for ``digest``, if any."""
        if self.cache is not None and job.record_to is None:
            record = self.cache.get(digest)
            if record is not None:
                return record
        if self.store is not None and job.record_to is None:
            record = self.store.latest_by_digest().get(digest)
            if (
                record is not None
                and record.get("status") == "ok"
                and record.get("version") == self.version
            ):
                return {k: v for k, v in record.items() if k not in _STORE_ONLY_KEYS}
        return None

    def _skip_remaining(
        self,
        entries: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
    ) -> None:
        for index, job, digest in entries:
            if index in outcomes:
                continue
            self._record_outcome(outcomes, index, JobOutcome(
                job=job, digest=digest, status="skipped",
                error=f"campaign aborted: {self._abort}",
            ), campaign_name)

    # ------------------------------------------------------------------ #
    # execution strategies
    # ------------------------------------------------------------------ #
    def _run_replay(
        self,
        pending: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
    ) -> int:
        """Record each distinct workload once, then replay it per job.

        Returns the number of workloads actually simulated.  Failure
        isolation matches the simulate path: a failed recording fails every
        job of its group (they have nothing to replay), a failed replay
        fails only its own job.  Execution is inline and serial — replays
        are in-memory and cheap, so the worker pool and its per-job timeout
        machinery are simulate-mode concerns (see the class docstring).
        """
        groups: dict[tuple[object, ...], list[tuple[int, ProfileSpec, str]]] = {}
        order: list[tuple[object, ...]] = []
        for index, job, digest in pending:
            try:
                # Instantiates the job's tools (to learn their fine-grained
                # needs), so an unknown tool name must fail this job alone.
                signature = job.workload_signature()
            except Exception as error:
                self._record_outcome(outcomes, index, JobOutcome(
                    job=job, digest=digest, status="failed",
                    error=_error_detail(error),
                ), campaign_name)
                continue
            if signature not in groups:
                groups[signature] = []
                order.append(signature)
            groups[signature].append((index, job, digest))

        recorded = 0
        with tempfile.TemporaryDirectory(prefix="pasta-traces-") as scratch:
            trace_root = Path(self.trace_dir) if self.trace_dir is not None else Path(scratch)
            trace_root.mkdir(parents=True, exist_ok=True)
            for group_index, signature in enumerate(order):
                members = groups[signature]
                if self._abort is not None:
                    self._skip_remaining(members, outcomes, campaign_name)
                    continue
                base_payload = members[0][1].to_dict()
                trace_path = trace_root / f"workload-{group_index:04d}.pastatrace"
                started = time.monotonic()
                try:
                    summary = _run_with_retries(
                        base_payload, self.retries,
                        lambda payload: record_workload_trace(payload, trace_path),
                        backoff_s=self.backoff_s, backoff_cap_s=self.backoff_cap_s,
                    )
                    summary.pop("attempts", None)
                except Exception as error:
                    duration = time.monotonic() - started
                    for index, job, digest in members:
                        self._record_outcome(outcomes, index, JobOutcome(
                            job=job, digest=digest, status="failed",
                            error=f"workload recording failed: "
                                  f"{_error_detail(error)}",
                            attempts=self.retries + 1,
                            duration_s=duration,
                            errors=_errors_of(error),
                        ), campaign_name)
                    continue
                recorded += 1
                # Decode the trace once; every job in the group replays the
                # same in-memory event list.
                reader = TraceReader(trace_path)
                events = list(reader.events())
                for position, (index, job, digest) in enumerate(members):
                    if self._abort is not None:
                        self._skip_remaining(members[position:], outcomes, campaign_name)
                        break
                    self._emit_job(index, job, digest, "started")
                    job_started = time.monotonic()
                    try:
                        record = replay_payload(job.to_dict(), reader, summary,
                                                    events=events)
                    except Exception as error:
                        self._record_outcome(outcomes, index, JobOutcome(
                            job=job, digest=digest, status="failed",
                            error=f"replay failed: {_error_detail(error)}",
                            duration_s=time.monotonic() - job_started,
                            errors=_errors_of(error),
                        ), campaign_name)
                    else:
                        self._record_outcome(
                            outcomes, index,
                            self._ok_outcome(job, digest, record,
                                             time.monotonic() - job_started),
                            campaign_name,
                        )
        return recorded

    def _run_one_inline(
        self, job: ProfileSpec, digest: str, runner: Optional[JobRunner] = None
    ) -> JobOutcome:
        job_started = time.monotonic()
        try:
            record = _run_with_retries(job.to_dict(), self.retries,
                                       runner or self.job_runner,
                                       backoff_s=self.backoff_s,
                                       backoff_cap_s=self.backoff_cap_s)
        except Exception as error:
            return JobOutcome(
                job=job,
                digest=digest,
                status="failed",
                error=_error_detail(error),
                attempts=self.retries + 1,
                duration_s=time.monotonic() - job_started,
                errors=_errors_of(error),
                backoff_s=_backoff_total(_errors_of(error)),
            )
        return self._ok_outcome(job, digest, record, time.monotonic() - job_started)

    def _make_pool(self) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=self.jobs)
        return ThreadPoolExecutor(max_workers=self.jobs, thread_name_prefix="pasta-campaign")

    def _submit(self, pool: Executor, job: ProfileSpec) -> Future:
        payload = job.to_dict()
        if self.executor == "process":
            return pool.submit(_run_default_with_retries, payload, self.retries,
                               self.backoff_s, self.backoff_cap_s)
        return pool.submit(_run_with_retries, payload, self.retries, self.job_runner,
                           self.backoff_s, self.backoff_cap_s)

    def _wait_slice(self) -> Optional[float]:
        if self.timeout_s is None:
            return None
        return min(max(self.timeout_s / 4.0, 0.01), 0.5)

    def _run_pool(
        self,
        pending: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
    ) -> None:
        # At most `slots` futures are in flight at once, so every submitted
        # future starts immediately on a free worker and its per-job clock
        # starts at submission.  A timed-out job's worker may be unkillable
        # (threads and busy processes can't be interrupted); its slot is
        # retired so later jobs never queue behind a hung worker, and the
        # final shutdown does not wait for abandoned jobs.
        pool = self._make_pool()
        queue = list(pending)
        in_flight: dict[Future, tuple[int, ProfileSpec, str, float]] = {}
        slots = self.jobs
        telemetry = _active_telemetry()
        queue_depth = telemetry.gauge("campaign.queue_depth")
        in_flight_gauge = telemetry.gauge("campaign.in_flight")
        try:
            while queue or in_flight:
                if self._abort is not None and queue:
                    # fail_fast: nothing new starts; in-flight jobs drain.
                    self._skip_remaining(queue, outcomes, campaign_name)
                    queue = []
                while queue and len(in_flight) < slots:
                    index, job, digest = queue.pop(0)
                    self._emit_job(index, job, digest, "started")
                    in_flight[self._submit(pool, job)] = (index, job, digest, time.monotonic())
                queue_depth.set(len(queue))
                in_flight_gauge.set(len(in_flight))
                if not in_flight:
                    break  # every slot retired by timeouts; queue drains below
                done, _ = wait(
                    set(in_flight), timeout=self._wait_slice(), return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future in done:
                    index, job, digest, started = in_flight.pop(future)
                    self._record_outcome(
                        outcomes, index,
                        self._outcome_from_future(future, job, digest, now - started),
                        campaign_name,
                    )
                if self.timeout_s is None:
                    continue
                for future in list(in_flight):
                    index, job, digest, started = in_flight[future]
                    if now - started <= self.timeout_s:
                        continue
                    del in_flight[future]
                    if not future.cancel():
                        slots -= 1  # running and unkillable: retire its worker
                    self._record_outcome(outcomes, index, JobOutcome(
                        job=job,
                        digest=digest,
                        status="timeout",
                        error=f"job exceeded timeout of {self.timeout_s}s",
                        duration_s=now - started,
                    ), campaign_name)
            for index, job, digest in queue:
                self._record_outcome(outcomes, index, JobOutcome(
                    job=job,
                    digest=digest,
                    status="failed",
                    error="job never started: all workers lost to timed-out jobs",
                ), campaign_name)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _outcome_from_future(
        self, future: Future, job: ProfileSpec, digest: str, duration_s: float
    ) -> JobOutcome:
        try:
            record = future.result(timeout=0)
        except FutureTimeoutError:
            return JobOutcome(
                job=job, digest=digest, status="timeout",
                error=f"job exceeded timeout of {self.timeout_s}s",
                duration_s=duration_s,
            )
        except Exception as error:
            detail = _error_detail(error)
            if not str(error):
                detail = "".join(traceback.format_exception_only(type(error), error)).strip()
            return JobOutcome(
                job=job, digest=digest, status="failed", error=detail,
                attempts=self.retries + 1, duration_s=duration_s,
                errors=_errors_of(error),
                backoff_s=_backoff_total(_errors_of(error)),
            )
        return self._ok_outcome(job, digest, record, duration_s)

    # ------------------------------------------------------------------ #
    # graceful degradation
    # ------------------------------------------------------------------ #
    def _degraded_outcome(self, outcome: JobOutcome) -> JobOutcome:
        """Re-run a failed job stripped to its bare workload.

        The fallback drops tools, knob overrides and fine-grained
        instrumentation — the parts most likely to have failed — so the
        campaign still gets the cell's baseline summary.  The record is
        marked ``"degraded"`` (never cached: its content does not match the
        original digest) and keeps the real job identity plus the failure
        that triggered the fallback.
        """
        fallback = outcome.job.replace(
            tools=(), knobs=(), fine_grained=False, record_to=None
        )
        started = time.monotonic()
        try:
            record = self.job_runner(fallback.to_dict())
        except Exception as error:
            outcome.errors.append(_attempt_error_entry(
                len(outcome.errors) + 1, error
            ))
            outcome.error = (
                f"{outcome.error}; degraded fallback also failed: "
                f"{_error_detail(error)}"
            )
            return outcome
        if not isinstance(record, dict):
            return outcome
        record = dict(record)
        record["status"] = "degraded"
        record["degraded"] = True
        record["degraded_from"] = {
            "error": outcome.error,
            "tools": list(outcome.job.tools),
        }
        record["job"] = outcome.job.to_dict()
        record["digest"] = outcome.digest
        record["version"] = self.version
        return JobOutcome(
            job=outcome.job, digest=outcome.digest, status="degraded",
            record=record, error=outcome.error, attempts=outcome.attempts,
            duration_s=outcome.duration_s + (time.monotonic() - started),
            errors=outcome.errors, backoff_s=outcome.backoff_s,
            stolen=outcome.stolen,
        )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def _emit_job(
        self, index: int, job: ProfileSpec, digest: str, event: str
    ) -> None:
        """One job lifecycle record on the progress stream."""
        self._progress.emit(
            "job", event=event, index=index, job=job.label(), digest=digest[:12]
        )

    def _emit_lease(self, event: str, digest: str) -> None:
        """One lease transition on the progress stream."""
        assert self.leases is not None
        self._progress.emit(
            "lease", event=event, digest=digest[:12], owner=self.leases.owner
        )

    def _ok_outcome(
        self, job: ProfileSpec, digest: str, record: dict[str, object], duration_s: float
    ) -> JobOutcome:
        attempts = int(record.get("attempts", 1))  # type: ignore[arg-type]
        record = dict(record)
        record["digest"] = digest
        record["version"] = self.version
        attempt_errors = record.get("attempt_errors")
        errors = list(attempt_errors) if isinstance(attempt_errors, list) else []
        return JobOutcome(
            job=job, digest=digest, status="ok", record=record,
            attempts=attempts, duration_s=duration_s,
            errors=errors, backoff_s=_backoff_total(errors),
        )

    def _record_outcome(
        self,
        outcomes: dict[int, JobOutcome],
        index: int,
        outcome: JobOutcome,
        campaign_name: str,
    ) -> None:
        """Record one finished job and persist it immediately.

        Cache writes and store appends happen per job, as each completes, so
        an interrupted campaign keeps everything it already simulated.
        Failure policy is applied here: a ``degrade`` scheduler swaps a
        failure for its stripped-down fallback, a ``fail_fast`` one arms the
        abort that stops new work from starting.
        """
        if outcome.status == "failed" and self.on_failure == "degrade":
            outcome = self._degraded_outcome(outcome)
        if not outcome.ok and outcome.status != "skipped" and self.on_failure == "fail_fast":
            if self._abort is None:
                self._abort = f"{outcome.job.label()} {outcome.status}: {outcome.error}"
        outcomes[index] = outcome
        # Re-attempts beyond the first try: a success after N failures retried
        # N times; a failure's final attempt was not itself a retry.
        retries = len(outcome.errors) if outcome.ok else max(0, len(outcome.errors) - 1)
        for entry in outcome.errors[:retries]:
            self._progress.emit(
                "job", event="retried", index=index, job=outcome.job.label(),
                digest=outcome.digest[:12], attempt=entry.get("attempt"),
                error=entry.get("error"), backoff_s=entry.get("backoff_s"),
            )
        self._progress.emit(
            "job", event="finished", index=index, job=outcome.job.label(),
            digest=outcome.digest[:12], status=outcome.status,
            cache_hit=outcome.cached, duration_s=round(outcome.duration_s, 6),
            attempts=outcome.attempts, error=outcome.error,
            stolen=outcome.stolen or None,
        )
        telemetry = _active_telemetry()
        if telemetry.enabled:
            # One synthetic lifecycle span per job, timed by the scheduler:
            # works identically for inline, thread-pool and process-pool jobs
            # (pool workers cannot emit into this process's tracer).
            telemetry.record_span(
                "campaign.job",
                int(outcome.duration_s * 1e9),
                attrs={
                    "campaign": campaign_name,
                    "job": outcome.job.label(),
                    "digest": outcome.digest[:12],
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                },
                counters={"retried": retries},
                status="ok" if outcome.ok else "error",
                error=outcome.error,
            )
            telemetry.counter(f"campaign.jobs_{outcome.status}").inc()
            telemetry.counter("campaign.retries").inc(retries)
            if outcome.status != "cached":
                telemetry.histogram("campaign.job_s", DURATION_BUCKETS_S).observe(
                    outcome.duration_s
                )
        if outcome.status == "ok" and outcome.record is not None and self.cache is not None:
            cached = outcome.record
            job_payload = cached.get("job")
            # The digest ignores record_to, so this entry may later answer a
            # non-recording twin: cache the canonical payload, not the trace
            # destination (the result store keeps the true payload).
            if isinstance(job_payload, dict) and job_payload.get("record_to") is not None:
                cached = dict(cached)
                cached["job"] = {k: v for k, v in job_payload.items() if k != "record_to"}
            try:
                self.cache.put(outcome.digest, cached)
            except Exception as error:
                # A failing cache (disk full, injected corruption) degrades
                # throughput, never the campaign.
                telemetry.counter("campaign.cache_put_errors").inc()
                self._progress.emit(
                    "job", event="cache_error", index=index,
                    digest=outcome.digest[:12], error=_error_detail(error),
                )
        self._append_to_store(outcome, campaign_name)
        if self.leases is not None and outcome.digest in self.leases.held:
            self.leases.release(outcome.digest)

    def _append_to_store(self, outcome: JobOutcome, campaign_name: str) -> None:
        """Persist one outcome; a failing store never fails the campaign."""
        if self.store is None:
            return
        if outcome.ok and outcome.record is not None:
            stored = dict(outcome.record)
            stored["campaign"] = campaign_name
            stored["cache_hit"] = outcome.cached
        else:
            stored = {
                "campaign": campaign_name,
                "job": outcome.job.to_dict(),
                "digest": outcome.digest,
                "version": self.version,
                "status": outcome.status,
                "error": outcome.error,
                "attempts": outcome.attempts,
                "errors": outcome.errors,
            }
        try:
            self.store.append(stored)
        except Exception as error:
            # Torn/failed appends (a crashing disk, an injected torn_write)
            # lose this one record; the tolerant reader and the cache keep
            # the campaign itself recoverable.
            _active_telemetry().counter("campaign.store_append_errors").inc()
            self._progress.emit(
                "job", event="store_error", digest=outcome.digest[:12],
                error=_error_detail(error),
            )


def run_campaign(
    spec: Union[CampaignSpec, Iterable[ProfileSpec]],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    store_path: Optional[str] = None,
    **scheduler_kwargs: object,
) -> CampaignRunResult:
    """One-call convenience: build a scheduler and run ``spec``."""
    scheduler = CampaignScheduler(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache_dir else None,
        store=ResultStore(store_path) if store_path else None,
        **scheduler_kwargs,  # type: ignore[arg-type]
    )
    return scheduler.run(spec)
