"""Parallel campaign scheduler: worker pool, retries, timeouts, cache reuse.

The scheduler is the throughput engine of the campaign subsystem.  It expands
a :class:`~repro.campaign.spec.CampaignSpec` into
:class:`~repro.api.spec.ProfileSpec` jobs, serves any job whose digest (the
spec's canonical serialization salted with the package version) is already in
the :class:`~repro.campaign.cache.ResultCache` without re-simulating, and
fans the rest out over a ``concurrent.futures`` worker pool.  Execution goes
through the unified runner (:mod:`repro.api.runner`) — the same path a live
``pasta profile`` run takes.  Jobs are isolated: one job crashing (or timing
out) is recorded as a failed outcome and never takes down the campaign.
Fresh results are written to the cache and appended to the
:class:`~repro.campaign.store.ResultStore` as they complete.

Execution modes
---------------
``"simulate"`` (the default) runs every cache-missing job as a fresh
simulation.  ``"replay"`` instead groups the cache-missing jobs by their
:meth:`~repro.api.spec.ProfileSpec.workload_signature` — the identity of the
underlying simulation, ignoring tools, analysis model and knobs — records each
distinct workload **once** as a trace (:mod:`repro.replay`), and answers every
job in the group by offline replay.  A grid sweeping N tool/analysis-model
combinations over one workload therefore simulates once instead of N times,
while producing the same records.
"""

from __future__ import annotations

import tempfile
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

import repro
from repro.api.runner import (
    execute_payload,
    record_workload_trace,
    replay_payload,
)
from repro.api.spec import ProfileSpec
from repro.campaign.cache import ResultCache
from repro.campaign.progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressWriter,
    active_progress,
)
from repro.campaign.spec import EXECUTION_MODES, CampaignSpec, expand_jobs
from repro.campaign.store import ResultStore
from repro.core.serialization import json_sanitize
from repro.errors import ReproError
from repro.obs.metrics import DURATION_BUCKETS_S
from repro.obs.telemetry import active as _active_telemetry
from repro.replay.reader import TraceReader

#: Signature of a job runner: canonical job dict in, JSON-native record out.
JobRunner = Callable[[dict[str, object]], dict[str, object]]

_EXECUTORS = ("serial", "thread", "process")

#: Outcome statuses that carry a usable record.
_OK_STATUSES = ("ok", "cached")


class JobAttemptsError(ReproError):
    """Every attempt of one job failed.

    Carries each attempt's error (message and traceback) so a flaky job's
    intermediate failures are never silently discarded — only the final one
    used to be reported.  ``str()`` is the *last* attempt's message, keeping
    existing ``"boom" in outcome.error`` style matching working.
    """

    def __init__(self, errors: list[dict[str, object]]) -> None:
        self.errors = list(errors)
        last = str(self.errors[-1].get("error")) if self.errors else "unknown error"
        super().__init__(last)

    def __reduce__(self):
        # ProcessPoolExecutor pickles worker exceptions; the default reduce
        # would re-call __init__ with the formatted message, losing .errors.
        return (JobAttemptsError, (self.errors,))


def _attempt_error_entry(attempt: int, error: BaseException) -> dict[str, object]:
    return {
        "attempt": attempt,
        "error": f"{type(error).__name__}: {error}",
        "traceback": "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        ),
    }


def _errors_of(error: BaseException) -> list[dict[str, object]]:
    """Per-attempt error entries for an exhausted-retries (or one-shot) failure."""
    if isinstance(error, JobAttemptsError):
        return list(error.errors)
    return [_attempt_error_entry(1, error)]


def _error_detail(error: BaseException) -> str:
    """``Type: message`` for one failure, without double-prefixing wrappers."""
    if isinstance(error, JobAttemptsError):
        # str() is already the last attempt's "Type: message".
        return str(error)
    return f"{type(error).__name__}: {error}"


def _run_with_retries(payload: dict[str, object], retries: int, runner: JobRunner) -> dict[str, object]:
    """Invoke ``runner`` with up to ``retries`` re-attempts on exception.

    Returns the record augmented with the attempt count (plus
    ``attempt_errors`` when earlier attempts failed); raises
    :class:`JobAttemptsError` carrying every attempt's error once attempts
    are exhausted.
    """
    attempts = 0
    attempt_errors: list[dict[str, object]] = []
    while True:
        attempts += 1
        try:
            record = runner(payload)
        except Exception as error:
            attempt_errors.append(_attempt_error_entry(attempts, error))
            if attempts > retries:
                raise JobAttemptsError(attempt_errors) from error
        else:
            if not isinstance(record, dict):
                raise ReproError(
                    f"job runner must return a dict record, got {type(record).__name__}"
                )
            record.setdefault("attempts", attempts)
            if attempt_errors:
                # Succeeded after failures: keep what the retries swallowed.
                record.setdefault("attempt_errors", attempt_errors)
            return record


def _run_default_with_retries(payload: dict[str, object], retries: int) -> dict[str, object]:
    """Module-level (picklable) wrapper used by the process-pool executor."""
    return _run_with_retries(payload, retries, execute_payload)


@dataclass
class JobOutcome:
    """What happened to one job in one campaign run."""

    job: ProfileSpec
    digest: str
    status: str  # "ok" | "cached" | "failed" | "timeout"
    record: Optional[dict[str, object]] = None
    error: Optional[str] = None
    attempts: int = 1
    duration_s: float = 0.0
    #: Per-attempt error entries (``attempt`` / ``error`` / ``traceback``),
    #: covering *every* failed attempt — including the ones a later retry
    #: recovered from (``status == "ok"`` with a non-empty list).
    errors: list[dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True if the job produced a usable record."""
        return self.status in _OK_STATUSES

    @property
    def cached(self) -> bool:
        """True if the record came from the result cache."""
        return self.status == "cached"


@dataclass
class CampaignRunResult:
    """Aggregate outcome of one scheduler run."""

    name: str
    outcomes: list[JobOutcome] = field(default_factory=list)
    duration_s: float = 0.0
    #: Execution mode the run used ("simulate" or "replay").
    execution: str = "simulate"
    #: Distinct workloads actually simulated (and recorded) in replay mode;
    #: equals :attr:`executed` in simulate mode.
    workloads_recorded: int = 0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def executed(self) -> int:
        """Jobs that were actually simulated (cache misses that ran)."""
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    def records(self) -> list[dict[str, object]]:
        """Usable records from all successful outcomes."""
        return [o.record for o in self.outcomes if o.ok and o.record is not None]

    def failures(self) -> list[JobOutcome]:
        """Outcomes that did not produce a record."""
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> dict[str, object]:
        """JSON-native roll-up for CLI output."""
        return json_sanitize({
            "campaign": self.name,
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "execution": self.execution,
            "workloads_recorded": self.workloads_recorded,
            "duration_s": round(self.duration_s, 3),
            "failures": [
                {
                    "job": o.job.label(),
                    "status": o.status,
                    "error": o.error,
                    "attempts": o.attempts,
                    "errors": [str(e.get("error")) for e in o.errors],
                }
                for o in self.failures()
            ],
        })


class CampaignScheduler:
    """Runs campaign jobs over a worker pool with caching and isolation.

    Parameters
    ----------
    jobs:
        Worker-pool width (``--jobs N``); 1 with ``executor="serial"`` runs
        everything inline.
    executor:
        ``"thread"`` (default), ``"process"`` (true parallelism, requires the
        default picklable runner), or ``"serial"``.
    timeout_s:
        Per-job wall-clock budget.  A job exceeding it is recorded as
        ``"timeout"`` and the campaign moves on.
    retries:
        Re-attempts per job before recording a failure.
    cache / store:
        Optional result cache (digest-keyed reuse) and JSONL store (append
        per completed job).
    job_runner:
        Override the job execution function (tests inject stubs here).
        Ignored by the process executor, which always uses the default
        picklable runner, and by replay-mode execution.
    execution:
        ``"simulate"``, ``"replay"``, or ``None`` to honour the campaign
        spec's ``execution`` field (explicit job lists default to simulate).
        Replay mode runs inline (one recording then cheap in-memory replays
        per workload group): ``jobs``/``executor`` and ``timeout_s`` apply
        only to simulate-mode execution, while ``retries`` covers the
        recording step.  Jobs whose spec sets ``record_to`` are always
        simulated, even in replay mode — they need a live event stream to
        produce their trace artifact.
    trace_dir:
        Where replay-mode workload traces are written; defaults to a
        temporary directory discarded after the run.
    progress:
        Optional :class:`~repro.campaign.progress.ProgressWriter` streaming
        job lifecycle records (queued/started/retried/finished with cache
        hit/miss attribution) to a ``status.jsonl`` for ``pasta campaign
        watch``.  When omitted, each run uses the process-wide active bus
        (a no-op unless one was installed).
    """

    def __init__(
        self,
        jobs: int = 1,
        executor: str = "thread",
        timeout_s: Optional[float] = None,
        retries: int = 0,
        cache: Optional[ResultCache] = None,
        store: Optional[ResultStore] = None,
        job_runner: Optional[JobRunner] = None,
        version: Optional[str] = None,
        execution: Optional[str] = None,
        trace_dir: Union[str, Path, None] = None,
        progress: Union[ProgressWriter, NullProgress, None] = None,
    ) -> None:
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        if executor not in _EXECUTORS:
            raise ReproError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        if executor == "process" and job_runner is not None:
            raise ReproError("custom job runners are not picklable; use the thread executor")
        if execution is not None and execution not in EXECUTION_MODES:
            raise ReproError(
                f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
            )
        self.jobs = jobs
        self.executor = executor
        self.timeout_s = timeout_s
        self.retries = retries
        self.cache = cache
        self.store = store
        self.job_runner: JobRunner = job_runner or execute_payload
        self.version = version if version is not None else repro.__version__
        self.execution = execution
        self.trace_dir = trace_dir
        # Explicit writer wins; otherwise each run() picks up whatever bus is
        # active at that moment (the CLI's --status flag installs one).
        self.progress = progress
        self._progress: Union[ProgressWriter, NullProgress] = NULL_PROGRESS

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        spec: Union[CampaignSpec, Iterable[ProfileSpec]],
        name: Optional[str] = None,
    ) -> CampaignRunResult:
        """Run every job of ``spec`` and return per-job outcomes.

        Cached jobs are answered immediately; the rest execute on the worker
        pool.  Completed records are cached and appended to the store.
        """
        started = time.monotonic()
        campaign_name = name or (spec.name if isinstance(spec, CampaignSpec) else "adhoc")
        execution = self.execution or (
            spec.execution if isinstance(spec, CampaignSpec) else "simulate"
        )
        job_list = expand_jobs(spec)
        telemetry = _active_telemetry()
        telemetry.annotate(campaign=campaign_name, execution=execution)
        self._progress = (
            self.progress if self.progress is not None else active_progress()
        )
        self._progress.emit(
            "campaign", event="start", campaign=campaign_name,
            execution=execution, total=len(job_list), slots=self.jobs,
        )
        with telemetry.span(
            "campaign.run",
            campaign=campaign_name,
            execution=execution,
            executor=self.executor,
            jobs=self.jobs,
            total_jobs=len(job_list),
        ) as campaign_span:
            outcomes: dict[int, JobOutcome] = {}
            pending: list[tuple[int, ProfileSpec, str]] = []
            workloads_recorded = 0

            for index, job in enumerate(job_list):
                digest = job.digest(self.version)
                self._progress.emit(
                    "job", event="queued", index=index, job=job.label(),
                    digest=digest[:12],
                )
                # record_to is excluded from the digest (it cannot change the
                # reports), but a job that asks for a trace file wants that side
                # artifact produced — never answer it from the cache.
                use_cache = self.cache is not None and job.record_to is None
                cached_record = self.cache.get(digest) if use_cache else None
                if cached_record is not None:
                    telemetry.counter("campaign.cache_hits").inc()
                    self._record_outcome(outcomes, index, JobOutcome(
                        job=job, digest=digest, status="cached", record=cached_record
                    ), campaign_name)
                else:
                    if use_cache:
                        telemetry.counter("campaign.cache_misses").inc()
                    pending.append((index, job, digest))

            workloads_recorded = self._run_pending(
                pending, outcomes, campaign_name, execution
            )
            for status in ("ok", "cached", "failed", "timeout"):
                campaign_span.set_counter(
                    f"jobs_{status}",
                    sum(1 for o in outcomes.values() if o.status == status),
                )
        result = CampaignRunResult(
            name=campaign_name,
            outcomes=[outcomes[i] for i in range(len(job_list))],
            duration_s=time.monotonic() - started,
            execution=execution,
        )
        result.workloads_recorded = (
            workloads_recorded if execution == "replay" else result.executed
        )
        self._progress.emit(
            "campaign", event="end", campaign=campaign_name,
            duration_s=round(result.duration_s, 3), executed=result.executed,
            cached=result.cached, failed=result.failed,
        )
        return result

    def _run_pending(
        self,
        pending: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
        execution: str,
    ) -> int:
        """Execute the cache-missing jobs; returns the workloads recorded."""
        workloads_recorded = 0
        if pending and execution == "replay":
            # A job that asks for its own trace artifact needs a live event
            # stream to record — replaying the shared group trace would
            # complete it without ever writing the file.  Such jobs are
            # simulated (with the default runner, like the rest of replay
            # mode); everything else goes through record-once/replay-many.
            recordings = [entry for entry in pending if entry[1].record_to is not None]
            replayable = [entry for entry in pending if entry[1].record_to is None]
            for index, job, digest in recordings:
                self._emit_job(index, job, digest, "started")
                self._record_outcome(
                    outcomes, index,
                    self._run_one_inline(job, digest, runner=execute_payload),
                    campaign_name,
                )
            workloads_recorded = len(recordings)
            if replayable:
                workloads_recorded += self._run_replay(
                    replayable, outcomes, campaign_name
                )
        elif pending:
            # The inline path cannot interrupt a job, so any timeout budget
            # forces a (possibly single-worker) pool.
            inline = self.timeout_s is None and (
                self.executor == "serial" or (self.executor == "thread" and self.jobs == 1)
            )
            if inline:
                for index, job, digest in pending:
                    self._emit_job(index, job, digest, "started")
                    self._record_outcome(
                        outcomes, index, self._run_one_inline(job, digest), campaign_name
                    )
            else:
                self._run_pool(pending, outcomes, campaign_name)
        return workloads_recorded

    # ------------------------------------------------------------------ #
    # execution strategies
    # ------------------------------------------------------------------ #
    def _run_replay(
        self,
        pending: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
    ) -> int:
        """Record each distinct workload once, then replay it per job.

        Returns the number of workloads actually simulated.  Failure
        isolation matches the simulate path: a failed recording fails every
        job of its group (they have nothing to replay), a failed replay
        fails only its own job.  Execution is inline and serial — replays
        are in-memory and cheap, so the worker pool and its per-job timeout
        machinery are simulate-mode concerns (see the class docstring).
        """
        groups: dict[tuple[object, ...], list[tuple[int, ProfileSpec, str]]] = {}
        order: list[tuple[object, ...]] = []
        for index, job, digest in pending:
            try:
                # Instantiates the job's tools (to learn their fine-grained
                # needs), so an unknown tool name must fail this job alone.
                signature = job.workload_signature()
            except Exception as error:
                self._record_outcome(outcomes, index, JobOutcome(
                    job=job, digest=digest, status="failed",
                    error=_error_detail(error),
                ), campaign_name)
                continue
            if signature not in groups:
                groups[signature] = []
                order.append(signature)
            groups[signature].append((index, job, digest))

        recorded = 0
        with tempfile.TemporaryDirectory(prefix="pasta-traces-") as scratch:
            trace_root = Path(self.trace_dir) if self.trace_dir is not None else Path(scratch)
            trace_root.mkdir(parents=True, exist_ok=True)
            for group_index, signature in enumerate(order):
                members = groups[signature]
                base_payload = members[0][1].to_dict()
                trace_path = trace_root / f"workload-{group_index:04d}.pastatrace"
                started = time.monotonic()
                try:
                    summary = _run_with_retries(
                        base_payload, self.retries,
                        lambda payload: record_workload_trace(payload, trace_path),
                    )
                    summary.pop("attempts", None)
                except Exception as error:
                    duration = time.monotonic() - started
                    for index, job, digest in members:
                        self._record_outcome(outcomes, index, JobOutcome(
                            job=job, digest=digest, status="failed",
                            error=f"workload recording failed: "
                                  f"{_error_detail(error)}",
                            attempts=self.retries + 1,
                            duration_s=duration,
                            errors=_errors_of(error),
                        ), campaign_name)
                    continue
                recorded += 1
                # Decode the trace once; every job in the group replays the
                # same in-memory event list.
                reader = TraceReader(trace_path)
                events = list(reader.events())
                for index, job, digest in members:
                    self._emit_job(index, job, digest, "started")
                    job_started = time.monotonic()
                    try:
                        record = replay_payload(job.to_dict(), reader, summary,
                                                    events=events)
                    except Exception as error:
                        self._record_outcome(outcomes, index, JobOutcome(
                            job=job, digest=digest, status="failed",
                            error=f"replay failed: {_error_detail(error)}",
                            duration_s=time.monotonic() - job_started,
                            errors=_errors_of(error),
                        ), campaign_name)
                    else:
                        self._record_outcome(
                            outcomes, index,
                            self._ok_outcome(job, digest, record,
                                             time.monotonic() - job_started),
                            campaign_name,
                        )
        return recorded

    def _run_one_inline(
        self, job: ProfileSpec, digest: str, runner: Optional[JobRunner] = None
    ) -> JobOutcome:
        job_started = time.monotonic()
        try:
            record = _run_with_retries(job.to_dict(), self.retries,
                                       runner or self.job_runner)
        except Exception as error:
            return JobOutcome(
                job=job,
                digest=digest,
                status="failed",
                error=_error_detail(error),
                attempts=self.retries + 1,
                duration_s=time.monotonic() - job_started,
                errors=_errors_of(error),
            )
        return self._ok_outcome(job, digest, record, time.monotonic() - job_started)

    def _make_pool(self) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=self.jobs)
        return ThreadPoolExecutor(max_workers=self.jobs, thread_name_prefix="pasta-campaign")

    def _submit(self, pool: Executor, job: ProfileSpec) -> Future:
        payload = job.to_dict()
        if self.executor == "process":
            return pool.submit(_run_default_with_retries, payload, self.retries)
        return pool.submit(_run_with_retries, payload, self.retries, self.job_runner)

    def _wait_slice(self) -> Optional[float]:
        if self.timeout_s is None:
            return None
        return min(max(self.timeout_s / 4.0, 0.01), 0.5)

    def _run_pool(
        self,
        pending: list[tuple[int, ProfileSpec, str]],
        outcomes: dict[int, JobOutcome],
        campaign_name: str,
    ) -> None:
        # At most `slots` futures are in flight at once, so every submitted
        # future starts immediately on a free worker and its per-job clock
        # starts at submission.  A timed-out job's worker may be unkillable
        # (threads and busy processes can't be interrupted); its slot is
        # retired so later jobs never queue behind a hung worker, and the
        # final shutdown does not wait for abandoned jobs.
        pool = self._make_pool()
        queue = list(pending)
        in_flight: dict[Future, tuple[int, ProfileSpec, str, float]] = {}
        slots = self.jobs
        telemetry = _active_telemetry()
        queue_depth = telemetry.gauge("campaign.queue_depth")
        in_flight_gauge = telemetry.gauge("campaign.in_flight")
        try:
            while queue or in_flight:
                while queue and len(in_flight) < slots:
                    index, job, digest = queue.pop(0)
                    self._emit_job(index, job, digest, "started")
                    in_flight[self._submit(pool, job)] = (index, job, digest, time.monotonic())
                queue_depth.set(len(queue))
                in_flight_gauge.set(len(in_flight))
                if not in_flight:
                    break  # every slot retired by timeouts; queue drains below
                done, _ = wait(
                    set(in_flight), timeout=self._wait_slice(), return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future in done:
                    index, job, digest, started = in_flight.pop(future)
                    self._record_outcome(
                        outcomes, index,
                        self._outcome_from_future(future, job, digest, now - started),
                        campaign_name,
                    )
                if self.timeout_s is None:
                    continue
                for future in list(in_flight):
                    index, job, digest, started = in_flight[future]
                    if now - started <= self.timeout_s:
                        continue
                    del in_flight[future]
                    if not future.cancel():
                        slots -= 1  # running and unkillable: retire its worker
                    self._record_outcome(outcomes, index, JobOutcome(
                        job=job,
                        digest=digest,
                        status="timeout",
                        error=f"job exceeded timeout of {self.timeout_s}s",
                        duration_s=now - started,
                    ), campaign_name)
            for index, job, digest in queue:
                self._record_outcome(outcomes, index, JobOutcome(
                    job=job,
                    digest=digest,
                    status="failed",
                    error="job never started: all workers lost to timed-out jobs",
                ), campaign_name)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _outcome_from_future(
        self, future: Future, job: ProfileSpec, digest: str, duration_s: float
    ) -> JobOutcome:
        try:
            record = future.result(timeout=0)
        except FutureTimeoutError:
            return JobOutcome(
                job=job, digest=digest, status="timeout",
                error=f"job exceeded timeout of {self.timeout_s}s",
                duration_s=duration_s,
            )
        except Exception as error:
            detail = _error_detail(error)
            if not str(error):
                detail = "".join(traceback.format_exception_only(type(error), error)).strip()
            return JobOutcome(
                job=job, digest=digest, status="failed", error=detail,
                attempts=self.retries + 1, duration_s=duration_s,
                errors=_errors_of(error),
            )
        return self._ok_outcome(job, digest, record, duration_s)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def _emit_job(
        self, index: int, job: ProfileSpec, digest: str, event: str
    ) -> None:
        """One job lifecycle record on the progress stream."""
        self._progress.emit(
            "job", event=event, index=index, job=job.label(), digest=digest[:12]
        )

    def _ok_outcome(
        self, job: ProfileSpec, digest: str, record: dict[str, object], duration_s: float
    ) -> JobOutcome:
        attempts = int(record.get("attempts", 1))  # type: ignore[arg-type]
        record = dict(record)
        record["digest"] = digest
        record["version"] = self.version
        attempt_errors = record.get("attempt_errors")
        return JobOutcome(
            job=job, digest=digest, status="ok", record=record,
            attempts=attempts, duration_s=duration_s,
            errors=list(attempt_errors) if isinstance(attempt_errors, list) else [],
        )

    def _record_outcome(
        self,
        outcomes: dict[int, JobOutcome],
        index: int,
        outcome: JobOutcome,
        campaign_name: str,
    ) -> None:
        """Record one finished job and persist it immediately.

        Cache writes and store appends happen per job, as each completes, so
        an interrupted campaign keeps everything it already simulated.
        """
        outcomes[index] = outcome
        # Re-attempts beyond the first try: a success after N failures retried
        # N times; a failure's final attempt was not itself a retry.
        retries = len(outcome.errors) if outcome.ok else max(0, len(outcome.errors) - 1)
        for entry in outcome.errors[:retries]:
            self._progress.emit(
                "job", event="retried", index=index, job=outcome.job.label(),
                digest=outcome.digest[:12], attempt=entry.get("attempt"),
                error=entry.get("error"),
            )
        self._progress.emit(
            "job", event="finished", index=index, job=outcome.job.label(),
            digest=outcome.digest[:12], status=outcome.status,
            cache_hit=outcome.cached, duration_s=round(outcome.duration_s, 6),
            attempts=outcome.attempts, error=outcome.error,
        )
        telemetry = _active_telemetry()
        if telemetry.enabled:
            # One synthetic lifecycle span per job, timed by the scheduler:
            # works identically for inline, thread-pool and process-pool jobs
            # (pool workers cannot emit into this process's tracer).
            telemetry.record_span(
                "campaign.job",
                int(outcome.duration_s * 1e9),
                attrs={
                    "campaign": campaign_name,
                    "job": outcome.job.label(),
                    "digest": outcome.digest[:12],
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                },
                counters={"retried": retries},
                status="ok" if outcome.ok else "error",
                error=outcome.error,
            )
            telemetry.counter(f"campaign.jobs_{outcome.status}").inc()
            telemetry.counter("campaign.retries").inc(retries)
            if outcome.status != "cached":
                telemetry.histogram("campaign.job_s", DURATION_BUCKETS_S).observe(
                    outcome.duration_s
                )
        if outcome.status == "ok" and outcome.record is not None and self.cache is not None:
            cached = outcome.record
            job_payload = cached.get("job")
            # The digest ignores record_to, so this entry may later answer a
            # non-recording twin: cache the canonical payload, not the trace
            # destination (the result store keeps the true payload).
            if isinstance(job_payload, dict) and job_payload.get("record_to") is not None:
                cached = dict(cached)
                cached["job"] = {k: v for k, v in job_payload.items() if k != "record_to"}
            self.cache.put(outcome.digest, cached)
        if self.store is None:
            return
        if outcome.ok and outcome.record is not None:
            stored = dict(outcome.record)
            stored["campaign"] = campaign_name
            stored["cache_hit"] = outcome.cached
            self.store.append(stored)
        else:
            self.store.append({
                "campaign": campaign_name,
                "job": outcome.job.to_dict(),
                "digest": outcome.digest,
                "version": self.version,
                "status": outcome.status,
                "error": outcome.error,
                "attempts": outcome.attempts,
                "errors": outcome.errors,
            })


def run_campaign(
    spec: Union[CampaignSpec, Iterable[ProfileSpec]],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    store_path: Optional[str] = None,
    **scheduler_kwargs: object,
) -> CampaignRunResult:
    """One-call convenience: build a scheduler and run ``spec``."""
    scheduler = CampaignScheduler(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache_dir else None,
        store=ResultStore(store_path) if store_path else None,
        **scheduler_kwargs,  # type: ignore[arg-type]
    )
    return scheduler.run(spec)
