"""Declarative campaign specifications and grid expansion.

A *campaign* is the batched equivalent of one ``pasta profile`` invocation:
instead of profiling a single (model, device, tool) combination, the user
declares axes — models x devices x modes x tool sets x analysis models x knob
overrides — and the spec expands the cartesian product into concrete
:class:`~repro.api.spec.ProfileSpec` jobs, exactly the grids behind the
paper's Figures 7-15 and Table 5.  A campaign is therefore *campaign
metadata* (name, execution mode, the axes) over the same one spec type that
drives live runs, recording and replay; each job's
:meth:`~repro.api.spec.ProfileSpec.digest` (its canonical serialization
salted with the package version) is the result-cache key.

Specs are plain data: loadable from JSON, hashable into stable content
digests, and picklable for the process-pool scheduler.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.api.spec import (
    KnobValue,
    ParallelismSpec,
    ProfileSpec,
    RUN_MODES,
    normalize_knobs,
    normalize_parallelism,
)
from repro.core.serialization import json_sanitize
from repro.errors import ReproError

#: How a campaign executes its jobs: fresh simulation per job, or one recorded
#: simulation per distinct workload with per-job offline replay.
EXECUTION_MODES = ("simulate", "replay")


def _as_toolsets(tools: Optional[Sequence[Union[str, Sequence[str]]]]) -> list[tuple[str, ...]]:
    """Normalise the spec's ``tools`` axis into a list of tool groups.

    Each element is either a tool name (profiled on its own) or a list of
    names attached to one session together.  An empty axis means one
    overhead-only job per grid cell.
    """
    if not tools:
        return [()]
    out: list[tuple[str, ...]] = []
    for entry in tools:
        if isinstance(entry, str):
            out.append((entry,))
        else:
            group = tuple(str(name) for name in entry)
            if not group:
                raise ReproError("tool groups must not be empty lists")
            out.append(group)
    return out


@dataclass
class CampaignSpec:
    """A declarative grid of profiling jobs.

    The cartesian product ``models x devices x modes x tools x analysis_models
    x backends x knob_sweep`` is expanded by :meth:`expand` into
    :class:`ProfileSpec` jobs; ``extra_jobs`` adds hand-written one-offs
    outside the grid.
    """

    name: str
    models: list[str] = field(default_factory=list)
    devices: list[str] = field(default_factory=lambda: ["a100"])
    modes: list[str] = field(default_factory=lambda: ["inference"])
    #: Tool axis: each entry is one tool name or one group of names.
    tools: list[Union[str, list[str]]] = field(default_factory=list)
    analysis_models: list[str] = field(default_factory=lambda: ["gpu_resident"])
    backends: list[Optional[str]] = field(default_factory=lambda: [None])
    iterations: int = 1
    batch_size: Optional[int] = None
    fine_grained: bool = False
    #: Knob sweep: each entry is one knob-override dict applied to the grid.
    knob_sweep: list[dict[str, KnobValue]] = field(default_factory=lambda: [{}])
    #: Parallelism axis: each entry is None (single-GPU), a strategy name
    #: (``"tp"``), or a :class:`ParallelismSpec` dict — swept like any other
    #: axis.  Parallel cells train, so pair this axis with ``modes:
    #: ["train"]``.
    parallelisms: list[Union[ParallelismSpec, dict, str, None]] = field(
        default_factory=lambda: [None]
    )
    extra_jobs: list[ProfileSpec] = field(default_factory=list)
    #: ``"simulate"`` runs every job as a fresh simulation; ``"replay"``
    #: records each distinct workload once and replays it per job (tool set /
    #: analysis model / knob combination) — see the campaign scheduler.
    execution: str = "simulate"

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("CampaignSpec.name must be non-empty")
        if self.execution not in EXECUTION_MODES:
            raise ReproError(
                f"CampaignSpec.execution must be one of {EXECUTION_MODES}, "
                f"got {self.execution!r}"
            )
        if not self.models and not self.extra_jobs:
            raise ReproError("CampaignSpec needs at least one model or extra job")
        if self.models:
            # An empty multiplier axis would silently expand to zero jobs —
            # a typo'd spec must fail loudly, not report a successful no-op.
            for axis in ("devices", "modes", "analysis_models", "backends"):
                if not getattr(self, axis):
                    raise ReproError(f"CampaignSpec.{axis} must not be empty")
        for mode in self.modes:
            if mode not in RUN_MODES:
                raise ReproError(f"campaign mode must be one of {RUN_MODES}, got {mode!r}")
        if not self.knob_sweep:
            self.knob_sweep = [{}]
        if not self.parallelisms:
            self.parallelisms = [None]
        # Normalise (and validate) every axis entry up front so a typo'd
        # strategy fails at spec load, not mid-campaign.
        self.parallelisms = [normalize_parallelism(p) for p in self.parallelisms]

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #
    def expand(self) -> list[ProfileSpec]:
        """Expand the grid into concrete jobs (deduplicated, order-stable)."""
        jobs: list[ProfileSpec] = []
        seen: set[ProfileSpec] = set()
        toolsets = _as_toolsets(self.tools)
        grid = product(
            self.models, self.devices, self.modes, toolsets,
            self.analysis_models, self.backends, self.knob_sweep,
            self.parallelisms,
        )
        for model, device, mode, toolset, analysis_model, backend, knobs, parallelism in grid:
            job = ProfileSpec(
                model=model,
                device=device,
                mode=mode,
                tools=toolset,
                iterations=self.iterations,
                batch_size=self.batch_size,
                backend=backend,
                analysis_model=analysis_model,
                fine_grained=self.fine_grained,
                knobs=normalize_knobs(knobs),
                parallelism=parallelism,
            )
            if job not in seen:
                seen.add(job)
                jobs.append(job)
        for job in self.extra_jobs:
            if job not in seen:
                seen.add(job)
                jobs.append(job)
        return jobs

    def job_count(self) -> int:
        """Number of unique jobs the grid expands to."""
        return len(self.expand())

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """Plain JSON-native dict (inverse of :meth:`from_dict`)."""
        return json_sanitize({
            "name": self.name,
            "models": list(self.models),
            "devices": list(self.devices),
            "modes": list(self.modes),
            "tools": list(self.tools),
            "analysis_models": list(self.analysis_models),
            "backends": list(self.backends),
            "iterations": self.iterations,
            "batch_size": self.batch_size,
            "fine_grained": self.fine_grained,
            "knob_sweep": list(self.knob_sweep),
            "parallelisms": [
                None if p is None else p.to_dict() for p in self.parallelisms  # type: ignore[union-attr]
            ],
            "extra_jobs": [job.to_dict() for job in self.extra_jobs],
            "execution": self.execution,
        })

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        """Build a campaign from a plain dict, validating field names."""
        known = {
            "name", "models", "devices", "modes", "tools", "analysis_models",
            "backends", "iterations", "batch_size", "fine_grained",
            "knob_sweep", "parallelisms", "extra_jobs", "execution",
        }
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown CampaignSpec fields: {sorted(unknown)}")
        if "name" not in data:
            raise ReproError("CampaignSpec requires a 'name'")
        kwargs: dict[str, object] = {"name": str(data["name"])}
        for key in ("models", "devices", "modes", "tools", "analysis_models",
                    "backends", "knob_sweep", "parallelisms"):
            if key in data:
                value = data[key]
                if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
                    raise ReproError(f"CampaignSpec.{key} must be a list")
                kwargs[key] = list(value)
        if "iterations" in data:
            kwargs["iterations"] = int(data["iterations"])  # type: ignore[arg-type]
        if data.get("batch_size") is not None:
            kwargs["batch_size"] = int(data["batch_size"])  # type: ignore[arg-type]
        if "fine_grained" in data:
            kwargs["fine_grained"] = bool(data["fine_grained"])
        if "extra_jobs" in data:
            kwargs["extra_jobs"] = [ProfileSpec.from_dict(j) for j in data["extra_jobs"]]  # type: ignore[union-attr]
        if "execution" in data:
            kwargs["execution"] = str(data["execution"])
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse a campaign from a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"campaign spec is not valid JSON: {error}") from error
        if not isinstance(data, Mapping):
            raise ReproError("campaign spec JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a campaign spec from a JSON file."""
        path = Path(path)
        if not path.exists():
            raise ReproError(f"campaign spec file not found: {path}")
        return cls.from_json(path.read_text())

    def save(self, path: Union[str, Path]) -> None:
        """Write the spec to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")


def expand_jobs(spec: Union[CampaignSpec, Iterable[ProfileSpec]]) -> list[ProfileSpec]:
    """Accept either a campaign or an explicit job list and return jobs."""
    if isinstance(spec, CampaignSpec):
        return spec.expand()
    return list(spec)


def __getattr__(name: str):
    if name == "JobSpec":
        warnings.warn(
            "JobSpec is deprecated; a campaign job is now a "
            "repro.api.ProfileSpec (same fields, plus an optional "
            "record_to)",
            DeprecationWarning,
            stacklevel=2,
        )
        return ProfileSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
