"""File-based job leases: claim, heartbeat, stale takeover, sharding.

N independent campaign schedulers (separate processes, or separate hosts on
a shared filesystem) coordinate over nothing but the campaign directory.
The protocol is deliberately primitive — no server, no locks held across
calls, every file operation atomic at the POSIX level:

* **claim** — ``open(O_CREAT | O_EXCL)`` of ``<root>/<digest>.lease``.
  Exactly one worker wins the create; the file body records the owner
  (worker id, pid, host, run id) and two timestamps.
* **heartbeat** — the holder periodically rewrites the lease (write-to-temp
  + ``os.replace``) with a fresh ``heartbeat_unix``.  A lease whose
  heartbeat is older than ``ttl_s`` is *stale*: its owner is presumed dead
  (``kill -9`` leaves no tombstone, only silence).
* **takeover** — a worker that finds a stale lease unlinks it and re-runs
  the ``O_EXCL`` claim.  Two stealers may both unlink, but only one wins
  the create; the loser observes a fresh foreign lease and backs off.
* **release** — the holder unlinks its lease once the job's result is
  safely in the store/cache.

Sharding uses the job digest itself — :func:`shard_of` maps a digest's hex
prefix onto ``count`` buckets, so every worker derives the same partition
with no communication.  A worker runs its own shard first, then
work-steals any cell whose lease is absent or stale (see the scheduler's
steal phase).

Lease transitions are mirrored as telemetry instant events
(``lease.claim`` / ``lease.takeover`` / ``lease.release``) so a run's
timeline shows who owned what when.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.serialization import stable_json_dumps
from repro.errors import ReproError
from repro.obs.telemetry import active as _active_telemetry

#: Suffix of lease files inside the lease directory.
LEASE_SUFFIX = ".lease"

#: Default seconds-without-heartbeat before a lease counts as stale.
DEFAULT_TTL_S = 30.0


def shard_of(digest: str, count: int) -> int:
    """Deterministic shard index of a job digest under ``count`` shards."""
    if count < 1:
        raise ReproError(f"shard count must be >= 1, got {count}")
    return int(digest[:8], 16) % count


@dataclass(frozen=True)
class LeaseInfo:
    """The decoded body of one lease file."""

    digest: str
    owner: str
    pid: int
    host: str
    claimed_unix: float
    heartbeat_unix: float

    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat."""
        return max(0.0, (time.time() if now is None else now) - self.heartbeat_unix)


class LeaseManager:
    """One worker's handle on a shared lease directory."""

    def __init__(
        self,
        root: Union[str, Path],
        owner: Optional[str] = None,
        ttl_s: float = DEFAULT_TTL_S,
    ) -> None:
        if ttl_s <= 0:
            raise ReproError(f"lease ttl_s must be > 0, got {ttl_s}")
        self.root = Path(root)
        self.ttl_s = ttl_s
        self.host = socket.gethostname()
        self.owner = owner or f"{self.host}:{os.getpid()}:{uuid.uuid4().hex[:6]}"
        #: Digests this manager currently holds a lease on.
        self.held: set[str] = set()
        self.takeovers = 0

    # ------------------------------------------------------------------ #
    # paths + decoding
    # ------------------------------------------------------------------ #
    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}{LEASE_SUFFIX}"

    def holder(self, digest: str) -> Optional[LeaseInfo]:
        """Decode the current lease for ``digest`` (None if absent/corrupt).

        A corrupt lease file (a holder killed mid-rewrite) decodes to None,
        which callers treat like a stale lease: safe to take over.
        """
        try:
            data = json.loads(self.path_for(digest).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict):
            return None
        try:
            return LeaseInfo(
                digest=str(data["digest"]),
                owner=str(data["owner"]),
                pid=int(data["pid"]),
                host=str(data["host"]),
                claimed_unix=float(data["claimed_unix"]),
                heartbeat_unix=float(data["heartbeat_unix"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def is_stale(self, info: Optional[LeaseInfo], now: Optional[float] = None) -> bool:
        """True when a lease is expired (or undecodable) and may be taken."""
        if info is None:
            return True
        return info.age_s(now) > self.ttl_s

    # ------------------------------------------------------------------ #
    # the protocol
    # ------------------------------------------------------------------ #
    def _body(self, digest: str, claimed_unix: Optional[float] = None) -> str:
        now = round(time.time(), 6)
        return stable_json_dumps({
            "digest": digest,
            "owner": self.owner,
            "pid": os.getpid(),
            "host": self.host,
            "claimed_unix": claimed_unix if claimed_unix is not None else now,
            "heartbeat_unix": now,
        })

    def claim(self, digest: str, steal_stale: bool = True) -> bool:
        """Try to claim ``digest``; returns True when this worker now holds it.

        A fresh foreign lease loses the claim; a stale (or corrupt) one is
        taken over when ``steal_stale`` is set.  Re-claiming a digest this
        manager already holds is a cheap True.
        """
        if digest in self.held:
            return True
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(digest)
        if self._try_create(path, digest):
            self._note("lease.claim", digest)
            return True
        info = self.holder(digest)
        if not steal_stale or not self.is_stale(info):
            return False
        # Stale: unlink the corpse and re-run the one-winner O_EXCL create.
        # A racing stealer may beat us to either step; both outcomes are a
        # clean loss (someone live owns the lease now).
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            return False
        if self._try_create(path, digest):
            self.takeovers += 1
            self._note("lease.takeover", digest,
                       previous_owner=info.owner if info else None)
            return True
        return False

    def _try_create(self, path: Path, digest: str) -> bool:
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(self._body(digest))
                fh.flush()
        except BaseException:
            try:
                path.unlink()
            except OSError:
                pass
            raise
        self.held.add(digest)
        return True

    def heartbeat(self, digest: str) -> bool:
        """Refresh a held lease's heartbeat; False if ownership was lost.

        The rewrite is write-to-temp + ``os.replace`` so a reader never sees
        a torn lease body from a live holder.
        """
        if digest not in self.held:
            return False
        info = self.holder(digest)
        if info is None or info.owner != self.owner:
            # Someone took the lease over (we were presumed dead).  Stop
            # touching it — the thief owns the job now.
            self.held.discard(digest)
            return False
        path = self.path_for(digest)
        tmp = path.with_suffix(path.suffix + f".hb-{os.getpid()}")
        try:
            tmp.write_text(self._body(digest, claimed_unix=info.claimed_unix),
                           encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True

    def heartbeat_all(self) -> int:
        """Refresh every held lease; returns how many are still owned."""
        return sum(1 for digest in list(self.held) if self.heartbeat(digest))

    def release(self, digest: str) -> bool:
        """Drop a held lease (after the result is durably stored)."""
        if digest not in self.held:
            return False
        self.held.discard(digest)
        info = self.holder(digest)
        if info is not None and info.owner != self.owner:
            return False  # taken over; the new owner's lease stays
        try:
            self.path_for(digest).unlink()
        except OSError:
            return False
        self._note("lease.release", digest)
        return True

    def release_all(self) -> int:
        """Drop every held lease (end-of-run cleanup)."""
        return sum(1 for digest in list(self.held) if self.release(digest))

    def active_leases(self) -> dict[str, LeaseInfo]:
        """Every decodable lease in the directory, keyed by digest."""
        if not self.root.exists():
            return {}
        out: dict[str, LeaseInfo] = {}
        for path in sorted(self.root.glob(f"*{LEASE_SUFFIX}")):
            info = self.holder(path.name[: -len(LEASE_SUFFIX)])
            if info is not None:
                out[info.digest] = info
        return out

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _note(self, name: str, digest: str, **attrs: object) -> None:
        telemetry = _active_telemetry()
        if telemetry.enabled:
            telemetry.event(name, digest=digest[:12], owner=self.owner, **attrs)
            telemetry.counter(name.replace(".", "_") + "s").inc()


__all__ = [
    "DEFAULT_TTL_S",
    "LEASE_SUFFIX",
    "LeaseInfo",
    "LeaseManager",
    "shard_of",
]
