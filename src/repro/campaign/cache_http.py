"""HTTP-backed campaign result cache — PR 8's "shared filesystem" closed out.

The distributed campaign fabric shares results through a
:class:`~repro.campaign.cache.ResultCache` directory, which requires every
worker to mount the same filesystem.  :class:`HttpResultCache` removes that
requirement: it implements the same :class:`~repro.campaign.cache.CacheBackend`
contract against a ``pasta serve`` daemon's ``/v1/cache`` endpoints, so
``pasta campaign run --cache-url http://daemon:8080`` shares one
content-addressed cache across machines.

Deliberately stdlib-and-self-contained (``urllib`` against the wire
protocol, no import of :mod:`repro.serve`): the campaign layer stays below
the service layer, and a daemon is just another place bytes live.

Parity with the file store (asserted by the shared conformance test):

* ``get`` of an absent digest → ``None`` miss;
* ``get`` of a *corrupt* entry → ``None`` miss, with the entry quarantined —
  the daemon's own file store does the quarantining, the client just sees
  the honest miss;
* ``put`` + ``get`` round-trips records exactly (canonical JSON both ways);
* hit/miss/write counters in :class:`~repro.campaign.cache.CacheStats`.

Transport failures raise :class:`~repro.errors.ReproError` loudly — a
mistyped ``--cache-url`` must kill the campaign at the first job, not
silently degrade every lookup into a miss and re-simulate the world.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Optional

from repro.campaign.cache import CacheStats
from repro.errors import ReproError


@dataclass
class HttpResultCache:
    """Digest-keyed result cache speaking a ``pasta serve`` daemon's API."""

    url: str
    timeout: float = 30.0
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.url = self.url.rstrip("/")
        if not self.url.startswith(("http://", "https://")):
            raise ReproError(
                f"cache URL must start with http:// or https://, got {self.url!r}"
            )

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _open(self, method: str, digest: str, body: Optional[bytes] = None):
        headers = {"Content-Type": "application/json"} if body is not None else {}
        request = urllib.request.Request(
            f"{self.url}/v1/cache/{digest}", data=body, method=method,
            headers=headers,
        )
        return urllib.request.urlopen(request, timeout=self.timeout)

    def _fetch(self, digest: str) -> Optional[dict[str, object]]:
        """GET one entry; absent (404) and corrupt responses are ``None``."""
        try:
            with self._open("GET", digest) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            if error.code == 404:
                return None
            raise ReproError(
                f"cache daemon at {self.url} refused GET {digest}: "
                f"HTTP {error.code}"
            ) from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach cache daemon at {self.url}: {error.reason}"
            ) from None
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # A record torn in transit: treat as a miss, same as the file
            # store treats a torn entry (the daemon quarantines its side).
            return None
        return record if isinstance(record, dict) else None

    # ------------------------------------------------------------------ #
    # CacheBackend surface
    # ------------------------------------------------------------------ #
    def get(self, digest: str) -> Optional[dict[str, object]]:
        """Cached record for ``digest``, or ``None``."""
        record = self._fetch(digest)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(self, digest: str, record: dict[str, object]) -> str:
        """Store ``record`` under ``digest`` on the daemon."""
        body = json.dumps(record).encode("utf-8")
        try:
            with self._open("PUT", digest, body) as response:
                response.read()
        except urllib.error.HTTPError as error:
            raise ReproError(
                f"cache daemon at {self.url} refused PUT {digest}: "
                f"HTTP {error.code}"
            ) from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach cache daemon at {self.url}: {error.reason}"
            ) from None
        self.stats.writes += 1
        return f"{self.url}/v1/cache/{digest}"

    def contains(self, digest: str) -> bool:
        """True if the daemon currently has ``digest`` (stats untouched)."""
        return self._fetch(digest) is not None
