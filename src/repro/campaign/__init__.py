"""Campaign engine: batched, cached, parallel profiling sweeps.

The paper's evaluation is a grid — models x devices x tools x knobs — and
this package turns the repo's one-shot ``pasta profile`` run into a
throughput service over such grids.  A campaign is campaign metadata (name,
execution mode, axes) over the same :class:`~repro.api.spec.ProfileSpec`
that drives live runs, recording and replay:

* :mod:`repro.campaign.spec` — declarative campaign/job specs + grid expansion;
* :mod:`repro.campaign.scheduler` — worker-pool execution with per-job
  retries, timeouts and failure isolation;
* :mod:`repro.campaign.cache` — content-addressed result cache (identical
  specs never re-simulate) and the :class:`CacheBackend` contract;
* :mod:`repro.campaign.cache_http` — the same cache served by a ``pasta
  serve`` daemon over HTTP (workers without a shared filesystem);
* :mod:`repro.campaign.store` — append-only JSONL record store;
* :mod:`repro.campaign.leases` — file-based job leases (claim / heartbeat /
  stale takeover) and digest sharding for the distributed campaign fabric;
* :mod:`repro.campaign.faults` — deterministic fault injection
  (``PASTA_FAULTS``) for crash/chaos drills;
* :mod:`repro.campaign.progress` — live job-lifecycle streaming to
  ``status.jsonl`` (the ``pasta campaign watch`` feed);
* :mod:`repro.campaign.aggregate` — roll-ups, analysis-model comparisons and
  baseline-vs-current regression diffs;
* :mod:`repro.campaign.cli` — the ``pasta-campaign`` command.
"""

from repro.campaign.aggregate import (
    diff_records,
    overhead_model_comparison,
    render_table,
    rollup,
)
from repro.campaign.cache import CacheBackend, CacheStats, ResultCache
from repro.campaign.cache_http import HttpResultCache
from repro.campaign.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    activate_faults,
    active_faults,
    deactivate_faults,
    faults_scope,
)
from repro.campaign.leases import LeaseInfo, LeaseManager, shard_of
from repro.campaign.progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressWriter,
    active_progress,
    progress_scope,
    read_status,
    render_status,
    snapshot_status,
    status_path,
)
from repro.campaign.scheduler import (
    CampaignRunResult,
    CampaignScheduler,
    JobOutcome,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, expand_jobs
from repro.campaign.store import ResultStore


def __getattr__(name: str):
    if name == "JobSpec":  # deprecated alias; warns via repro.campaign.spec
        from repro.campaign import spec as _spec

        return _spec.JobSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CacheBackend",
    "CacheStats",
    "CampaignRunResult",
    "CampaignScheduler",
    "CampaignSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "HttpResultCache",
    "InjectedFault",
    "JobOutcome",
    "JobSpec",
    "LeaseInfo",
    "LeaseManager",
    "NULL_PROGRESS",
    "NullProgress",
    "ProgressWriter",
    "ResultCache",
    "ResultStore",
    "activate_faults",
    "active_faults",
    "active_progress",
    "deactivate_faults",
    "diff_records",
    "faults_scope",
    "expand_jobs",
    "overhead_model_comparison",
    "progress_scope",
    "read_status",
    "render_status",
    "render_table",
    "rollup",
    "run_campaign",
    "shard_of",
    "snapshot_status",
    "status_path",
]
