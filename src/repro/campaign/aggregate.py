"""Roll-ups and regression diffs over campaign result records.

Turns the flat JSONL record stream into the tables the paper's evaluation
actually presents: per-model / per-device summaries (Figures 7, 9, Table 5),
overhead-ratio comparisons between the GPU-resident and CPU-side analysis
models (Figures 9/10), and baseline-vs-current regression diffs so a campaign
can gate a change the way CI gates a test suite.
"""

from __future__ import annotations

from statistics import fmean
from typing import Iterable, Optional, Sequence

from repro.core.serialization import json_sanitize
from repro.errors import ReproError

#: Numeric metrics extracted from each record for roll-ups and diffs.
_METRIC_PATHS: dict[str, tuple[str, ...]] = {
    "kernel_launches": ("summary", "kernel_launches"),
    "total_kernel_time_ns": ("summary", "total_kernel_time_ns"),
    "peak_allocated_bytes": ("summary", "peak_allocated_bytes"),
    "normalized_overhead": ("reports", "overhead", "normalized_overhead"),
    "profiled_total_ns": ("reports", "overhead", "total_ns"),
}

#: Job axes a roll-up can group by.
GROUP_FIELDS = ("model", "device", "mode", "analysis_model", "backend", "tools")


def _dig(record: dict, path: tuple[str, ...]) -> Optional[float]:
    node: object = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def successful_records(records: Iterable[dict]) -> list[dict]:
    """Records that carry results (``status == "ok"``)."""
    return [r for r in records if r.get("status") == "ok"]


def metric_values(record: dict) -> dict[str, float]:
    """All known metrics present in one record."""
    out = {}
    for metric, path in _METRIC_PATHS.items():
        value = _dig(record, path)
        if value is not None:
            out[metric] = value
    return out


def _group_key(record: dict, by: str) -> str:
    job = record.get("job") or {}
    value = job.get(by) if isinstance(job, dict) else None
    if by == "tools":
        value = "+".join(value) if isinstance(value, list) and value else "overhead-only"
    return str(value)


def rollup(records: Iterable[dict], by: str = "model") -> list[dict[str, object]]:
    """Aggregate records along one job axis.

    Returns one row per group with the job count and, for each metric, the
    mean / min / max across the group — the shape of the paper's per-model
    and per-device tables.
    """
    if by not in GROUP_FIELDS:
        raise ReproError(f"cannot group by {by!r}; choose one of {GROUP_FIELDS}")
    groups: dict[str, list[dict[str, float]]] = {}
    for record in successful_records(records):
        groups.setdefault(_group_key(record, by), []).append(metric_values(record))
    rows = []
    for key in sorted(groups):
        values = groups[key]
        row: dict[str, object] = {by: key, "jobs": len(values)}
        for metric in _METRIC_PATHS:
            series = [v[metric] for v in values if metric in v]
            if not series:
                continue
            row[f"{metric}_mean"] = fmean(series)
            row[f"{metric}_min"] = min(series)
            row[f"{metric}_max"] = max(series)
        rows.append(row)
    return rows


def overhead_model_comparison(records: Iterable[dict]) -> list[dict[str, object]]:
    """Per-device overhead ratio between the two analysis models.

    For every device that ran jobs under both ``gpu_resident`` and
    ``cpu_side`` analysis, reports the mean normalized overhead of each and
    the CPU/GPU ratio — Figure 9's headline "how much does the GPU-resident
    reducer save" number, recovered from campaign records.
    """
    per_device: dict[str, dict[str, list[float]]] = {}
    for record in successful_records(records):
        job = record.get("job") or {}
        if not isinstance(job, dict):
            continue
        overhead = _dig(record, _METRIC_PATHS["normalized_overhead"])
        if overhead is None:
            continue
        device = str(job.get("device"))
        model = str(job.get("analysis_model", "gpu_resident"))
        per_device.setdefault(device, {}).setdefault(model, []).append(overhead)
    rows = []
    for device in sorted(per_device):
        by_model = per_device[device]
        row: dict[str, object] = {"device": device}
        for model, series in sorted(by_model.items()):
            row[f"{model}_overhead_mean"] = fmean(series)
        gpu = by_model.get("gpu_resident")
        cpu = by_model.get("cpu_side")
        if gpu and cpu and fmean(gpu) > 0:
            row["cpu_to_gpu_ratio"] = fmean(cpu) / fmean(gpu)
        rows.append(row)
    return rows


def _job_identity(record: dict) -> Optional[str]:
    """Version-independent identity of a record's job (for cross-run diffs)."""
    from repro.core.serialization import content_digest

    job = record.get("job")
    if not isinstance(job, dict):
        return None
    return content_digest(job)


def diff_records(
    baseline: Iterable[dict],
    current: Iterable[dict],
    threshold: float = 0.05,
    metrics: Sequence[str] = ("total_kernel_time_ns", "normalized_overhead", "peak_allocated_bytes"),
) -> dict[str, object]:
    """Compare two record sets job-by-job and flag regressions.

    Jobs are matched by their version-independent spec identity (the latest
    record per job on each side wins).  A metric regresses when
    ``current > baseline * (1 + threshold)``.  Returns matched per-job rows
    plus the jobs that exist on only one side.
    """
    for metric in metrics:
        if metric not in _METRIC_PATHS:
            raise ReproError(f"unknown diff metric {metric!r}; known: {sorted(_METRIC_PATHS)}")
    base_by_id: dict[str, dict] = {}
    for record in successful_records(baseline):
        identity = _job_identity(record)
        if identity:
            base_by_id[identity] = record
    cur_by_id: dict[str, dict] = {}
    for record in successful_records(current):
        identity = _job_identity(record)
        if identity:
            cur_by_id[identity] = record

    matched_rows = []
    regressions = 0
    for identity in sorted(base_by_id.keys() & cur_by_id.keys()):
        base, cur = base_by_id[identity], cur_by_id[identity]
        base_metrics, cur_metrics = metric_values(base), metric_values(cur)
        job = base.get("job") or {}
        row: dict[str, object] = {
            "job": job.get("model"),
            "device": job.get("device"),
            "mode": job.get("mode"),
            "tools": job.get("tools"),
            "metrics": {},
            "regressed": False,
        }
        for metric in metrics:
            if metric not in base_metrics or metric not in cur_metrics:
                continue
            base_value, cur_value = base_metrics[metric], cur_metrics[metric]
            ratio = (cur_value / base_value) if base_value else (1.0 if cur_value == 0 else float("inf"))
            regressed = ratio > 1.0 + threshold
            row["metrics"][metric] = {  # type: ignore[index]
                "baseline": base_value,
                "current": cur_value,
                "ratio": ratio,
                "regressed": regressed,
            }
            if regressed:
                row["regressed"] = True
        if row["regressed"]:
            regressions += 1
        matched_rows.append(row)

    return json_sanitize({
        "matched": len(matched_rows),
        "regressions": regressions,
        "threshold": threshold,
        "only_in_baseline": len(base_by_id.keys() - cur_by_id.keys()),
        "only_in_current": len(cur_by_id.keys() - base_by_id.keys()),
        "rows": matched_rows,
    })


def render_table(rows: Sequence[dict[str, object]], float_digits: int = 4) -> str:
    """Render roll-up rows as an aligned plain-text table."""
    if not rows:
        return "(no data)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}g}"
        if value is None:
            return "-"
        return str(value)

    table = [[fmt(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table)) for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in table)
    return f"{header}\n{rule}\n{body}"
