"""Deterministic fault injection for the campaign fabric.

Crash-safety claims are only worth what the tests that exercise them are
worth, so the campaign layer carries its own chaos harness.  A
:class:`FaultPlan` is a declarative list of :class:`FaultRule` entries —
*which site* (``runner.execute``, ``cache.put``, ``store.append``,
``scheduler.job`` …), *which kind* of fault, and *when* (after N clean hits,
at most M times, with a seeded probability) — and a :class:`FaultInjector`
arms the plan behind the same process-global active-handle pattern the
telemetry and progress layers use.  Instrumented sites call
``active_faults().fire(site, label=...)`` unconditionally; with no plan
armed that is one method call on the shared :data:`NULL_FAULTS` object.

Fault kinds
-----------
``error``
    Raise :class:`InjectedFault` at the site (exercises retry/backoff and
    the graceful-degradation policies).
``slow``
    Sleep ``delay_s`` at the site (exercises timeouts and work-stealing).
``crash`` / ``worker_kill``
    ``SIGKILL`` the calling process — nothing is flushed, no handler runs.
    This is the ``kill -9`` drill; only meaningful from a subprocess test
    or a dedicated worker.
``torn_write``
    Returned to the call site, which must emulate a write torn mid-line
    (the store writes a truncated record, then raises).
``cache_corrupt``
    Returned to the call site, which must corrupt the just-written payload
    (the cache truncates the entry's JSON on disk).

Determinism: every probabilistic draw comes from one ``random.Random``
seeded by the plan, and ``after``/``times`` counters are per-rule, so a
given (plan, call sequence) pair always injects the same faults.  The
``PASTA_FAULTS`` environment variable (inline JSON or a path to a JSON
file) arms a plan in processes not started through the CLI — notably
process-pool workers, which inherit the environment but not the parent's
in-process injector.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Optional, Union

from repro.errors import ReproError

#: Environment variable carrying a fault plan (inline JSON or a file path).
FAULTS_ENV = "PASTA_FAULTS"

#: Everything a rule may inject.
FAULT_KINDS = ("error", "slow", "crash", "worker_kill", "torn_write", "cache_corrupt")

#: Kinds the injector resolves itself; the rest are returned to the site.
_SELF_SERVICE_KINDS = ("error", "slow", "crash", "worker_kill")


class InjectedFault(ReproError):
    """An ``error``-kind fault fired by the injection harness."""


@dataclass(frozen=True)
class FaultRule:
    """One arming: inject ``kind`` at ``site`` under the given schedule."""

    site: str
    kind: str
    #: Fire at most this many times (0 = unlimited).
    times: int = 1
    #: Let this many matching hits pass untouched first.
    after: int = 0
    #: Seeded Bernoulli applied per otherwise-eligible hit.
    probability: float = 1.0
    #: Sleep length for ``slow`` faults.
    delay_s: float = 0.05
    #: Substring filter against the site's context label ("" matches all).
    match: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not self.site:
            raise ReproError("fault rules need a non-empty site")
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.times < 0 or self.after < 0 or self.delay_s < 0:
            raise ReproError("fault times/after/delay_s must be >= 0")

    def to_dict(self) -> dict[str, object]:
        return {
            "site": self.site, "kind": self.kind, "times": self.times,
            "after": self.after, "probability": self.probability,
            "delay_s": self.delay_s, "match": self.match,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultRule":
        unknown = set(data) - {"site", "kind", "times", "after", "probability",
                               "delay_s", "match"}
        if unknown:
            raise ReproError(f"unknown FaultRule fields: {sorted(unknown)}")
        if "site" not in data or "kind" not in data:
            raise ReproError("fault rules need 'site' and 'kind'")
        return cls(
            site=str(data["site"]),
            kind=str(data["kind"]),
            times=int(data.get("times", 1)),  # type: ignore[arg-type]
            after=int(data.get("after", 0)),  # type: ignore[arg-type]
            probability=float(data.get("probability", 1.0)),  # type: ignore[arg-type]
            delay_s=float(data.get("delay_s", 0.05)),  # type: ignore[arg-type]
            match=str(data.get("match", "")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules, loadable from JSON / ``PASTA_FAULTS``."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def to_dict(self) -> dict[str, object]:
        return {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        unknown = set(data) - {"rules", "seed"}
        if unknown:
            raise ReproError(f"unknown FaultPlan fields: {sorted(unknown)}")
        rules = data.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ReproError("FaultPlan.rules must be a list")
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in rules),
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan from inline JSON or a path to a JSON file."""
        candidate = text.strip()
        if not candidate.startswith("{"):
            path = Path(candidate)
            if not path.exists():
                raise ReproError(f"fault plan file not found: {path}")
            candidate = path.read_text(encoding="utf-8")
        try:
            data = json.loads(candidate)
        except json.JSONDecodeError as error:
            raise ReproError(f"fault plan is not valid JSON: {error}") from error
        if not isinstance(data, Mapping):
            raise ReproError("fault plan JSON must be an object")
        return cls.from_dict(data)


class FaultInjector:
    """Arms one :class:`FaultPlan`: per-rule counters + one seeded RNG."""

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._hits: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self.injected = 0

    def fire(self, site: str, label: str = "") -> Optional[FaultRule]:
        """One instrumented hit at ``site``.

        Self-service kinds act here (raise / sleep / SIGKILL); file-mangling
        kinds are returned for the call site to apply.  Returns ``None``
        when nothing injects.
        """
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if rule.match and rule.match not in label:
                continue
            hits = self._hits.get(index, 0)
            self._hits[index] = hits + 1
            if hits < rule.after:
                continue
            if rule.times and self._fired.get(index, 0) >= rule.times:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            self._fired[index] = self._fired.get(index, 0) + 1
            self.injected += 1
            self._note(site, rule, label)
            if rule.kind == "error":
                raise InjectedFault(f"injected fault at {site} ({label or 'no label'})")
            if rule.kind == "slow":
                time.sleep(rule.delay_s)
                return rule
            if rule.kind in ("crash", "worker_kill"):
                os.kill(os.getpid(), signal.SIGKILL)
            return rule
        return None

    @staticmethod
    def _note(site: str, rule: FaultRule, label: str) -> None:
        """Announce the injection on the telemetry stream (instant event)."""
        from repro.obs.telemetry import active as _active_telemetry

        telemetry = _active_telemetry()
        if telemetry.enabled:
            telemetry.event(
                "fault.injected", site=site, kind=rule.kind, label=label
            )
            telemetry.counter("faults.injected").inc()


class NullFaults:
    """The disarmed harness: ``fire`` falls through immediately."""

    enabled = False
    injected = 0
    plan = FaultPlan()

    def fire(self, site: str, label: str = "") -> Optional[FaultRule]:
        return None


#: The shared disarmed harness (the module default).
NULL_FAULTS = NullFaults()

_active: Union[FaultInjector, NullFaults, None] = None


def from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Union[FaultInjector, NullFaults]:
    """Injector armed from ``PASTA_FAULTS`` (or the shared null harness)."""
    env = os.environ if environ is None else environ
    target = env.get(FAULTS_ENV)
    if not target:
        return NULL_FAULTS
    return FaultInjector(FaultPlan.parse(target))


def active_faults() -> Union[FaultInjector, NullFaults]:
    """The process-wide active injector.

    First use resolves ``PASTA_FAULTS`` from the environment, so process-pool
    workers (fresh interpreters that inherit the environment, not the parent's
    objects) arm the same plan the parent was launched with.
    """
    global _active
    if _active is None:
        _active = from_env()
    return _active


def activate_faults(
    injector: Union[FaultInjector, NullFaults],
) -> Union[FaultInjector, NullFaults]:
    """Install ``injector`` as the process-wide active harness."""
    global _active
    _active = injector
    return injector


def deactivate_faults() -> None:
    """Disarm: reset the active harness to the shared null object."""
    global _active
    _active = NULL_FAULTS


@contextmanager
def faults_scope(
    injector: Union[FaultInjector, NullFaults],
) -> Iterator[Union[FaultInjector, NullFaults]]:
    """Scope ``injector`` as active, restoring the previous harness on exit."""
    global _active
    previous = _active
    _active = injector
    try:
        yield injector
    finally:
        _active = previous


__all__ = [
    "FAULT_KINDS",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "NULL_FAULTS",
    "NullFaults",
    "activate_faults",
    "active_faults",
    "deactivate_faults",
    "faults_scope",
    "from_env",
]
