"""Memory-usage-over-time tool (Figures 14 and 15).

Tracks the framework's tensor allocation/reclamation events and reconstructs
the memory-usage timeline over *logical timestamps* (the allocation event
index) — exactly the x-axis used in Figures 14 and 15.  The same tool serves
the single-GPU NVIDIA-vs-AMD comparison and the per-GPU multi-GPU comparison:
events carry their device index, so one instance can track several GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import EventCategory, TensorAllocEvent, TensorFreeEvent
from repro.core.serialization import json_sanitize
from repro.core.tool import PastaTool


@dataclass
class DeviceTimeline:
    """Memory-usage timeline of one device."""

    device_index: int
    #: (logical timestamp, allocated bytes) samples, one per alloc/free event.
    samples: list[tuple[int, int]] = field(default_factory=list)
    peak_bytes: int = 0
    alloc_events: int = 0
    free_events: int = 0

    @property
    def event_count(self) -> int:
        """Total allocation + reclamation events."""
        return self.alloc_events + self.free_events

    def usage_at(self, fraction: float) -> int:
        """Allocated bytes at a fractional position through the timeline."""
        if not self.samples:
            return 0
        index = min(len(self.samples) - 1, int(fraction * (len(self.samples) - 1)))
        return self.samples[index][1]

    def final_bytes(self) -> int:
        """Allocated bytes after the last event."""
        return self.samples[-1][1] if self.samples else 0


class MemoryTimelineTool(PastaTool):
    """Reconstructs per-device memory-usage timelines from tensor events."""

    tool_name = "memory_timeline"
    subscribed_categories = frozenset(
        {EventCategory.TENSOR_ALLOC, EventCategory.TENSOR_FREE}
    )

    def __init__(self) -> None:
        super().__init__()
        self._timelines: dict[int, DeviceTimeline] = {}
        self._logical_time = 0

    def _timeline(self, device_index: int) -> DeviceTimeline:
        timeline = self._timelines.get(device_index)
        if timeline is None:
            timeline = DeviceTimeline(device_index=device_index)
            self._timelines[device_index] = timeline
        return timeline

    # ------------------------------------------------------------------ #
    # event hooks
    # ------------------------------------------------------------------ #
    def on_tensor_alloc(self, event: TensorAllocEvent) -> None:
        timeline = self._timeline(event.device_index)
        self._logical_time += 1
        timeline.alloc_events += 1
        timeline.samples.append((self._logical_time, event.pool_allocated_bytes))
        timeline.peak_bytes = max(timeline.peak_bytes, event.pool_allocated_bytes)

    def on_tensor_free(self, event: TensorFreeEvent) -> None:
        timeline = self._timeline(event.device_index)
        self._logical_time += 1
        timeline.free_events += 1
        timeline.samples.append((self._logical_time, event.pool_allocated_bytes))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def devices(self) -> list[int]:
        """Device indices with at least one event."""
        return sorted(self._timelines)

    def timeline(self, device_index: int) -> DeviceTimeline:
        """Timeline for one device (empty if the device produced no events)."""
        return self._timelines.get(device_index, DeviceTimeline(device_index=device_index))

    def timelines(self) -> dict[int, DeviceTimeline]:
        """All device timelines."""
        return dict(self._timelines)

    def usage_difference(self, device_a: int, device_b: int, points: int = 100) -> list[float]:
        """Sampled difference (bytes) between two devices' usage curves.

        This is the bottom sub-plot of Figures 14 and 15: usage(a) - usage(b)
        sampled at ``points`` positions through each timeline.
        """
        ta, tb = self.timeline(device_a), self.timeline(device_b)
        diffs = []
        for i in range(points):
            fraction = i / max(1, points - 1)
            diffs.append(float(ta.usage_at(fraction) - tb.usage_at(fraction)))
        return diffs

    def report(self) -> dict[str, object]:
        return json_sanitize({
            "tool": self.tool_name,
            "devices": {
                str(idx): {
                    "peak_bytes": t.peak_bytes,
                    "events": t.event_count,
                    "alloc_events": t.alloc_events,
                    "free_events": t.free_events,
                    "final_bytes": t.final_bytes(),
                }
                for idx, t in self._timelines.items()
            },
        })
