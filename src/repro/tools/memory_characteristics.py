"""Memory characteristics / working-set analysis tool (Section V-B2, Table V).

The working set of a workload is defined (following the paper) as the maximum
memory footprint *actually referenced* by any single kernel launch.  The tool
consumes the GPU-preprocessed :class:`~repro.core.events.KernelMemoryProfile`
events — per-kernel maps from memory object to access count — so it never has
to touch raw access records, and derives:

* the per-kernel working-set distribution (min / average / median / p90 / max),
* the workload's overall memory footprint (peak driver-level reservation), and
* per-kernel-name statistics used by the inefficiency-location knobs.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.events import (
    EventCategory,
    KernelLaunchEvent,
    KernelMemoryProfile,
    MemoryAllocEvent,
    MemoryFreeEvent,
    OperatorStartEvent,
)
from repro.core.knobs import KernelStats
from repro.core.serialization import json_sanitize
from repro.core.tool import PastaTool


@dataclass
class WorkingSetSummary:
    """The Table V row for one workload."""

    kernel_count: int
    memory_footprint_bytes: int
    working_set_bytes: int
    min_working_set_bytes: int
    avg_working_set_bytes: float
    median_working_set_bytes: float
    p90_working_set_bytes: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (bytes)."""
        return {
            "kernel_count": self.kernel_count,
            "memory_footprint_bytes": self.memory_footprint_bytes,
            "working_set_bytes": self.working_set_bytes,
            "min_working_set_bytes": self.min_working_set_bytes,
            "avg_working_set_bytes": self.avg_working_set_bytes,
            "median_working_set_bytes": self.median_working_set_bytes,
            "p90_working_set_bytes": self.p90_working_set_bytes,
        }


def _percentile(values: list[int], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return float(ordered[index])


class MemoryCharacteristicsTool(PastaTool):
    """Computes per-kernel working sets and the workload memory footprint."""

    tool_name = "memory_characteristics"
    subscribed_categories = frozenset(
        {
            EventCategory.KERNEL_LAUNCH,
            EventCategory.KERNEL_MEMORY_PROFILE,
            EventCategory.MEMORY_ALLOC,
            EventCategory.MEMORY_FREE,
            EventCategory.OPERATOR_START,
        }
    )

    def __init__(self) -> None:
        super().__init__()
        #: Working set (referenced bytes) of every analysed kernel launch.
        self.kernel_working_sets: list[int] = []
        #: Footprint (passed bytes) of every analysed kernel launch.
        self.kernel_footprints: list[int] = []
        #: Driver-level live/peak allocation tracking.
        self._live_driver_bytes = 0
        self._peak_driver_bytes = 0
        self._total_driver_bytes = 0
        #: Per-kernel-name aggregated statistics (for knobs / Figure 4).
        self.kernel_stats: dict[str, KernelStats] = {}
        self._current_python_stack: tuple[str, ...] = ()
        self._current_op: str = ""
        #: object_id -> accessed bytes across the whole run (for
        #: underutilised-memory analysis).
        self.object_referenced_bytes: dict[int, int] = {}
        self.object_sizes: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # event hooks
    # ------------------------------------------------------------------ #
    def on_memory_alloc(self, event: MemoryAllocEvent) -> None:
        self._live_driver_bytes += event.size
        self._total_driver_bytes += event.size
        self._peak_driver_bytes = max(self._peak_driver_bytes, self._live_driver_bytes)
        self.object_sizes[event.object_id] = event.size

    def on_memory_free(self, event: MemoryFreeEvent) -> None:
        self._live_driver_bytes -= event.size

    def on_operator_start(self, event: OperatorStartEvent) -> None:
        self._current_python_stack = event.python_stack
        self._current_op = event.name

    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        stats = self.kernel_stats.get(event.kernel_name)
        if stats is None:
            stats = KernelStats(
                kernel_name=event.kernel_name,
                representative_python_stack=self._current_python_stack,
                representative_op=self._current_op or event.op_context,
            )
            self.kernel_stats[event.kernel_name] = stats
        stats.invocation_count += 1
        stats.total_memory_accesses += event.total_memory_accesses
        stats.total_duration_ns += event.duration_ns
        stats.max_working_set_bytes = max(stats.max_working_set_bytes, event.working_set_bytes)

    def on_kernel_memory_profile(self, event: KernelMemoryProfile) -> None:
        self.kernel_working_sets.append(event.working_set_bytes)
        self.kernel_footprints.append(event.footprint_bytes)
        for object_id, nbytes in event.object_referenced_bytes.items():
            current = self.object_referenced_bytes.get(object_id, 0)
            self.object_referenced_bytes[object_id] = max(current, nbytes)

    # ------------------------------------------------------------------ #
    # derived results
    # ------------------------------------------------------------------ #
    @property
    def memory_footprint_bytes(self) -> int:
        """The workload's overall memory footprint (peak driver-level bytes)."""
        return self._peak_driver_bytes

    @property
    def working_set_bytes(self) -> int:
        """The workload working set: the largest single-kernel referenced footprint."""
        return max(self.kernel_working_sets, default=0)

    def summary(self) -> WorkingSetSummary:
        """Produce the Table V row for the profiled workload."""
        ws = self.kernel_working_sets
        return WorkingSetSummary(
            kernel_count=len(ws),
            memory_footprint_bytes=self.memory_footprint_bytes,
            working_set_bytes=self.working_set_bytes,
            min_working_set_bytes=min(ws, default=0),
            avg_working_set_bytes=float(statistics.fmean(ws)) if ws else 0.0,
            median_working_set_bytes=float(statistics.median(ws)) if ws else 0.0,
            p90_working_set_bytes=_percentile(ws, 0.9),
        )

    def underutilized_bytes(self) -> int:
        """Bytes of driver memory never referenced by any analysed kernel.

        This is the "underutilized memory regions" insight of Section V-B2:
        a substantial fraction of allocated memory is never part of any
        kernel's working set.
        """
        unused = 0
        for object_id, size in self.object_sizes.items():
            referenced = self.object_referenced_bytes.get(object_id, 0)
            unused += max(0, size - referenced)
        return unused

    def report(self) -> dict[str, object]:
        summary = self.summary()
        footprint = summary.memory_footprint_bytes
        working = summary.working_set_bytes
        return json_sanitize({
            "tool": self.tool_name,
            **summary.as_dict(),
            "footprint_to_working_set_ratio": (footprint / working) if working else 0.0,
            "underutilized_bytes": self.underutilized_bytes(),
            "distinct_kernels": len(self.kernel_stats),
        })
