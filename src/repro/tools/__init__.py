"""Analysis tools built with PASTA — the paper's case studies.

Importing this package registers every tool with the PASTA tool registry, so
they can be selected by name (``PASTA_TOOL=kernel_frequency`` or an explicit
``create_tool("kernel_frequency")``), mirroring the artifact's
``accelprof -t <tool>`` interface.
"""

from repro.core.registry import register_tool, registered_tools
from repro.tools.access_histogram import AccessHistogramTool
from repro.tools.hotness import BlockClassification, TimeSeriesHotnessTool
from repro.tools.inefficiency import InefficiencyFinding, InefficiencyLocatorTool
from repro.tools.kernel_frequency import KernelFrequencyEntry, KernelFrequencyTool
from repro.tools.memory_characteristics import MemoryCharacteristicsTool, WorkingSetSummary
from repro.tools.memory_timeline import DeviceTimeline, MemoryTimelineTool
from repro.tools.overhead_analysis import (
    ANALYSIS_VARIANTS,
    OverheadComparison,
    OverheadComparisonRow,
    WorkloadProfile,
)
from repro.tools.uvm_prefetch import (
    AddressRange,
    KernelScheduleEntry,
    PrefetchPolicy,
    UvmPrefetchAdvisor,
    UvmPrefetchExecutor,
    UvmRunResult,
)

_BUILTIN_TOOLS = {
    AccessHistogramTool.tool_name: AccessHistogramTool,
    KernelFrequencyTool.tool_name: KernelFrequencyTool,
    MemoryCharacteristicsTool.tool_name: MemoryCharacteristicsTool,
    MemoryTimelineTool.tool_name: MemoryTimelineTool,
    TimeSeriesHotnessTool.tool_name: TimeSeriesHotnessTool,
    InefficiencyLocatorTool.tool_name: InefficiencyLocatorTool,
    UvmPrefetchAdvisor.tool_name: UvmPrefetchAdvisor,
    WorkloadProfile.tool_name: WorkloadProfile,
}

def register_builtin_tools(overwrite: bool = False) -> None:
    """(Re-)register the bundled tool collection with the tool registry.

    Runs automatically when this package is imported; call it explicitly to
    restore the built-ins after ``clear_registry()`` in tests.
    """
    for name, factory in _BUILTIN_TOOLS.items():
        if overwrite or name not in registered_tools():
            register_tool(name, factory, overwrite=overwrite)


register_builtin_tools()

__all__ = [
    "ANALYSIS_VARIANTS",
    "AccessHistogramTool",
    "AddressRange",
    "BlockClassification",
    "DeviceTimeline",
    "InefficiencyFinding",
    "InefficiencyLocatorTool",
    "KernelFrequencyEntry",
    "KernelFrequencyTool",
    "KernelScheduleEntry",
    "MemoryCharacteristicsTool",
    "MemoryTimelineTool",
    "OverheadComparison",
    "OverheadComparisonRow",
    "PrefetchPolicy",
    "TimeSeriesHotnessTool",
    "UvmPrefetchAdvisor",
    "UvmPrefetchExecutor",
    "UvmRunResult",
    "WorkingSetSummary",
    "WorkloadProfile",
    "register_builtin_tools",
]
