"""Tensor-aware UVM prefetching tool (Section V-C1, Figures 11 and 12).

The tool has two halves:

* :class:`UvmPrefetchAdvisor` — a PASTA tool that records, for every kernel
  launch, which memory **objects** (driver-level pool segments) and which
  **tensors** (sub-ranges inside those segments) the kernel actually
  references.  This cross-layer correlation — low-level kernel/memory events
  combined with the framework's tensor boundaries — is exactly what vendor
  tools cannot provide and what PASTA's unified event model makes trivial.
* :class:`UvmPrefetchExecutor` — replays the recorded kernel schedule against
  the UVM simulator under a chosen prefetch policy (none / object-level /
  tensor-level) and memory budget, reporting execution time and paging
  statistics.  Comparing the three policies with and without oversubscription
  reproduces Figures 11 and 12.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

from repro.errors import ToolError
from repro.core.events import EventCategory, KernelLaunchEvent, MemoryAllocEvent, TensorAllocEvent
from repro.core.serialization import json_sanitize
from repro.core.tool import PastaTool
from repro.gpusim.device import DeviceSpec, GpuDevice
from repro.gpusim.uvm import UvmConfig, UvmManager, UvmStats


class PrefetchPolicy(str, Enum):
    """UVM prefetching strategies compared in the paper."""

    NONE = "none"                  #: on-demand, page-fault-driven migration only
    OBJECT_LEVEL = "object_level"  #: prefetch whole driver-level memory objects
    TENSOR_LEVEL = "tensor_level"  #: prefetch only the tensor ranges kernels reference


@dataclass(frozen=True)
class AddressRange:
    """A half-open address range ``[address, address + size)``."""

    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size


@dataclass
class KernelScheduleEntry:
    """One kernel launch in the recorded workload schedule."""

    launch_id: int
    kernel_name: str
    duration_ns: int
    #: Ranges the kernel actually references (tensor granularity).
    tensor_ranges: list[AddressRange] = field(default_factory=list)
    #: Whole driver-level objects containing those ranges (object granularity).
    object_ranges: list[AddressRange] = field(default_factory=list)


class UvmPrefetchAdvisor(PastaTool):
    """Records the kernel schedule and the object/tensor ranges each kernel uses."""

    tool_name = "uvm_prefetch_advisor"
    subscribed_categories = frozenset(
        {
            EventCategory.KERNEL_LAUNCH,
            EventCategory.MEMORY_ALLOC,
            EventCategory.TENSOR_ALLOC,
        }
    )

    def __init__(self) -> None:
        super().__init__()
        #: Sorted driver-object base addresses (for containment lookups).
        self._object_addresses: list[int] = []
        self._objects_by_address: dict[int, AddressRange] = {}
        self.schedule: list[KernelScheduleEntry] = []
        self.tensor_count = 0

    # ------------------------------------------------------------------ #
    # event hooks
    # ------------------------------------------------------------------ #
    def on_memory_alloc(self, event: MemoryAllocEvent) -> None:
        rng = AddressRange(event.address, event.size)
        bisect.insort(self._object_addresses, event.address)
        self._objects_by_address[event.address] = rng

    def on_tensor_alloc(self, event: TensorAllocEvent) -> None:
        self.tensor_count += 1

    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        tensor_ranges: list[AddressRange] = []
        object_ranges: dict[int, AddressRange] = {}
        for arg in event.arguments:
            if arg.referenced_bytes <= 0:
                continue
            tensor_ranges.append(AddressRange(arg.address, arg.referenced_bytes))
            obj = self._containing_object(arg.address)
            if obj is not None:
                object_ranges[obj.address] = obj
            else:
                object_ranges[arg.address] = AddressRange(arg.address, arg.size)
        self.schedule.append(
            KernelScheduleEntry(
                launch_id=event.launch_id,
                kernel_name=event.kernel_name,
                duration_ns=event.duration_ns,
                tensor_ranges=tensor_ranges,
                object_ranges=list(object_ranges.values()),
            )
        )

    def _containing_object(self, address: int) -> Optional[AddressRange]:
        idx = bisect.bisect_right(self._object_addresses, address) - 1
        if idx < 0:
            return None
        base = self._object_addresses[idx]
        rng = self._objects_by_address[base]
        if rng.address <= address < rng.end:
            return rng
        return None

    # ------------------------------------------------------------------ #
    # derived results
    # ------------------------------------------------------------------ #
    def managed_footprint_bytes(self) -> int:
        """Total bytes of driver objects referenced anywhere in the schedule."""
        seen: dict[int, int] = {}
        for entry in self.schedule:
            for rng in entry.object_ranges:
                seen[rng.address] = rng.size
        return sum(seen.values())

    def report(self) -> dict[str, object]:
        return json_sanitize({
            "tool": self.tool_name,
            "kernels": len(self.schedule),
            "tensors": self.tensor_count,
            "driver_objects": len(self._objects_by_address),
            "managed_footprint_bytes": self.managed_footprint_bytes(),
        })


@dataclass
class UvmRunResult:
    """Outcome of replaying one schedule under one prefetch policy."""

    policy: PrefetchPolicy
    execution_time_ns: float
    kernel_time_ns: float
    uvm_overhead_ns: float
    stats: UvmStats
    oversubscription_factor: float

    def normalized_to(self, baseline: "UvmRunResult") -> float:
        """Execution time normalised to a baseline run (Figures 11/12 y-axis)."""
        if baseline.execution_time_ns <= 0:
            return float("inf")
        return self.execution_time_ns / baseline.execution_time_ns


class UvmPrefetchExecutor:
    """Replays a kernel schedule against the UVM simulator under a policy."""

    def __init__(
        self,
        device_spec: DeviceSpec,
        oversubscription_factor: float = 1.0,
        uvm_config: Optional[UvmConfig] = None,
        prefetch_call_overhead_ns: float = 5_000.0,
    ) -> None:
        if oversubscription_factor <= 0:
            raise ToolError("oversubscription factor must be positive")
        self.device_spec = device_spec
        self.oversubscription_factor = oversubscription_factor
        self.uvm_config = uvm_config or UvmConfig()
        #: Host-side latency of issuing one cudaMemPrefetchAsync call.
        self.prefetch_call_overhead_ns = prefetch_call_overhead_ns

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _capacity_for(self, schedule: Sequence[KernelScheduleEntry]) -> int:
        footprint = 0
        seen: dict[int, int] = {}
        for entry in schedule:
            for rng in entry.object_ranges:
                seen[rng.address] = rng.size
        footprint = sum(seen.values())
        if footprint == 0:
            footprint = self.uvm_config.page_bytes
        if self.oversubscription_factor <= 1.0:
            # No oversubscription: everything fits, with headroom.
            return max(footprint * 2, self.uvm_config.page_bytes)
        return max(int(footprint / self.oversubscription_factor), self.uvm_config.page_bytes)

    def execute(
        self, schedule: Sequence[KernelScheduleEntry], policy: PrefetchPolicy
    ) -> UvmRunResult:
        """Replay ``schedule`` under ``policy`` and return timing + paging stats."""
        device = GpuDevice(spec=self.device_spec)
        capacity = self._capacity_for(schedule)
        uvm = UvmManager(device, device_capacity_bytes=capacity, config=self.uvm_config)
        registered: set[int] = set()
        for entry in schedule:
            for rng in entry.object_ranges:
                if rng.address not in registered:
                    uvm.register_region(rng.address, rng.size)
                    registered.add(rng.address)

        kernel_time = 0.0
        uvm_overhead = 0.0
        for entry in schedule:
            if policy is PrefetchPolicy.OBJECT_LEVEL:
                for rng in entry.object_ranges:
                    uvm_overhead += self.prefetch_call_overhead_ns
                    uvm_overhead += uvm.prefetch_range(rng.address, rng.size)
            elif policy is PrefetchPolicy.TENSOR_LEVEL:
                for rng in entry.tensor_ranges:
                    uvm_overhead += self.prefetch_call_overhead_ns
                    uvm_overhead += uvm.prefetch_range(rng.address, rng.size)
            # Kernel execution touches the referenced ranges; anything still
            # non-resident faults on demand.
            for rng in entry.tensor_ranges:
                uvm_overhead += uvm.access_range(rng.address, rng.size)
            kernel_time += entry.duration_ns
        return UvmRunResult(
            policy=policy,
            execution_time_ns=kernel_time + uvm_overhead,
            kernel_time_ns=kernel_time,
            uvm_overhead_ns=uvm_overhead,
            stats=uvm.stats,
            oversubscription_factor=uvm.oversubscription_factor,
        )

    def compare_policies(
        self, schedule: Sequence[KernelScheduleEntry]
    ) -> dict[PrefetchPolicy, UvmRunResult]:
        """Run all three policies over the same schedule."""
        return {policy: self.execute(schedule, policy) for policy in PrefetchPolicy}

    def normalized_times(
        self, schedule: Sequence[KernelScheduleEntry]
    ) -> dict[str, float]:
        """Execution time of each policy normalised to the no-prefetch baseline."""
        results = self.compare_policies(schedule)
        baseline = results[PrefetchPolicy.NONE]
        return {
            policy.value: result.normalized_to(baseline)
            for policy, result in results.items()
        }
