"""Profiling-overhead comparison tool (Section V-B3, Figures 9 and 10).

Implements the paper's three variants of the memory-characterisation analysis:

* ``CS-GPU``  — Compute Sanitizer instrumentation, GPU-resident analysis,
* ``CS-CPU``  — Compute Sanitizer instrumentation, CPU-side analysis, and
* ``NVBIT-CPU`` — NVBit instrumentation, CPU-side analysis,

and evaluates them over the same recorded workload (a list of kernel launches
with durations and access counts) on a chosen device, using the analytical
overhead model.  The result rows are the normalised overheads of Figure 9 and
the execution/collection/transfer/analysis fractions of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import EventCategory, KernelLaunchEvent
from repro.core.serialization import json_sanitize
from repro.core.tool import PastaTool
from repro.gpusim.costmodel import (
    CostModelConfig,
    InstrumentationBackend,
    OverheadModel,
    ProfilingCost,
)
from repro.gpusim.device import DeviceSpec
from repro.gpusim.trace import AnalysisModel

#: The three analysis variants of Figures 9/10, in presentation order.
ANALYSIS_VARIANTS: tuple[tuple[str, AnalysisModel, InstrumentationBackend], ...] = (
    ("CS-GPU", AnalysisModel.GPU_RESIDENT, InstrumentationBackend.COMPUTE_SANITIZER),
    ("CS-CPU", AnalysisModel.CPU_SIDE, InstrumentationBackend.COMPUTE_SANITIZER),
    ("NVBIT-CPU", AnalysisModel.CPU_SIDE, InstrumentationBackend.NVBIT),
)


@dataclass
class WorkloadProfile(PastaTool):
    """PASTA tool that records per-kernel (duration, access-count) pairs.

    The recorded list is the workload description the overhead comparison
    replays under each analysis variant.
    """

    tool_name = "workload_profile"
    subscribed_categories = frozenset({EventCategory.KERNEL_LAUNCH})

    launches: list[tuple[float, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        PastaTool.__init__(self)

    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        self.launches.append((float(event.duration_ns), event.total_memory_accesses))

    def total_accesses(self) -> int:
        """Total memory accesses across the recorded workload."""
        return sum(accesses for _duration, accesses in self.launches)

    def total_execution_ns(self) -> float:
        """Total uninstrumented kernel time."""
        return sum(duration for duration, _accesses in self.launches)

    def report(self) -> dict[str, object]:
        return json_sanitize({
            "tool": self.tool_name,
            "kernels": len(self.launches),
            "total_accesses": self.total_accesses(),
            "total_execution_ns": self.total_execution_ns(),
        })


@dataclass(frozen=True)
class OverheadComparisonRow:
    """One (device, variant) cell of Figure 9 / Figure 10."""

    variant: str
    device: str
    cost: ProfilingCost

    @property
    def normalized_overhead(self) -> float:
        """Overhead relative to uninstrumented execution (Figure 9)."""
        return self.cost.normalized_overhead()

    @property
    def fractions(self) -> dict[str, float]:
        """Time breakdown fractions (Figure 10)."""
        return self.cost.fractions()


class OverheadComparison:
    """Evaluates the three analysis variants over one recorded workload."""

    def __init__(self, config: CostModelConfig | None = None) -> None:
        self.config = config

    def evaluate(
        self, launches: list[tuple[float, int]], device_spec: DeviceSpec
    ) -> dict[str, OverheadComparisonRow]:
        """Produce one row per analysis variant for ``device_spec``."""
        rows: dict[str, OverheadComparisonRow] = {}
        model = OverheadModel(device_spec, self.config)
        for name, analysis_model, backend in ANALYSIS_VARIANTS:
            cost = model.workload_cost(launches, analysis_model, backend)
            rows[name] = OverheadComparisonRow(variant=name, device=device_spec.name, cost=cost)
        return rows

    def speedup_of_gpu_analysis(
        self, launches: list[tuple[float, int]], device_spec: DeviceSpec
    ) -> dict[str, float]:
        """How much faster CS-GPU's overhead is than each CPU-side variant."""
        rows = self.evaluate(launches, device_spec)
        gpu_overhead = rows["CS-GPU"].cost.overhead_ns
        out: dict[str, float] = {}
        for name in ("CS-CPU", "NVBIT-CPU"):
            if gpu_overhead <= 0:
                out[name] = float("inf")
            else:
                out[name] = rows[name].cost.overhead_ns / gpu_overhead
        return out
