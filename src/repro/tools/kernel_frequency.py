"""Kernel invocation frequency analysis tool (Section V-B1, Figure 7).

The paper's first case study: count how often each kernel is invoked during a
workload.  The tool only needs the kernel-launch events PASTA already
preprocesses — the user-side code is literally a map update, which is the
point of the case study (a useful analysis in a few lines on top of the
framework).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.events import EventCategory, KernelLaunchEvent
from repro.core.serialization import json_sanitize
from repro.core.tool import PastaTool


@dataclass(frozen=True)
class KernelFrequencyEntry:
    """One row of the kernel-frequency report."""

    kernel_name: str
    invocations: int
    total_duration_ns: int


class KernelFrequencyTool(PastaTool):
    """Counts kernel invocations per kernel name."""

    tool_name = "kernel_frequency"
    subscribed_categories = frozenset({EventCategory.KERNEL_LAUNCH})

    def __init__(self) -> None:
        super().__init__()
        self._counts: Counter[str] = Counter()
        self._durations: Counter[str] = Counter()

    # The paper's TOOL::record_kernel_freq — the single override users write.
    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        self._counts[event.kernel_name] += 1
        self._durations[event.kernel_name] += event.duration_ns

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def total_launches(self) -> int:
        """Total kernel launches observed."""
        return sum(self._counts.values())

    @property
    def distinct_kernels(self) -> int:
        """Number of distinct kernel names observed."""
        return len(self._counts)

    def frequencies(self) -> dict[str, int]:
        """Invocation count per kernel name."""
        return dict(self._counts)

    def top_kernels(self, k: int = 10) -> list[KernelFrequencyEntry]:
        """The ``k`` most frequently invoked kernels, most frequent first."""
        return [
            KernelFrequencyEntry(name, count, self._durations[name])
            for name, count in self._counts.most_common(k)
        ]

    def concentration(self, k: int = 5) -> float:
        """Fraction of all launches contributed by the top-``k`` kernels.

        Figure 7's headline observation is that a small subset of kernels is
        invoked heavily; this is that observation as a single number.
        """
        total = self.total_launches
        if total == 0:
            return 0.0
        top = sum(count for _name, count in self._counts.most_common(k))
        return top / total

    def report(self) -> dict[str, object]:
        return json_sanitize({
            "tool": self.tool_name,
            "total_launches": self.total_launches,
            "distinct_kernels": self.distinct_kernels,
            "top_kernels": [
                {"kernel": e.kernel_name, "invocations": e.invocations,
                 "total_duration_ns": e.total_duration_ns}
                for e in self.top_kernels(10)
            ],
            "top5_concentration": self.concentration(5),
        })
