"""Time-series memory-hotness analysis tool (Section V-C2, Figure 13).

Tracks access "hotness" over time at the granularity of 2 MB virtual-memory
blocks (the UVM migration granularity).  Time is discretised into windows of
consecutive kernel launches; for every window the tool accumulates the number
of accesses that fell into each block.  From the resulting block x window
matrix it classifies blocks as

* **long-lived hot** — accessed in most windows (model parameters; good
  candidates for pinning / ``cudaMemPrefetchAsync``), or
* **bursty** — heavily accessed in a few adjacent windows and idle otherwise
  (transient activations / KV-cache-like data; candidates for pro-active
  eviction).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.events import (
    EventCategory,
    KernelLaunchEvent,
    KernelMemoryProfile,
    MemoryAccessBatch,
    MemoryAccessEvent,
)
from repro.core.serialization import json_sanitize
from repro.core.tool import PastaTool
from repro.gpusim.uvm import UVM_PAGE_BYTES


@dataclass(frozen=True)
class BlockClassification:
    """Classification of one 2 MB block."""

    block_id: int
    total_accesses: int
    active_windows: int
    total_windows: int
    kind: str  # "long_lived_hot", "bursty", or "cold"

    @property
    def activity_ratio(self) -> float:
        """Fraction of windows in which the block was accessed."""
        if self.total_windows == 0:
            return 0.0
        return self.active_windows / self.total_windows


class TimeSeriesHotnessTool(PastaTool):
    """Builds a block x time-window access-count matrix.

    By default the matrix is estimated from each launch's argument metadata
    (address + referenced bytes + access count), which needs no device-side
    instrumentation.  With ``use_sampled_accesses=True`` the tool instead
    subscribes to the fine-grained access stream and attributes the *sampled*
    accesses to blocks — exact per-address attribution at the cost of
    requiring fine-grained instrumentation.  The sampled path is batch-aware:
    columnar access batches are consumed directly.
    """

    tool_name = "hotness"
    subscribed_categories = frozenset(
        {EventCategory.KERNEL_LAUNCH, EventCategory.KERNEL_MEMORY_PROFILE}
    )

    def __init__(
        self,
        block_bytes: int = UVM_PAGE_BYTES,
        kernels_per_window: int = 10,
        use_sampled_accesses: bool = False,
    ) -> None:
        super().__init__()
        self.block_bytes = block_bytes
        self.kernels_per_window = kernels_per_window
        self.use_sampled_accesses = use_sampled_accesses
        if use_sampled_accesses:
            # Instance-level subscription: also receive the access stream
            # (its batch form is implied) and require instrumentation.
            self.subscribed_categories = self.subscribed_categories | frozenset(
                {EventCategory.MEMORY_ACCESS}
            )
            self.requires_fine_grained = True
        self._kernel_index = 0
        #: window -> block -> accesses
        self._windows: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._launch_window: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # event hooks
    # ------------------------------------------------------------------ #
    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        window = self._kernel_index // self.kernels_per_window
        self._launch_window[event.launch_id] = window
        self._kernel_index += 1
        if self.use_sampled_accesses:
            # Attribution happens per sampled access (the records arrive
            # just before their launch's canonical event).
            return
        # Attribute accesses per 2 MB block from the launch's argument metadata
        # (address + referenced bytes + access count), spreading each
        # argument's accesses uniformly over the blocks it touches.
        block_bytes = self.block_bytes
        counts = self._windows[window]
        for arg in event.arguments:
            access_count = arg.access_count
            referenced = arg.referenced_bytes
            if access_count <= 0 or referenced <= 0:
                continue
            first = arg.address // block_bytes
            last = (arg.address + referenced - 1) // block_bytes
            per_block = access_count // (last - first + 1) or 1
            for block in range(first, last + 1):
                counts[block] += per_block

    def _current_window(self) -> int:
        # Device records precede their launch's canonical launch-end event,
        # so the launch they belong to has the *current* kernel index.
        return self._kernel_index // self.kernels_per_window

    def on_memory_access(self, event: MemoryAccessEvent) -> None:
        if not self.use_sampled_accesses:
            return
        self._windows[self._current_window()][event.address // self.block_bytes] += 1

    def on_memory_access_batch(self, event: MemoryAccessBatch) -> None:
        if not self.use_sampled_accesses:
            return
        counts = self._windows[self._current_window()]
        block_bytes = self.block_bytes
        for address in event.addresses:
            counts[address // block_bytes] += 1

    def on_kernel_memory_profile(self, event: KernelMemoryProfile) -> None:
        # The profile is redundant with the launch-argument attribution above;
        # it is accepted so the tool also works when only profiles are routed.
        pass

    # ------------------------------------------------------------------ #
    # derived results
    # ------------------------------------------------------------------ #
    @property
    def window_count(self) -> int:
        """Number of time windows observed."""
        return max(self._windows) + 1 if self._windows else 0

    def block_ids(self) -> list[int]:
        """All 2 MB blocks that received at least one access."""
        blocks: set[int] = set()
        for window in self._windows.values():
            blocks.update(window)
        return sorted(blocks)

    def hotness_matrix(self) -> tuple[list[int], np.ndarray]:
        """Return (block_ids, matrix) with shape (blocks, windows)."""
        blocks = self.block_ids()
        windows = self.window_count
        matrix = np.zeros((len(blocks), windows), dtype=np.int64)
        index = {block: i for i, block in enumerate(blocks)}
        for window_id, counts in self._windows.items():
            for block, count in counts.items():
                matrix[index[block], window_id] = count
        return blocks, matrix

    def classify_blocks(
        self, hot_ratio: float = 0.6, bursty_ratio: float = 0.25
    ) -> list[BlockClassification]:
        """Classify blocks as long-lived hot, bursty, or cold."""
        blocks, matrix = self.hotness_matrix()
        total_windows = matrix.shape[1]
        out: list[BlockClassification] = []
        for row, block in enumerate(blocks):
            counts = matrix[row]
            active = int(np.count_nonzero(counts))
            total = int(counts.sum())
            ratio = active / total_windows if total_windows else 0.0
            if ratio >= hot_ratio:
                kind = "long_lived_hot"
            elif ratio <= bursty_ratio and total > 0:
                kind = "bursty"
            else:
                kind = "cold" if total == 0 else "intermittent"
            out.append(
                BlockClassification(
                    block_id=block,
                    total_accesses=total,
                    active_windows=active,
                    total_windows=total_windows,
                    kind=kind,
                )
            )
        return out

    def prefetch_candidates(self) -> list[int]:
        """Blocks recommended for pinning / proactive prefetch."""
        return [c.block_id for c in self.classify_blocks() if c.kind == "long_lived_hot"]

    def eviction_candidates(self) -> list[int]:
        """Blocks recommended for proactive eviction (bursty, short-lived)."""
        return [c.block_id for c in self.classify_blocks() if c.kind == "bursty"]

    def report(self) -> dict[str, object]:
        classes = self.classify_blocks()
        by_kind: dict[str, int] = defaultdict(int)
        for c in classes:
            by_kind[c.kind] += 1
        return json_sanitize({
            "tool": self.tool_name,
            "blocks": len(classes),
            "windows": self.window_count,
            "block_kinds": dict(by_kind),
            "prefetch_candidates": len(self.prefetch_candidates()),
            "eviction_candidates": len(self.eviction_candidates()),
        })
