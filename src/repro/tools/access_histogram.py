"""Sampled device-record histogram tool (batch-native fine-grained analysis).

The simplest member of the tool collection that consumes *raw* fine-grained
records rather than the GPU-preprocessed per-kernel profiles: it histograms
the sampled memory accesses (read/write mix, access widths, distinct 2 MB
blocks touched, records per kernel launch) and tallies the non-memory
instruction kinds the backend observed.

It is also the reference implementation of a **batch-aware** tool: the
``on_memory_access_batch`` / ``on_instruction_batch`` overrides consume the
columnar arrays directly, so profiling a workload never materialises one
event object per sampled access.  The per-record hooks implement the exact
same accumulation, which the pipeline-equivalence tests rely on: unrolling a
batch through them must produce a byte-identical report.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.events import (
    EventCategory,
    InstructionBatch,
    InstructionEvent,
    MemoryAccessBatch,
    MemoryAccessEvent,
)
from repro.core.serialization import json_sanitize
from repro.core.tool import PastaTool
from repro.gpusim.uvm import UVM_PAGE_BYTES


class AccessHistogramTool(PastaTool):
    """Histograms sampled device-side records (accesses and instructions)."""

    tool_name = "access_histogram"
    requires_fine_grained = True
    subscribed_categories = frozenset(
        {EventCategory.MEMORY_ACCESS, EventCategory.INSTRUCTION}
    )

    def __init__(self, block_bytes: int = UVM_PAGE_BYTES) -> None:
        super().__init__()
        self.block_bytes = block_bytes
        self.reads = 0
        self.writes = 0
        #: access width in bytes -> sampled count.
        self.accesses_by_size: dict[int, int] = defaultdict(int)
        #: kernel launch id -> sampled records (accesses + instructions).
        self.records_by_launch: dict[int, int] = defaultdict(int)
        #: instruction kind value -> sampled count (non-memory records).
        self.instructions_by_kind: dict[str, int] = defaultdict(int)
        #: 2 MB-aligned blocks with at least one sampled access.
        self._blocks: set[int] = set()

    # ------------------------------------------------------------------ #
    # per-record hooks (used when batches are unrolled)
    # ------------------------------------------------------------------ #
    def on_memory_access(self, event: MemoryAccessEvent) -> None:
        if event.is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.accesses_by_size[event.size] += 1
        self.records_by_launch[event.kernel_launch_id] += 1
        self._blocks.add(event.address // self.block_bytes)

    def on_instruction(self, event: InstructionEvent) -> None:
        self.instructions_by_kind[event.kind.value] += 1
        self.records_by_launch[event.kernel_launch_id] += 1

    # ------------------------------------------------------------------ #
    # batch-native hooks (columnar accumulation, no per-record events)
    # ------------------------------------------------------------------ #
    def on_memory_access_batch(self, event: MemoryAccessBatch) -> None:
        writes = sum(event.write_flags)
        self.writes += writes
        self.reads += len(event.write_flags) - writes
        sizes = self.accesses_by_size
        for size in event.sizes:
            sizes[size] += 1
        self.records_by_launch[event.kernel_launch_id] += len(event.addresses)
        block_bytes = self.block_bytes
        self._blocks.update(address // block_bytes for address in event.addresses)

    def on_instruction_batch(self, event: InstructionBatch) -> None:
        by_kind = self.instructions_by_kind
        for kind in event.kinds:
            by_kind[kind.value] += 1
        self.records_by_launch[event.kernel_launch_id] += len(event.kinds)

    # ------------------------------------------------------------------ #
    # derived results
    # ------------------------------------------------------------------ #
    @property
    def sampled_accesses(self) -> int:
        """Total sampled memory accesses."""
        return self.reads + self.writes

    def distinct_blocks(self) -> int:
        """Number of 2 MB blocks with at least one sampled access."""
        return len(self._blocks)

    def report(self) -> dict[str, object]:
        total = self.sampled_accesses
        return json_sanitize({
            "tool": self.tool_name,
            "sampled_accesses": total,
            "reads": self.reads,
            "writes": self.writes,
            "write_fraction": (self.writes / total) if total else 0.0,
            "distinct_blocks": self.distinct_blocks(),
            "instrumented_launches": len(self.records_by_launch),
            "accesses_by_size": dict(sorted(self.accesses_by_size.items())),
            "instructions_by_kind": dict(sorted(self.instructions_by_kind.items())),
        })
