"""Inefficiency-location tool: knob-selected cross-layer call stacks (Figure 4).

Combines the per-kernel statistics PASTA accumulates with the knob mechanism of
Section III-F2: after a run, asking for ``MAX_MEM_REFERENCED_KERNEL`` (or any
other knob) returns the selected kernel together with its cross-layer call
stack — C/C++ frames for the ATen/cuBLAS launch path and Python frames for the
model code that triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from collections import defaultdict

from repro.core.callstack import CrossLayerStack, build_cross_layer_stack
from repro.core.events import (
    EventCategory,
    InstructionBatch,
    InstructionEvent,
    KernelLaunchEvent,
    MemoryAccessBatch,
    MemoryAccessEvent,
    OperatorStartEvent,
)
from repro.core.knobs import KernelStats, KnobRegistry
from repro.core.serialization import json_sanitize
from repro.core.tool import PastaTool


@dataclass(frozen=True)
class InefficiencyFinding:
    """The kernel selected by a knob, with its cross-layer context."""

    knob: str
    kernel_name: str
    invocation_count: int
    total_memory_accesses: int
    total_duration_ns: int
    stack: CrossLayerStack

    def render(self) -> str:
        """Human-readable rendering of the finding."""
        header = (
            f"[{self.knob}] {self.kernel_name}: "
            f"{self.invocation_count} invocations, "
            f"{self.total_memory_accesses} memory references, "
            f"{self.total_duration_ns} ns total"
        )
        return header + "\n" + self.stack.render()


class InefficiencyLocatorTool(PastaTool):
    """Accumulates per-kernel statistics and answers knob queries.

    With ``track_device_records=True`` the tool also subscribes to the
    fine-grained record stream and attributes the sampled device records to
    kernels, adding a ``sampled_device_records`` breakdown to the report.
    The fine-grained path is batch-aware: columnar batches are counted in
    O(1) instead of being unrolled.
    """

    tool_name = "inefficiency_locator"
    subscribed_categories = frozenset(
        {EventCategory.KERNEL_LAUNCH, EventCategory.OPERATOR_START}
    )

    def __init__(self, track_device_records: bool = False) -> None:
        super().__init__()
        self.track_device_records = track_device_records
        if track_device_records:
            self.subscribed_categories = self.subscribed_categories | frozenset(
                {EventCategory.MEMORY_ACCESS, EventCategory.INSTRUCTION}
            )
            self.requires_fine_grained = True
        self.kernel_stats: dict[str, KernelStats] = {}
        self.knobs = KnobRegistry()
        self._current_python_stack: tuple[str, ...] = ()
        self._current_op: str = ""
        #: launch id -> sampled records seen before the launch's canonical
        #: event arrived (backends emit device records first).
        self._pending_records: dict[int, int] = defaultdict(int)
        #: kernel name -> total sampled device records.
        self.sampled_records_by_kernel: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------ #
    # event hooks
    # ------------------------------------------------------------------ #
    def on_operator_start(self, event: OperatorStartEvent) -> None:
        self._current_python_stack = event.python_stack
        self._current_op = event.name

    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        stats = self.kernel_stats.get(event.kernel_name)
        if stats is None:
            stats = KernelStats(
                kernel_name=event.kernel_name,
                representative_python_stack=self._current_python_stack,
                representative_op=self._current_op or event.op_context,
            )
            self.kernel_stats[event.kernel_name] = stats
        stats.invocation_count += 1
        stats.total_memory_accesses += event.total_memory_accesses
        stats.total_duration_ns += event.duration_ns
        stats.max_working_set_bytes = max(stats.max_working_set_bytes, event.working_set_bytes)
        if self._pending_records:
            pending = self._pending_records.pop(event.launch_id, 0)
            if pending:
                self.sampled_records_by_kernel[event.kernel_name] += pending

    def on_memory_access(self, event: MemoryAccessEvent) -> None:
        self._pending_records[event.kernel_launch_id] += 1

    def on_instruction(self, event: InstructionEvent) -> None:
        self._pending_records[event.kernel_launch_id] += 1

    def on_memory_access_batch(self, event: MemoryAccessBatch) -> None:
        self._pending_records[event.kernel_launch_id] += len(event)

    def on_instruction_batch(self, event: InstructionBatch) -> None:
        self._pending_records[event.kernel_launch_id] += len(event)

    # ------------------------------------------------------------------ #
    # knob queries
    # ------------------------------------------------------------------ #
    def locate(self, knob: str = "MAX_MEM_REFERENCED_KERNEL") -> Optional[InefficiencyFinding]:
        """Apply a knob and return the selected kernel with its cross-layer stack."""
        selected = self.knobs.select(knob, self.kernel_stats)
        if selected is None:
            return None
        stack = build_cross_layer_stack(
            selected.kernel_name, selected.representative_python_stack
        )
        return InefficiencyFinding(
            knob=knob.upper(),
            kernel_name=selected.kernel_name,
            invocation_count=selected.invocation_count,
            total_memory_accesses=selected.total_memory_accesses,
            total_duration_ns=selected.total_duration_ns,
            stack=stack,
        )

    def report(self) -> dict[str, object]:
        findings = {}
        for knob in ("MAX_MEM_REFERENCED_KERNEL", "MAX_CALLED_KERNEL"):
            finding = self.locate(knob)
            if finding is not None:
                findings[knob] = {
                    "kernel": finding.kernel_name,
                    "invocations": finding.invocation_count,
                    "memory_references": finding.total_memory_accesses,
                }
        out: dict[str, object] = {
            "tool": self.tool_name,
            "distinct_kernels": len(self.kernel_stats),
            "findings": findings,
        }
        if self.track_device_records:
            out["sampled_device_records"] = sum(self.sampled_records_by_kernel.values())
            out["top_sampled_kernels"] = sorted(
                self.sampled_records_by_kernel.items(),
                key=lambda kv: (-kv[1], kv[0]),
            )[:5]
        return json_sanitize(out)
