"""The ``pasta`` umbrella command line.

One entry point for the whole framework, mirroring the facade's shape::

    pasta profile  resnet18 --tool kernel_frequency --device a100
    pasta campaign run sweep.json --jobs 4 --store results.jsonl
    pasta trace    replay resnet18.pastatrace --tool hotness
    pasta telemetry summary runs/

Every workload-running subcommand accepts ``--telemetry DIR`` (self-telemetry
of the profiler itself, written as ``DIR/telemetry.jsonl``) and
``--log-level LEVEL`` (stdlib logging for the ``repro.*`` namespace); the
``PASTA_TELEMETRY`` environment variable enables telemetry without touching
the command line.  ``pasta telemetry`` analyses the resulting files.

The historical ``pasta-profile`` / ``pasta-campaign`` / ``pasta-trace``
console scripts still work but are deprecated shims over these subcommands
(see :mod:`repro.cli`, :mod:`repro.campaign.cli`, :mod:`repro.replay.cli`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.obs.log import configure_logging, parse_level
from repro.obs.telemetry import Telemetry, activated, from_env

# No side-effect tool import here: the registry lazily seeds the built-in
# collection on first access (`--list-tools`, name-based selection, ...).


def _version_string() -> str:
    import repro

    return f"pasta {repro.__version__}"


def add_version_flag(parser: argparse.ArgumentParser) -> None:
    """Give ``parser`` a ``--version`` that prints ``pasta <version>``."""
    parser.add_argument("--version", action="version", version=_version_string())


def add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--telemetry`` / ``--log-level`` flags to a leaf parser."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="write the profiler's own spans/metrics to DIR/telemetry.jsonl "
             "(a path ending in .jsonl is used verbatim); "
             "equivalently set the PASTA_TELEMETRY environment variable",
    )
    group.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        help="enable stderr logging for the repro.* loggers at LEVEL "
             "(debug, info, warning, error); debug mirrors telemetry records",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the umbrella ``pasta`` argument parser."""
    from repro.commands import campaign, jobs, profile, serve, telemetry, trace

    parser = argparse.ArgumentParser(
        prog="pasta",
        description="PASTA: profile, batch-sweep, and trace-replay simulated "
                    "accelerator workloads.",
    )
    add_version_flag(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    profile_parser = sub.add_parser(
        "profile", help="profile one workload with PASTA analysis tools")
    profile.configure_parser(profile_parser)
    add_version_flag(profile_parser)
    add_observability_flags(profile_parser)
    profile_parser.set_defaults(handler=profile.cmd_profile, parser=profile_parser)

    campaign_parser = sub.add_parser(
        "campaign", help="run, report and diff batched profiling campaigns")
    campaign.configure_parser(campaign_parser)
    add_version_flag(campaign_parser)
    campaign_parser.set_defaults(handler=campaign.cmd_campaign, parser=campaign_parser)

    trace_parser = sub.add_parser(
        "trace", help="record, inspect, slice and replay event traces")
    trace.configure_parser(trace_parser)
    add_version_flag(trace_parser)
    trace_parser.set_defaults(handler=trace.cmd_trace, parser=trace_parser)

    telemetry_parser = sub.add_parser(
        "telemetry", help="summarise and export the profiler's own telemetry")
    telemetry.configure_parser(telemetry_parser)
    add_version_flag(telemetry_parser)
    telemetry_parser.set_defaults(
        handler=telemetry.cmd_telemetry, parser=telemetry_parser)

    serve_parser = sub.add_parser(
        "serve", help="run the profiling-as-a-service daemon")
    serve.configure_parser(serve_parser)
    add_version_flag(serve_parser)
    add_observability_flags(serve_parser)
    serve_parser.set_defaults(handler=serve.cmd_serve, parser=serve_parser)

    submit_parser = sub.add_parser(
        "submit", help="submit a spec to a pasta serve daemon")
    jobs.configure_submit_parser(submit_parser)
    add_version_flag(submit_parser)
    add_observability_flags(submit_parser)
    submit_parser.set_defaults(handler=jobs.cmd_submit, parser=submit_parser)

    jobs_parser = sub.add_parser(
        "jobs", help="list, stream and cancel a daemon's jobs")
    jobs.configure_jobs_parser(jobs_parser)
    add_version_flag(jobs_parser)
    jobs_parser.set_defaults(handler=jobs.cmd_jobs, parser=jobs_parser)

    return parser


def _open_telemetry(args: argparse.Namespace,
                    argv: Optional[Sequence[str]]) -> Telemetry:
    """Resolve the telemetry destination: ``--telemetry`` flag, then env var."""
    target = getattr(args, "telemetry", None)
    if target is None:
        return from_env()
    return Telemetry.open(
        target, argv=list(argv) if argv is not None else sys.argv[1:])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    log_level = getattr(args, "log_level", None)
    if log_level is not None:
        try:
            configure_logging(parse_level(log_level))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    telemetry = _open_telemetry(args, argv)
    try:
        # `activated` installs the telemetry for every layer underneath and
        # closes the sink (flushing metrics + self-overhead) on the way out —
        # including on error, so crashed runs still leave an analysable file.
        with activated(telemetry):
            with telemetry.span(f"cli.{args.command}"):
                code = args.handler(args, args.parser)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        code = 1
    if telemetry.enabled and telemetry.sink is not None:
        print(f"telemetry written to {telemetry.sink.path}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
