"""The ``pasta`` umbrella command line.

One entry point for the whole framework, mirroring the facade's shape::

    pasta profile  resnet18 --tool kernel_frequency --device a100
    pasta campaign run sweep.json --jobs 4 --store results.jsonl
    pasta trace    replay resnet18.pastatrace --tool hotness

The historical ``pasta-profile`` / ``pasta-campaign`` / ``pasta-trace``
console scripts still work but are deprecated shims over these subcommands
(see :mod:`repro.cli`, :mod:`repro.campaign.cli`, :mod:`repro.replay.cli`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError

# No side-effect tool import here: the registry lazily seeds the built-in
# collection on first access (`--list-tools`, name-based selection, ...).


def build_parser() -> argparse.ArgumentParser:
    """Construct the umbrella ``pasta`` argument parser."""
    from repro.commands import campaign, profile, trace

    parser = argparse.ArgumentParser(
        prog="pasta",
        description="PASTA: profile, batch-sweep, and trace-replay simulated "
                    "accelerator workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile_parser = sub.add_parser(
        "profile", help="profile one workload with PASTA analysis tools")
    profile.configure_parser(profile_parser)
    profile_parser.set_defaults(handler=profile.cmd_profile, parser=profile_parser)

    campaign_parser = sub.add_parser(
        "campaign", help="run, report and diff batched profiling campaigns")
    campaign.configure_parser(campaign_parser)
    campaign_parser.set_defaults(handler=campaign.cmd_campaign, parser=campaign_parser)

    trace_parser = sub.add_parser(
        "trace", help="record, inspect, slice and replay event traces")
    trace.configure_parser(trace_parser)
    trace_parser.set_defaults(handler=trace.cmd_trace, parser=trace_parser)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, args.parser)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
