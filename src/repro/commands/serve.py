"""``pasta serve`` — run the profiling-as-a-service daemon.

Boots a :class:`~repro.serve.daemon.PastaDaemon` on the calling thread and
serves until interrupted::

    pasta serve --data-dir .pasta-serve --port 8080 --workers 4

The first stdout line is machine-readable (``pasta serve listening on
<url> ...``) so scripts and tests can scrape the bound URL — pass
``--port 0`` for an ephemeral port.  All state (content-addressed cache +
job journal) lives under ``--data-dir``; restarting the daemon over the
same directory resumes any jobs a previous daemon accepted but never
finished, and answers already-finished digests from the cache without
re-simulating.
"""

from __future__ import annotations

import argparse
import sys

#: Default daemon state directory, relative to the working directory.
DEFAULT_DATA_DIR = ".pasta-serve"

#: Default TCP port (0 binds an ephemeral port and prints it).
DEFAULT_PORT = 8080


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Populate the ``serve`` subcommand's flags."""
    parser.add_argument("--data-dir", default=DEFAULT_DATA_DIR,
                        help="daemon state: cache + job journal "
                             f"(default: {DEFAULT_DATA_DIR})")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port; 0 binds an ephemeral port and prints "
                             f"it (default: {DEFAULT_PORT})")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads executing jobs (default: 2)")
    parser.add_argument("--quota-inflight", type=int, default=None,
                        metavar="N",
                        help="per-namespace cap on queued+running jobs "
                             "(default: 64; submissions over it get a "
                             "429-style error record)")
    parser.add_argument("--quota-total", type=int, default=None, metavar="N",
                        help="per-namespace cap on total submissions for this "
                             "daemon's lifetime (default: unlimited)")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync cache and journal writes (durability "
                             "against host crashes, not just kill -9)")


def cmd_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Run the daemon until SIGINT; exits 0 on a clean shutdown."""
    from repro.serve.daemon import PastaDaemon
    from repro.serve.jobs import DEFAULT_QUOTA_INFLIGHT

    daemon = PastaDaemon(
        args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        quota_inflight=(
            DEFAULT_QUOTA_INFLIGHT if args.quota_inflight is None
            else args.quota_inflight
        ),
        quota_total=args.quota_total,
        fsync=args.fsync,
    )
    # The boot line prints inside the try: a Ctrl-C that lands between the
    # announce and the serve loop must still shut down cleanly (exit 0),
    # not escape as an unhandled KeyboardInterrupt.
    try:
        print(
            f"pasta serve listening on {daemon.url} "
            f"(data: {args.data_dir}, workers: {args.workers}, "
            f"resumed: {daemon.manager.resumed})",
            flush=True,
        )
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        daemon.close()
    return 0
