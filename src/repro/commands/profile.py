"""``pasta profile``: profile one simulated workload with PASTA tools.

The reproduction's ``accelprof`` equivalent, rebuilt on the unified facade:
the command-line arguments populate one
:class:`~repro.api.spec.ProfileSpec`, and execution goes through
:func:`repro.api.execute` — exactly the path the programmatic API, the
campaign scheduler and the replay engine share.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.api import PARALLEL_STRATEGIES, ParallelismSpec, ProfileSpec, execute
from repro.core.registry import REGISTRY, registered_tools
from repro.obs.telemetry import active as _active_telemetry


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Populate the ``profile`` subcommand's arguments."""
    parser.add_argument("model", nargs="?",
                        help="model to profile (see --list-models)")
    parser.add_argument("--tool", "-t", action="append", default=[],
                        help="tool name from the registry; may be repeated")
    parser.add_argument("--device", "-d", default="a100",
                        help="device short name (see --list-devices; default: a100)")
    parser.add_argument("--mode", choices=["inference", "train"], default=None,
                        help="run mode (default: inference; --parallel implies train)")
    parser.add_argument("--iterations", type=int, default=1)
    parser.add_argument("--parallel", choices=list(PARALLEL_STRATEGIES), default=None,
                        help="profile under multi-GPU parallelism: dp (data), "
                             "tp (tensor) or pp (pipeline); implies --mode train")
    parser.add_argument("--world-size", type=int, default=None,
                        help="ranks for --parallel (default: 2)")
    parser.add_argument("--parallel-devices", default=None, metavar="DEV,DEV,...",
                        help="comma-separated per-rank devices for --parallel "
                             "(default: --device replicated on every rank)")
    parser.add_argument("--microbatches", type=int, default=None,
                        help="pipeline-parallel micro-batch count (default: 2)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="override the model's paper batch size")
    parser.add_argument("--backend", default=None,
                        help="profiling backend (see --list-backends; "
                             "default: the device vendor's recommendation)")
    parser.add_argument("--analysis-model", default="gpu_resident",
                        help="where fine-grained analysis runs: gpu_resident "
                             "or cpu_side (default: gpu_resident)")
    parser.add_argument("--fine-grained", action="store_true",
                        help="enable device-side (instruction-level) instrumentation")
    parser.add_argument("--start-grid-id", type=int, default=None,
                        help="first kernel-launch index to analyse (START_GRID_ID)")
    parser.add_argument("--end-grid-id", type=int, default=None,
                        help="last kernel-launch index to analyse (END_GRID_ID)")
    parser.add_argument("--record", metavar="TRACE", default=None,
                        help="also record the event stream to this trace file "
                             "for later `pasta trace replay`")
    parser.add_argument("--json", action="store_true", help="emit reports as JSON")
    parser.add_argument("--list-tools", action="store_true",
                        help="list registered tools and exit")
    parser.add_argument("--list-models", action="store_true",
                        help="list registered models and exit")
    parser.add_argument("--list-devices", action="store_true",
                        help="list registered devices and exit")
    parser.add_argument("--list-backends", action="store_true",
                        help="list registered profiling backends and exit")


def spec_from_args(args: argparse.Namespace) -> ProfileSpec:
    """The :class:`ProfileSpec` described by parsed ``profile`` arguments."""
    knobs: dict[str, object] = {}
    if args.start_grid_id is not None:
        knobs["start_grid_id"] = args.start_grid_id
    if args.end_grid_id is not None:
        knobs["end_grid_id"] = args.end_grid_id
    parallelism = None
    if args.parallel is not None:
        devices = ()
        if args.parallel_devices:
            devices = tuple(
                name.strip() for name in args.parallel_devices.split(",") if name.strip()
            )
        parallelism = ParallelismSpec(
            strategy=args.parallel,
            world_size=2 if args.world_size is None else args.world_size,
            devices=devices,
            microbatches=2 if args.microbatches is None else args.microbatches,
        )
    mode = args.mode
    if mode is None:
        mode = "train" if parallelism is not None else "inference"
    return ProfileSpec(
        model=args.model,
        device=args.device,
        mode=mode,
        tools=tuple(args.tool),
        iterations=args.iterations,
        batch_size=args.batch_size,
        backend=args.backend,
        analysis_model=args.analysis_model,
        fine_grained=args.fine_grained,
        knobs=tuple(knobs.items()),  # type: ignore[arg-type]
        parallelism=parallelism,
        record_to=args.record,
    )


def _maybe_list(args: argparse.Namespace) -> Optional[int]:
    if not (args.list_tools or args.list_models
            or args.list_devices or args.list_backends):
        return None
    from repro.commands.render import print_names

    if args.list_tools:
        print_names(registered_tools())
        return 0
    if args.list_models:
        print_names(REGISTRY.names("models"))
        return 0
    if args.list_devices:
        print_names(REGISTRY.names("devices"))
        return 0
    if args.list_backends:
        print_names(REGISTRY.names("vendors"))
        return 0
    return None


def cmd_profile(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Run the ``profile`` subcommand; returns a process exit code."""
    listed = _maybe_list(args)
    if listed is not None:
        return listed
    if not args.model:
        parser.error("a model name is required unless --list-tools is given")
    if not args.tool:
        parser.error("at least one --tool is required (see --list-tools)")
    if args.parallel is None:
        # Silently dropping these would run a single-GPU profile while the
        # user believes they profiled N ranks.
        stray = [flag for flag, value in (("--world-size", args.world_size),
                                          ("--parallel-devices", args.parallel_devices),
                                          ("--microbatches", args.microbatches))
                 if value is not None]
        if stray:
            parser.error(f"{', '.join(stray)} require(s) --parallel")

    result = execute(spec_from_args(args))
    telemetry = _active_telemetry()
    with telemetry.span("profile.report", json=bool(args.json)):
        from repro.commands.render import print_reports

        reports = result.reports()
        reports["run"] = result.summary.as_dict()
        if telemetry.enabled:
            # Only the *printed* document grows this section; result.reports()
            # stays byte-identical whether telemetry is on or off.
            reports["self_overhead"] = telemetry.self_overhead_report(
                telemetry.elapsed_ns())
        if args.record:
            # Parallel profiles record all ranks into one shared trace, so the
            # path is the same whichever session reports it.
            session = result.session if hasattr(result, "session") else result.sessions[0]
            # In JSON mode the trace path rides inside the document — a bare
            # text line first would make stdout invalid JSON for pipelines.
            if args.json:
                reports["trace"] = {"path": str(session.trace_path)}
            else:
                print(f"recorded event stream to {session.trace_path}")
        print_reports(reports, args.json)
    return 0
