"""Terminal rendering for tool reports.

Reports are nested structures — dicts of per-kernel rows, lists of dataclass
findings, timelines of samples — but the historical ``pasta-profile`` text
output flattened every value through ``str()``, so anything non-scalar
printed as an opaque repr on one line.  :func:`print_text_report` renders the
same reports with real structure: mappings indent their items, lists of rows
become ``-`` items, and dataclasses/enums are normalised first via
:func:`~repro.core.serialization.json_sanitize` so every row prints as
readable ``key: value`` lines.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.core.serialization import json_sanitize

#: Indentation unit for nested report values.
_INDENT = "  "

#: Scalar lists up to this rendered width stay on one line.
_INLINE_WIDTH = 72


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _fmt_scalar(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _render(value: Any, indent: int, lines: list[str], key: str = "") -> None:
    pad = _INDENT * indent
    prefix = f"{pad}{key}: " if key else pad
    if _is_scalar(value):
        lines.append(f"{prefix}{_fmt_scalar(value)}".rstrip())
        return
    if isinstance(value, Mapping):
        if not value:
            lines.append(f"{prefix}{{}}".rstrip())
            return
        lines.append(f"{pad}{key}:" if key else pad.rstrip())
        for sub_key, sub_value in value.items():
            _render(sub_value, indent + 1, lines, key=str(sub_key))
        return
    if isinstance(value, (list, tuple)):
        if not value:
            lines.append(f"{prefix}[]".rstrip())
            return
        if all(_is_scalar(item) for item in value):
            inline = "[" + ", ".join(_fmt_scalar(item) for item in value) + "]"
            if len(inline) <= _INLINE_WIDTH:
                lines.append(f"{prefix}{inline}".rstrip())
                return
        lines.append(f"{pad}{key}:" if key else pad.rstrip())
        item_pad = _INDENT * (indent + 1)
        for item in value:
            if _is_scalar(item):
                lines.append(f"{item_pad}- {_fmt_scalar(item)}")
            elif isinstance(item, Mapping) and item:
                item_lines: list[str] = []
                for sub_key, sub_value in item.items():
                    _render(sub_value, indent + 2, item_lines, key=str(sub_key))
                # Fold the first field onto the "- " bullet.
                first = item_lines[0].lstrip()
                lines.append(f"{item_pad}- {first}")
                lines.extend(item_lines[1:])
            else:
                sub_lines: list[str] = []
                _render(item, indent + 2, sub_lines)
                first = sub_lines[0].lstrip() if sub_lines else ""
                lines.append(f"{item_pad}- {first}")
                lines.extend(sub_lines[1:])
        return
    # json_sanitize has already normalised dataclasses/enums; anything left
    # is a stray object — render its string form rather than crash.
    lines.append(f"{prefix}{value}".rstrip())


def render_report(report: Mapping[str, Any]) -> str:
    """Render one tool's report as indented ``key: value`` lines."""
    lines: list[str] = []
    for key, value in json_sanitize(report).items():
        if key == "tool":
            continue
        _render(value, 1, lines, key=str(key))
    return "\n".join(lines)


def print_text_report(reports: Mapping[str, Mapping[str, Any]]) -> None:
    """Print every tool's report with nested structure preserved."""
    for tool_name, report in reports.items():
        print(f"\n[{tool_name}]")
        print(render_report(report))


def print_reports(reports: Mapping[str, Mapping[str, Any]], as_json: bool) -> None:
    """Emit reports as indented JSON or as structured text."""
    if as_json:
        print(json.dumps(json_sanitize(reports), indent=2, sort_keys=True))
    else:
        print_text_report(reports)


def print_names(names: Iterable[str]) -> None:
    """Print registry names one per line (``--list-...`` helpers)."""
    for name in names:
        print(name)
