"""``pasta trace``: record, inspect, slice and replay PASTA event traces.

Subcommands
-----------

``record``
    Run one simulated workload and persist its normalised event stream::

        pasta trace record resnet18 -o resnet18.pastatrace --device a100

``replay``
    Re-drive a recorded trace through a tool set — optionally under a
    different analysis model — and print the reports, exactly as a live
    ``pasta profile`` run would have::

        pasta trace replay resnet18.pastatrace --tool kernel_frequency
        pasta trace replay resnet18.pastatrace --tool hotness --analysis-model cpu_side

``info``
    Show a trace's header, counts and digest-verification status::

        pasta trace info resnet18.pastatrace

``slice``
    Write a filtered copy of a trace (by category, kernel-launch window, or
    annotation region)::

        pasta trace slice resnet18.pastatrace -o window.pastatrace \\
            --start-grid-id 0 --end-grid-id 49

Recording and replay both run through the unified facade: ``record`` is
:func:`repro.api.execute` with a ``record_to`` destination, ``replay`` is
:func:`repro.api.replay` with the spec assembled from the flags.
"""

from __future__ import annotations

import argparse
import json

from repro.api import ProfileSpec, execute, replay
from repro.core.annotations import RangeFilter
from repro.core.registry import registered_tools
from repro.core.serialization import json_sanitize
from repro.errors import ReproError
from repro.replay.reader import TraceReader


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Populate the ``trace`` subcommand's nested subcommands."""
    sub = parser.add_subparsers(dest="trace_command", required=True)

    record = sub.add_parser("record", help="run a workload and record its event stream")
    # Free-form (validated against the registry at execution time) so that
    # entry-point plugin models work and building the parser never has to
    # import the model zoo.
    record.add_argument("model",
                        help="model to profile (see `pasta profile --list-models`)")
    record.add_argument("--output", "-o", required=True, help="trace file to write")
    record.add_argument("--device", "-d", default="a100",
                        help="device short name (default: a100)")
    record.add_argument("--mode", choices=["inference", "train"], default="inference")
    record.add_argument("--iterations", type=int, default=1)
    record.add_argument("--batch-size", type=int, default=None,
                        help="override the model's paper batch size")
    record.add_argument("--backend", default=None,
                        help="profiling backend: compute_sanitizer, nvbit, rocprofiler")
    record.add_argument("--fine-grained", action="store_true",
                        help="record device-side (instruction-level) events too")
    record.add_argument("--json", action="store_true", help="emit the summary as JSON")
    from repro.commands import add_observability_flags

    add_observability_flags(record)
    record.set_defaults(trace_handler=_cmd_record)

    replay_p = sub.add_parser("replay", help="replay a trace through a tool set")
    replay_p.add_argument("trace", nargs="?",
                          help="path to a recorded trace (optional with --list-tools)")
    replay_p.add_argument("--tool", "-t", action="append", default=[],
                          help="tool name from the registry; may be repeated")
    replay_p.add_argument("--analysis-model", default=None,
                          help="override the recorded analysis model: "
                               "gpu_resident, cpu_side, or a registered plugin name")
    replay_p.add_argument("--start-grid-id", type=int, default=None,
                          help="first kernel-launch index to analyse")
    replay_p.add_argument("--end-grid-id", type=int, default=None,
                          help="last kernel-launch index to analyse")
    replay_p.add_argument("--list-tools", action="store_true",
                          help="list registered tools and exit")
    replay_p.add_argument("--json", action="store_true", help="emit reports as JSON")
    add_observability_flags(replay_p)
    _add_strict_schema_flag(replay_p)
    replay_p.set_defaults(trace_handler=_cmd_replay)

    info = sub.add_parser("info", help="show a trace's header, counts and digest status")
    info.add_argument("trace", help="path to a recorded trace")
    info.add_argument("--json", action="store_true", help="emit the summary as JSON")
    _add_strict_schema_flag(info)
    info.set_defaults(trace_handler=_cmd_info)

    slice_ = sub.add_parser("slice", help="write a filtered copy of a trace")
    slice_.add_argument("trace", help="path to a recorded trace")
    slice_.add_argument("--output", "-o", required=True, help="sliced trace file to write")
    slice_.add_argument("--category", action="append", default=[],
                        help="event category to keep; may be repeated")
    slice_.add_argument("--start-grid-id", type=int, default=None,
                        help="first kernel-launch index to keep")
    slice_.add_argument("--end-grid-id", type=int, default=None,
                        help="last kernel-launch index to keep")
    slice_.add_argument("--region", default=None,
                        help="keep only events inside pasta regions with this label")
    slice_.add_argument("--device-index", type=int, default=None,
                        help="keep only events attributed to this GPU (the "
                             "per-rank view of a multi-GPU recording)")
    _add_strict_schema_flag(slice_)
    slice_.set_defaults(trace_handler=_cmd_slice)


def _add_strict_schema_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--no-strict-schema", dest="strict_schema", action="store_false",
        help="attempt a best-effort read of traces recorded under older "
             "event schemas (unknown record fields are ignored)",
    )


def _cmd_record(args: argparse.Namespace) -> int:
    spec = ProfileSpec(
        model=args.model,
        device=args.device,
        mode=args.mode,
        iterations=args.iterations,
        batch_size=args.batch_size,
        backend=args.backend,
        fine_grained=args.fine_grained,
        record_to=args.output,
    )
    result = execute(spec)
    reader = TraceReader(args.output)
    summary = {
        "trace": str(reader.path),
        "events": reader.footer.event_count,
        "chunks": reader.footer.chunk_count,
        "run": result.summary.as_dict(),
    }
    if args.json:
        print(json.dumps(json_sanitize(summary), indent=2, sort_keys=True))
    else:
        print(f"recorded {summary['events']} events "
              f"({summary['chunks']} chunks) to {summary['trace']}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.commands.render import print_names, print_reports

    if args.list_tools:
        print_names(registered_tools())
        return 0
    if not args.trace:
        raise ReproError("a trace path is required unless --list-tools is given")
    range_filter = None
    if args.start_grid_id is not None or args.end_grid_id is not None:
        range_filter = RangeFilter()
        range_filter.set_grid_window(args.start_grid_id, args.end_grid_id)
    reader = TraceReader(args.trace, strict_schema=args.strict_schema)
    result = replay(
        reader,
        tools=args.tool,
        analysis_model=args.analysis_model,
        range_filter=range_filter,
    )
    reports = result.reports()
    if not args.json:
        print(f"replayed {result.events_replayed} events from {args.trace}")
    print_reports(reports, args.json)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    reader = TraceReader(args.trace, strict_schema=args.strict_schema)
    info = reader.info()
    info["digest_ok"] = reader.verify()
    if args.json:
        print(json.dumps(json_sanitize(info), indent=2, sort_keys=True))
        return 0 if info["digest_ok"] else 1
    header, footer = info["header"], info["footer"]
    print(f"trace:        {info['path']} ({info['file_bytes']} bytes, "
          f"{'indexed' if info['indexed'] else 'no index'})")
    print(f"recorded by:  repro {header['repro_version']} "
          f"(format v{header['format_version']})")
    print(f"device:       {header['device'].get('name')}")
    print(f"backend:      {header['backend']} / {header['analysis_model']}"
          f"{' / fine-grained' if header['fine_grained'] else ''}")
    if header["workload"]:
        print(f"workload:     {header['workload']}")
    print(f"events:       {footer['event_count']} in {info['chunks']} chunks")
    for category, count in footer["category_counts"].items():
        print(f"  {category}: {count}")
    if not footer["complete"]:
        print(f"status:       INCOMPLETE (recording aborted: "
              f"{footer['abort_reason'] or 'unknown'})")
    print(f"digest:       {'ok' if info['digest_ok'] else 'MISMATCH'}")
    return 0 if info["digest_ok"] else 1


def _cmd_slice(args: argparse.Namespace) -> int:
    reader = TraceReader(args.trace, strict_schema=args.strict_schema)
    footer = reader.slice_to(
        args.output,
        categories=args.category or None,
        start_grid_id=args.start_grid_id,
        end_grid_id=args.end_grid_id,
        region=args.region,
        device_index=args.device_index,
    )
    print(f"wrote {footer.event_count} of {reader.footer.event_count} events "
          f"to {args.output}")
    return 0


def cmd_trace(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Dispatch to the selected ``trace`` subcommand."""
    return args.trace_handler(args)
