"""Allow ``python -m repro.commands`` to run the ``pasta`` umbrella CLI."""

import sys

from repro.commands import main

if __name__ == "__main__":
    sys.exit(main())
