"""``pasta campaign``: batch experiment campaigns over the simulated zoo.

Subcommands
-----------

``run``
    Expand a JSON campaign spec into its job grid and execute it over a
    worker pool, serving repeated configurations from the result cache::

        pasta campaign run sweep.json --jobs 4 --store results.jsonl

``report``
    Aggregate a result store into per-model / per-device tables and the
    analysis-model overhead comparison::

        pasta campaign report results.jsonl --by device

``diff``
    Compare two stores job-by-job and flag metric regressions::

        pasta campaign diff baseline.jsonl current.jsonl --threshold 0.1

``watch``
    Tail a running campaign's ``status.jsonl`` (written by ``run --status``)
    and render completion, cache attribution, throughput and ETA live::

        pasta campaign run sweep.json --status runs/ &
        pasta campaign watch runs/

``clean``
    Drop the result cache (and optionally a store)::

        pasta campaign clean --cache-dir .pasta-cache

Spec format
-----------
A campaign spec is a JSON object with grid axes; every list axis multiplies.
Each expanded grid cell is one :class:`~repro.api.spec.ProfileSpec` job::

    {
      "name": "fig9-mini",
      "models": ["alexnet", "resnet18", "bert"],
      "devices": ["a100", "rtx3060"],
      "tools": ["kernel_frequency", ["memory_characteristics", "memory_timeline"]],
      "analysis_models": ["gpu_resident", "cpu_side"],
      "batch_size": 2,
      "knob_sweep": [{}, {"start_grid_id": 0, "end_grid_id": 49}]
    }
"""

from __future__ import annotations

import argparse
import json
import time

from repro.campaign.aggregate import (
    GROUP_FIELDS,
    diff_records,
    overhead_model_comparison,
    render_table,
    rollup,
)
from repro.campaign.cache import ResultCache
from repro.campaign.faults import FaultInjector, FaultPlan, faults_scope
from repro.campaign.leases import DEFAULT_TTL_S, LeaseManager
from repro.campaign.progress import (
    ProgressWriter,
    progress_scope,
    read_status,
    render_status,
    snapshot_status,
    status_path,
)
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.errors import ReproError

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".pasta-cache"

#: Default lease directory for multi-worker (``--workers``) runs.
DEFAULT_LEASE_DIR = ".pasta-leases"


def _parse_workers(text: str) -> tuple[int, int]:
    """Parse ``--workers K/N`` into a 0-based ``(index, count)`` shard."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ReproError(
            f"--workers must look like K/N (e.g. 0/2), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ReproError(
            f"--workers needs 0 <= K < N, got {text!r}"
        )
    return index, count


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Populate the ``campaign`` subcommand's nested subcommands."""
    sub = parser.add_subparsers(dest="campaign_command", required=True)

    run = sub.add_parser("run", help="execute a campaign spec")
    run.add_argument("spec", help="path to a campaign spec JSON file")
    run.add_argument("--jobs", "-j", type=int, default=1,
                     help="worker-pool width (default: 1)")
    run.add_argument("--executor", choices=["thread", "process", "serial"],
                     default="thread", help="worker pool flavour (default: thread)")
    run.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                     help=f"result cache directory (default: {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the result cache for this run")
    run.add_argument("--cache-url", default=None, metavar="URL",
                     help="share results through a pasta serve daemon's "
                          "/v1/cache endpoints instead of a local --cache-dir "
                          "(workers without a shared filesystem)")
    run.add_argument("--store", default=None,
                     help="append job records to this JSONL file")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-job timeout in seconds")
    run.add_argument("--retries", type=int, default=0,
                     help="re-attempts per failing job (default: 0)")
    run.add_argument("--execution", choices=["simulate", "replay"], default=None,
                     help="override the spec's execution mode: 'replay' records "
                          "each distinct workload once and replays it per "
                          "tool/analysis-model combination (runs inline; "
                          "--jobs/--executor/--timeout apply to simulate mode)")
    run.add_argument("--trace-dir", default=None,
                     help="keep replay-mode workload traces in this directory "
                          "(default: a discarded temporary directory)")
    run.add_argument("--retry-backoff", type=float, default=0.0, metavar="S",
                     help="base seconds of exponential backoff (with "
                          "decorrelated jitter) between retry attempts "
                          "(default: 0 = retry immediately)")
    run.add_argument("--retry-backoff-cap", type=float, default=30.0, metavar="S",
                     help="ceiling on one retry backoff sleep (default: 30)")
    run.add_argument("--on-failure", choices=["isolate", "fail_fast", "degrade"],
                     default="isolate",
                     help="per-job failure policy: isolate (record and move "
                          "on, the default), fail_fast (abort the campaign, "
                          "skipping unstarted jobs), degrade (re-run the job "
                          "without tools/knobs and record a partial result)")
    run.add_argument("--workers", default=None, metavar="K/N",
                     help="run as worker K of N over a shared campaign "
                          "directory: this process is primary for digest "
                          "shard K (0-based) and work-steals the rest "
                          "(requires --lease-dir or its default)")
    run.add_argument("--lease-dir", default=None, metavar="DIR",
                     help="job-lease directory for multi-worker runs "
                          f"(default with --workers: {DEFAULT_LEASE_DIR})")
    run.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                     help="seconds without a heartbeat before a worker's "
                          "lease counts as dead and may be taken over "
                          "(default: 30)")
    run.add_argument("--no-steal", action="store_true",
                     help="never take over other workers' cells; wait for "
                          "them (or their lease expiry) instead")
    run.add_argument("--steal-timeout", type=float, default=None, metavar="S",
                     help="give up on cells held by live foreign workers "
                          "after this many seconds (default: wait)")
    run.add_argument("--no-resume", action="store_true",
                     help="do not reconstruct completed work from the store "
                          "on startup (crash-resume is on by default)")
    run.add_argument("--fsync", action="store_true",
                     help="fsync cache and store writes (durability against "
                          "host crashes, not just process crashes)")
    run.add_argument("--faults", default=None, metavar="PLAN",
                     help="arm a fault-injection plan: inline JSON or a path "
                          "to a JSON file (also honoured from the "
                          "PASTA_FAULTS environment variable)")
    run.add_argument("--dry-run", action="store_true",
                     help="print the expanded job grid and exit")
    run.add_argument("--status", default=None, metavar="DIR",
                     help="stream job lifecycle records to DIR/status.jsonl "
                          "for `pasta campaign watch`")
    run.add_argument("--json", action="store_true", help="emit the summary as JSON")
    from repro.commands import add_observability_flags

    add_observability_flags(run)
    run.set_defaults(campaign_handler=_cmd_run)

    report = sub.add_parser("report", help="aggregate a result store")
    report.add_argument("store", help="path to a JSONL result store")
    report.add_argument("--by", choices=list(GROUP_FIELDS), default="model",
                        help="job axis to group by (default: model)")
    report.add_argument("--json", action="store_true", help="emit tables as JSON")
    report.set_defaults(campaign_handler=_cmd_report)

    diff = sub.add_parser("diff", help="compare two result stores")
    diff.add_argument("baseline", help="baseline JSONL result store")
    diff.add_argument("current", help="current JSONL result store")
    diff.add_argument("--threshold", type=float, default=0.05,
                      help="regression threshold as a fraction (default: 0.05)")
    diff.add_argument("--fail-on-regression", action="store_true",
                      help="exit non-zero when any metric regresses")
    diff.add_argument("--json", action="store_true", help="emit the diff as JSON")
    diff.set_defaults(campaign_handler=_cmd_diff)

    watch = sub.add_parser(
        "watch", help="render live progress from a campaign's status.jsonl")
    watch.add_argument("target", help="status.jsonl file, or its directory")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="seconds between refreshes (default: 1.0)")
    watch.add_argument("--once", action="store_true",
                       help="render one snapshot and exit")
    watch.add_argument("--timeout", type=float, default=None,
                       help="give up after this many seconds if the campaign "
                            "has not finished")
    watch.add_argument("--json", action="store_true",
                       help="emit snapshots as JSON instead of text")
    watch.set_defaults(campaign_handler=_cmd_watch)

    clean = sub.add_parser("clean", help="drop the result cache")
    clean.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"result cache directory (default: {DEFAULT_CACHE_DIR})")
    clean.add_argument("--store", default=None,
                       help="also delete this JSONL result store")
    clean.set_defaults(campaign_handler=_cmd_clean)


def _build_cache(args: argparse.Namespace):
    """The run's cache backend: none, HTTP-over-daemon, or local directory."""
    if args.no_cache:
        return None
    if args.cache_url:
        from repro.campaign.cache_http import HttpResultCache

        return HttpResultCache(args.cache_url)
    return ResultCache(args.cache_dir, fsync=args.fsync)


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.obs.telemetry import active as _active_telemetry

    with _active_telemetry().span("campaign.setup", spec=args.spec):
        spec = CampaignSpec.load(args.spec)
        jobs = spec.expand()
        if args.dry_run:
            print(f"campaign {spec.name!r}: {len(jobs)} jobs")
            for job in jobs:
                print(f"  {job.label()}")
            return 0
        shard = _parse_workers(args.workers) if args.workers else None
        leases = None
        if shard is not None or args.lease_dir is not None:
            leases = LeaseManager(
                args.lease_dir or DEFAULT_LEASE_DIR,
                ttl_s=args.lease_ttl if args.lease_ttl is not None else DEFAULT_TTL_S,
            )
        scheduler = CampaignScheduler(
            jobs=args.jobs,
            executor=args.executor,
            timeout_s=args.timeout,
            retries=args.retries,
            backoff_s=args.retry_backoff,
            backoff_cap_s=args.retry_backoff_cap,
            cache=_build_cache(args),
            store=ResultStore(args.store, fsync=args.fsync) if args.store else None,
            execution=args.execution,
            trace_dir=args.trace_dir,
            resume=not args.no_resume,
            leases=leases,
            shard=shard,
            steal=not args.no_steal,
            steal_timeout_s=args.steal_timeout,
            on_failure=args.on_failure,
        )
    with ExitStack() as stack:
        if args.faults:
            stack.enter_context(
                faults_scope(FaultInjector(FaultPlan.parse(args.faults)))
            )
        if args.status:
            # Scoped (not passed to the scheduler) so the api runner's in-job
            # events — per-rank parallel progress — reach the same stream.
            stack.enter_context(progress_scope(ProgressWriter(args.status)))
        result = scheduler.run(spec)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        replay_note = (
            f", {result.workloads_recorded} workload(s) simulated"
            if result.execution == "replay" else ""
        )
        fabric_bits = [
            f"{count} {label}"
            for count, label in (
                (result.stolen, "stolen"),
                (result.degraded, "degraded"),
                (result.skipped, "skipped"),
            )
            if count
        ]
        fabric_note = f", {', '.join(fabric_bits)}" if fabric_bits else ""
        print(f"campaign {result.name!r}: {result.total} jobs "
              f"({result.executed} executed, {result.cached} cached, "
              f"{result.failed} failed{fabric_note}{replay_note}) "
              f"in {result.duration_s:.2f}s")
        for outcome in result.failures():
            print(f"  FAILED {outcome.job.label()}: [{outcome.status}] {outcome.error}")
            # Every attempt is accounted for, not just the last one.
            for entry in outcome.errors[:-1]:
                print(f"    attempt {entry.get('attempt')}: {entry.get('error')}")
    return 0 if result.failed == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    latest = list(ResultStore(args.store).latest_by_digest().values())
    if not latest:
        raise ReproError(f"no records in store {args.store!r}")
    table = rollup(latest, by=args.by)
    comparison = overhead_model_comparison(latest)
    if args.json:
        print(json.dumps({"rollup": table, "analysis_model_comparison": comparison},
                         indent=2, sort_keys=True))
        return 0
    print(f"# roll-up by {args.by}")
    print(render_table(table))
    if comparison:
        print("\n# analysis-model overhead comparison")
        print(render_table(comparison))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    baseline = ResultStore(args.baseline).load()
    current = ResultStore(args.current).load()
    result = diff_records(baseline, current, threshold=args.threshold)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(f"matched {result['matched']} jobs; {result['regressions']} regressed "
              f"(threshold {args.threshold:+.0%}); "
              f"{result['only_in_baseline']} only in baseline, "
              f"{result['only_in_current']} only in current")
        for row in result["rows"]:  # type: ignore[union-attr]
            if not row["regressed"]:
                continue
            tools = "+".join(row["tools"]) if row["tools"] else "overhead-only"
            for metric, cell in row["metrics"].items():
                if cell["regressed"]:
                    print(f"  REGRESSED {row['job']}/{row['device']}/{tools} {metric}: "
                          f"{cell['baseline']:.4g} -> {cell['current']:.4g} "
                          f"(x{cell['ratio']:.3f})")
    if args.fail_on_regression and result["regressions"]:
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    path = status_path(args.target)
    deadline = (
        time.monotonic() + args.timeout if args.timeout is not None else None
    )
    # Wait for the first record if the campaign has not started writing yet.
    while not path.exists():
        if args.once:
            raise ReproError(f"no status file at {path}")
        if deadline is not None and time.monotonic() >= deadline:
            raise ReproError(f"no status file at {path} after {args.timeout}s")
        time.sleep(min(args.interval, 0.2))
    last_rendered: str | None = None
    while True:
        snapshot = snapshot_status(read_status(path))
        rendered = (
            json.dumps(snapshot, indent=2, sort_keys=True) if args.json
            else render_status(snapshot)
        )
        if rendered != last_rendered:
            if last_rendered is not None and not args.json:
                print()
            print(rendered)
            last_rendered = rendered
        if args.once or snapshot.get("ended"):
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            print(f"watch timeout after {args.timeout}s (campaign still running)")
            return 1
        time.sleep(args.interval)


def _cmd_clean(args: argparse.Namespace) -> int:
    removed = ResultCache(args.cache_dir).clear()
    print(f"removed {removed} cached result(s) from {args.cache_dir}")
    if args.store:
        store = ResultStore(args.store)
        existed = store.path.exists()
        store.clear()
        if existed:
            print(f"deleted store {args.store}")
    return 0


def cmd_campaign(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Dispatch to the selected ``campaign`` subcommand."""
    return args.campaign_handler(args)
