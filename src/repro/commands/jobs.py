"""``pasta submit`` and ``pasta jobs`` — the daemon's command-line clients.

Submit a spec file and stream its records (JSONL on stdout, one protocol
record per line)::

    pasta submit spec.json --url http://127.0.0.1:8080

or fire-and-forget with ``--no-wait`` (prints the job record; re-attach
later with ``pasta jobs stream <id>``).  Inspect and manage jobs::

    pasta jobs list   --url ... [--namespace team-a]
    pasta jobs status <job-id>
    pasta jobs stream <job-id> [--from N]
    pasta jobs cancel <job-id>
    pasta jobs health

The daemon URL defaults to the ``PASTA_SERVE_URL`` environment variable,
then ``http://127.0.0.1:8080``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.errors import ReproError
from repro.serve.protocol import TERMINAL_STATES

#: Environment variable naming the default daemon URL.
URL_ENV = "PASTA_SERVE_URL"

_FALLBACK_URL = "http://127.0.0.1:8080"


def _default_url() -> str:
    return os.environ.get(URL_ENV) or _FALLBACK_URL


def _add_url_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default=None,
                        help=f"daemon URL (default: ${URL_ENV} or "
                             f"{_FALLBACK_URL})")
    parser.add_argument("--namespace", default=None,
                        help="client namespace for multi-tenant quota "
                             "accounting (default: 'default')")


def _client(args: argparse.Namespace):
    from repro.serve.client import connect

    url = args.url or _default_url()
    namespace = args.namespace or "default"
    return connect(url, namespace=namespace)


def _emit(record: dict[str, object]) -> None:
    print(json.dumps(record, sort_keys=True), flush=True)


# ---------------------------------------------------------------------- #
# pasta submit
# ---------------------------------------------------------------------- #
def configure_submit_parser(parser: argparse.ArgumentParser) -> None:
    """Populate the ``submit`` subcommand's flags."""
    parser.add_argument("spec",
                        help="path to a spec JSON file (a ProfileSpec or a "
                             "CampaignSpec dict), or '-' for stdin")
    _add_url_flag(parser)
    parser.add_argument("--kind", choices=["profile", "campaign"], default=None,
                        help="force the submission kind (default: inferred "
                             "from the spec's fields)")
    parser.add_argument("--no-wait", action="store_true",
                        help="print the job record and exit without waiting "
                             "for the result")


def cmd_submit(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Submit the spec; streams records until terminal unless ``--no-wait``."""
    if args.spec == "-":
        raw = sys.stdin.read()
    else:
        try:
            with open(args.spec, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except OSError as error:
            raise ReproError(f"cannot read spec file {args.spec!r}: {error}")
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ReproError(f"spec file {args.spec!r} is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ReproError(f"spec file {args.spec!r} must hold a JSON object")

    client = _client(args)
    handle = client.submit(payload, kind=args.kind)
    if args.no_wait:
        _emit(handle.status())
        return 0
    final_state: Optional[str] = None
    for record in handle.stream():
        _emit(record)
        if record.get("type") == "job" and record.get("state") in TERMINAL_STATES:
            final_state = str(record.get("state"))
    return 0 if final_state == "done" else 1


# ---------------------------------------------------------------------- #
# pasta jobs
# ---------------------------------------------------------------------- #
def configure_jobs_parser(parser: argparse.ArgumentParser) -> None:
    """Populate the ``jobs`` subcommand's nested subcommands."""
    sub = parser.add_subparsers(dest="jobs_command", required=True)

    list_parser = sub.add_parser("list", help="list jobs as JSONL status records")
    _add_url_flag(list_parser)
    list_parser.add_argument("--all", action="store_true",
                             help="list every namespace's jobs, not just "
                                  "this client's")
    list_parser.set_defaults(jobs_handler=_cmd_list)

    status = sub.add_parser("status", help="one job's current status record")
    status.add_argument("job_id")
    _add_url_flag(status)
    status.set_defaults(jobs_handler=_cmd_status)

    stream = sub.add_parser(
        "stream", help="follow a job's records (resumable with --from)")
    stream.add_argument("job_id")
    stream.add_argument("--from", dest="from_index", type=int, default=0,
                        metavar="N", help="resume after the first N records")
    _add_url_flag(stream)
    stream.set_defaults(jobs_handler=_cmd_stream)

    cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job_id")
    _add_url_flag(cancel)
    cancel.set_defaults(jobs_handler=_cmd_cancel)

    health = sub.add_parser("health", help="the daemon's health record")
    _add_url_flag(health)
    health.set_defaults(jobs_handler=_cmd_health)


def cmd_jobs(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Dispatch to the selected ``jobs`` subcommand."""
    return args.jobs_handler(args)


def _cmd_list(args: argparse.Namespace) -> int:
    for record in _client(args).jobs(all_namespaces=args.all):
        _emit(record)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    _emit(_client(args).status(args.job_id))
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    final_state: Optional[str] = None
    for record in _client(args).stream(args.job_id, args.from_index):
        _emit(record)
        if record.get("type") == "job" and record.get("state") in TERMINAL_STATES:
            final_state = str(record.get("state"))
    return 0 if final_state in (None, "done") else 1


def _cmd_cancel(args: argparse.Namespace) -> int:
    _emit(_client(args).cancel(args.job_id))
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    _emit(_client(args).health())
    return 0
