"""``pasta telemetry``: inspect the profiler's own telemetry files.

Subcommands
-----------

``summary``
    Run identity, span-tree coverage, per-span aggregates and final metrics
    of one ``telemetry.jsonl``::

        pasta telemetry summary runs/telemetry.jsonl
        pasta telemetry summary runs/            # <dir>/telemetry.jsonl

``top``
    Spans ranked by *self* time (wall time not covered by child spans) —
    where the profiler actually spent its clock::

        pasta telemetry top runs/ -n 15

``export``
    The raw records as a JSON array, or the reconstructed span tree as
    indented text::

        pasta telemetry export runs/ > records.json
        pasta telemetry export runs/ --tree

All three read files produced by ``--telemetry DIR`` on
``pasta profile | campaign run | trace record | trace replay`` (or by the
:class:`repro.obs.Telemetry` API directly), including files from crashed
runs — whatever was flushed before the crash is analysable.
"""

from __future__ import annotations

import argparse
import json

from repro.errors import ReproError
from repro.obs.report import (
    render_summary,
    render_top,
    render_tree,
    summarize,
    top_spans,
)
from repro.obs.sink import read_records, telemetry_path


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Populate the ``telemetry`` subcommand's nested subcommands."""
    sub = parser.add_subparsers(dest="telemetry_command", required=True)

    summary = sub.add_parser(
        "summary", help="summarise one telemetry file (coverage, spans, metrics)")
    summary.add_argument("target", help="telemetry.jsonl file, or its directory")
    summary.add_argument("--json", action="store_true", help="emit the summary as JSON")
    summary.set_defaults(telemetry_handler=_cmd_summary)

    top = sub.add_parser("top", help="rank spans by self time")
    top.add_argument("target", help="telemetry.jsonl file, or its directory")
    top.add_argument("-n", "--limit", type=int, default=10,
                     help="rows to show (default: 10)")
    top.add_argument("--json", action="store_true", help="emit the ranking as JSON")
    top.set_defaults(telemetry_handler=_cmd_top)

    export = sub.add_parser(
        "export", help="dump the raw records (or the span tree) of one file")
    export.add_argument("target", help="telemetry.jsonl file, or its directory")
    export.add_argument("--tree", action="store_true",
                        help="render the reconstructed span tree instead of JSON")
    export.add_argument("--max-depth", type=int, default=None,
                        help="limit --tree output to this span depth")
    export.set_defaults(telemetry_handler=_cmd_export)


def _load(target: str) -> list[dict[str, object]]:
    path = telemetry_path(target)
    if not path.exists():
        raise ReproError(f"no telemetry file at {path}")
    return read_records(path)


def _cmd_summary(args: argparse.Namespace) -> int:
    summary = summarize(_load(args.target))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    ranked = top_spans(_load(args.target), limit=args.limit)
    if args.json:
        print(json.dumps(ranked, indent=2, sort_keys=True))
    else:
        print(render_top(ranked))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    records = _load(args.target)
    if args.tree:
        print(render_tree(records, max_depth=args.max_depth))
    else:
        print(json.dumps(records, indent=2, sort_keys=True))
    return 0


def cmd_telemetry(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Dispatch to the selected ``telemetry`` subcommand."""
    return args.telemetry_handler(args)
