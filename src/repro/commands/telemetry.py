"""``pasta telemetry``: inspect, export and compare the profiler's telemetry.

Subcommands
-----------

``summary``
    Run identity, span-tree coverage, per-span aggregates and final metrics
    of one ``telemetry.jsonl``::

        pasta telemetry summary runs/telemetry.jsonl
        pasta telemetry summary runs/ --format json

``top``
    Spans ranked by *self* time (wall time not covered by child spans) —
    where the profiler actually spent its clock::

        pasta telemetry top runs/ -n 15 --format json

``export``
    Convert one run (or several, merged) into an analysis format::

        pasta telemetry export runs/ --format chrome -o trace.chrome.json
        pasta telemetry export rank0/ rank1/ --format chrome -o merged.json
        pasta telemetry export runs/ --format folded | flamegraph.pl > f.svg
        pasta telemetry export runs/ --format jsonl
        pasta telemetry export runs/ --tree

    ``chrome`` produces Chrome Trace Event Format (open in Perfetto or
    ``chrome://tracing``): spans as duration events, per-rank spans in their
    own thread lanes, metric counters as counter tracks.  ``folded`` is
    Brendan-Gregg folded stacks for ``flamegraph.pl``.  Multiple targets
    merge into one document (one pid per run for chrome, summed stacks for
    folded); ``json``/``jsonl``/``tree`` accept a single target.

``list``
    Index every telemetry run under a directory (run id, rank, span count,
    wall time, spec digest, clean-close state)::

        pasta telemetry list runs/

``diff``
    Compare two runs span-name by span-name and counter by counter; exits
    non-zero when any span's wall time regressed past ``--threshold``, which
    makes it a CI gate::

        pasta telemetry diff baseline/ current/ --threshold 0.10
        pasta telemetry diff 8f3a main-runs/current --root runs/

    Runs are named by path or by run-id prefix (resolved under ``--root``).

All subcommands read files produced by ``--telemetry DIR`` on
``pasta profile | campaign run | trace record | trace replay`` (or by the
:class:`repro.obs.Telemetry` API directly), including files from crashed
runs — whatever was flushed before the crash is analysable.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.obs.export import export_chrome, export_folded
from repro.obs.history import (
    RunIndex,
    diff_runs,
    render_diff,
    render_run_list,
    resolve_run_records,
)
from repro.obs.report import (
    render_summary,
    render_top,
    render_tree,
    summarize,
    top_spans,
)
from repro.obs.sink import read_records, telemetry_path


def _add_format_flag(parser: argparse.ArgumentParser, choices: list[str]) -> None:
    """``--format`` plus the original ``--json`` spelling as a const alias."""
    parser.add_argument("--format", choices=choices, default="text",
                        help="output format (default: text)")
    parser.add_argument("--json", action="store_const", dest="format",
                        const="json", help="shorthand for --format json")


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Populate the ``telemetry`` subcommand's nested subcommands."""
    sub = parser.add_subparsers(dest="telemetry_command", required=True)

    summary = sub.add_parser(
        "summary", help="summarise one telemetry file (coverage, spans, metrics)")
    summary.add_argument("target", help="telemetry.jsonl file, or its directory")
    _add_format_flag(summary, ["text", "json"])
    summary.set_defaults(telemetry_handler=_cmd_summary)

    top = sub.add_parser("top", help="rank spans by self time")
    top.add_argument("target", help="telemetry.jsonl file, or its directory")
    top.add_argument("-n", "--limit", type=int, default=10,
                     help="rows to show (default: 10)")
    _add_format_flag(top, ["text", "json"])
    top.set_defaults(telemetry_handler=_cmd_top)

    export = sub.add_parser(
        "export", help="convert telemetry runs to chrome/folded/json formats")
    export.add_argument("targets", nargs="+", metavar="target",
                        help="telemetry.jsonl file(s), or their directories "
                             "(several merge into one chrome/folded document)")
    export.add_argument("--format",
                        choices=["chrome", "folded", "json", "jsonl", "tree"],
                        default="json",
                        help="chrome = Trace Event Format (Perfetto), folded = "
                             "flamegraph.pl stacks, json = record array, jsonl "
                             "= raw lines, tree = indented span tree "
                             "(default: json)")
    export.add_argument("--tree", action="store_const", dest="format",
                        const="tree", help="shorthand for --format tree")
    export.add_argument("-o", "--output", default=None,
                        help="write to this file instead of stdout")
    export.add_argument("--max-depth", type=int, default=None,
                        help="limit --format tree output to this span depth")
    export.add_argument("--no-validate", action="store_true",
                        help="skip the strict Chrome Trace schema check")
    export.set_defaults(telemetry_handler=_cmd_export)

    list_cmd = sub.add_parser(
        "list", help="index every telemetry run under a directory")
    list_cmd.add_argument("root", nargs="?", default=".",
                          help="directory to scan for *.jsonl telemetry runs "
                               "(default: .)")
    _add_format_flag(list_cmd, ["text", "json"])
    list_cmd.set_defaults(telemetry_handler=_cmd_list)

    diff = sub.add_parser(
        "diff", help="per-span/per-counter comparison of two telemetry runs")
    diff.add_argument("baseline", help="baseline run: a path or run-id prefix")
    diff.add_argument("current", help="current run: a path or run-id prefix")
    diff.add_argument("--root", default=".",
                      help="directory run-id prefixes are resolved under "
                           "(default: .)")
    diff.add_argument("--threshold", type=float, default=0.05,
                      help="wall-time regression threshold as a fraction "
                           "(default: 0.05 = +5%%)")
    diff.add_argument("--min-wall-ms", type=float, default=1.0,
                      help="ignore spans whose baseline wall time is below "
                           "this many milliseconds (default: 1.0)")
    _add_format_flag(diff, ["text", "json"])
    diff.set_defaults(telemetry_handler=_cmd_diff)


def _load(target: str) -> list[dict[str, object]]:
    path = telemetry_path(target)
    if not path.exists():
        raise ReproError(f"no telemetry file at {path}")
    return read_records(path)


def _cmd_summary(args: argparse.Namespace) -> int:
    summary = summarize(_load(args.target))
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    ranked = top_spans(_load(args.target), limit=args.limit)
    if args.format == "json":
        print(json.dumps(ranked, indent=2, sort_keys=True))
    else:
        print(render_top(ranked))
    return 0


def _emit(text: str, output: Optional[str]) -> None:
    if output is None:
        print(text)
    else:
        Path(output).write_text(text + "\n", encoding="utf-8")


def _cmd_export(args: argparse.Namespace) -> int:
    runs = [_load(target) for target in args.targets]
    if args.format == "chrome":
        document = export_chrome(runs, validate=not args.no_validate)
        _emit(json.dumps(document, indent=2, sort_keys=True), args.output)
        return 0
    if args.format == "folded":
        _emit(export_folded(runs), args.output)
        return 0
    if len(runs) > 1:
        raise ReproError(
            f"--format {args.format} reads a single run; "
            f"got {len(runs)} targets (merging is a chrome/folded feature)"
        )
    records = runs[0]
    if args.format == "tree":
        _emit(render_tree(records, max_depth=args.max_depth), args.output)
    elif args.format == "jsonl":
        _emit("\n".join(json.dumps(r, sort_keys=True) for r in records),
              args.output)
    else:
        _emit(json.dumps(records, indent=2, sort_keys=True), args.output)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    index = RunIndex(args.root)
    if args.format == "json":
        print(json.dumps([entry.to_dict() for entry in index],
                         indent=2, sort_keys=True))
    else:
        print(render_run_list(index.entries))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    _, baseline = resolve_run_records(args.baseline, root=args.root)
    _, current = resolve_run_records(args.current, root=args.root)
    result = diff_runs(
        baseline, current,
        threshold=args.threshold,
        min_wall_ns=int(args.min_wall_ms * 1e6),
    )
    if args.format == "json":
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(render_diff(result))
    # Non-zero exit on regression is the point: `pasta telemetry diff` is a
    # CI gate (see examples/telemetry_regression_gate.py).
    return 1 if result["regressions"] else 0


def cmd_telemetry(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Dispatch to the selected ``telemetry`` subcommand."""
    return args.telemetry_handler(args)
