"""Exception hierarchy shared across the PASTA reproduction.

Every package raises errors that derive from :class:`ReproError` so callers can
catch framework-level failures without masking programming errors (``TypeError``
and friends are deliberately left alone).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class GpuSimError(ReproError):
    """Base class for errors raised by the GPU simulator substrate."""


class DeviceError(GpuSimError):
    """Raised for invalid device configuration or device selection."""


class OutOfMemoryError(GpuSimError):
    """Raised when a device allocation cannot be satisfied.

    Mirrors ``cudaErrorMemoryAllocation`` / ``hipErrorOutOfMemory``.
    """


class InvalidAddressError(GpuSimError):
    """Raised when an access references memory outside any live allocation."""


class StreamError(GpuSimError):
    """Raised for invalid stream or event operations."""


class KernelError(GpuSimError):
    """Raised when a kernel launch is malformed (e.g. empty grid)."""


class UvmError(GpuSimError):
    """Raised for invalid unified-virtual-memory operations."""


class FrameworkError(ReproError):
    """Base class for errors raised by the DL framework substrate."""


class AllocatorError(FrameworkError):
    """Raised when the caching allocator is misused (double free, etc.)."""


class ShapeError(FrameworkError):
    """Raised when tensor shapes are incompatible for an operator."""


class ModelError(FrameworkError):
    """Raised for invalid model configuration."""


class RegistryError(ReproError):
    """Raised for registry namespace configuration and lookup problems."""


class PastaError(ReproError):
    """Base class for errors raised by the PASTA core framework."""


class HandlerError(PastaError):
    """Raised for event-handler configuration problems."""


class ProcessorError(PastaError):
    """Raised for event-processor dispatch problems."""


class ToolError(PastaError):
    """Raised for tool registration / selection problems."""


class AnnotationError(PastaError):
    """Raised for unbalanced or misused ``pasta.start()`` / ``pasta.stop()``."""


class VendorError(ReproError):
    """Base class for errors raised by simulated vendor profiling backends."""


class TraceError(ReproError):
    """Base class for errors raised by the trace record/replay subsystem."""


class TraceFormatError(TraceError):
    """Raised when a trace file is malformed or uses an unsupported format."""


class TraceSchemaError(TraceFormatError):
    """Raised when a trace was recorded under incompatible event schemas."""
