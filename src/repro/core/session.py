"""PASTA session: the user-facing entry point wiring all three modules together.

A :class:`PastaSession` owns one event handler, one event processor and a set
of tools for a single target runtime (GPU).  It corresponds to what the
paper's ``accelprof -t <tool> <executable>`` launcher sets up before the target
application runs: attach to the vendor profiling library, attach to the DL
framework's callbacks, configure the analysis range, and route everything into
the selected tools.

Typical usage::

    runtime = create_runtime(A100)
    ctx = FrameworkContext(runtime)
    session = PastaSession(runtime, tools=[KernelFrequencyTool()])
    session.attach_framework(ctx)
    with session:
        engine.run_inference(model)
    print(session.reports())
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from repro.errors import PastaError
from repro.core.annotations import RangeFilter, _set_active_session
from repro.core.handler import PastaEventHandler
from repro.core.overhead import OverheadAccountant
from repro.core.processor import PastaEventProcessor
from repro.core.tool import PastaTool
from repro.dlframework.context import FrameworkContext
from repro.gpusim.costmodel import CostModelConfig
from repro.gpusim.device import MiB
from repro.gpusim.runtime import AcceleratorRuntime
from repro.gpusim.trace import AnalysisModel
from repro.core.registry import REGISTRY
from repro.obs.metrics import SIZE_BUCKETS
from repro.obs.telemetry import active as _active_telemetry
from repro.vendors import (
    ComputeSanitizerBackend,
    ProfilingBackend,
    default_backend_for_vendor,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (replay imports core)
    from repro.core.overhead import OverheadAccountant as _OverheadAccountant
    from repro.replay.writer import TraceWriter

#: Device memory PASTA reserves for its profiling buffers (Section VI-A).
PROFILER_RESERVED_BYTES = 4 * MiB

#: Histogram bucket bounds for events/second throughput samples.
EVENT_RATE_BUCKETS = (100.0, 1e3, 1e4, 1e5, 1e6, 1e7)


def _make_analysis_model(spec: Union[str, AnalysisModel]) -> AnalysisModel:
    """Accept an :class:`AnalysisModel` member or a registered name.

    Campaign job specs are plain JSON, so sessions must be constructible from
    ``"gpu_resident"`` / ``"cpu_side"`` strings as well as enum members; the
    string form resolves through the ``analysis_models`` registry namespace
    so plugins can register aliases.
    """
    if isinstance(spec, AnalysisModel):
        return spec
    if not isinstance(spec, str):
        valid = REGISTRY.names("analysis_models")
        raise PastaError(f"unknown analysis model {spec!r}; valid: {valid}")
    resolved = REGISTRY.get("analysis_models", spec)
    if not isinstance(resolved, AnalysisModel):
        resolved = AnalysisModel(str(resolved))
    return resolved


def collect_reports(
    tools: Sequence[PastaTool],
    overhead_accountant: Optional["_OverheadAccountant"] = None,
    dry_run: bool = False,
) -> dict[str, dict[str, object]]:
    """Collect per-tool reports keyed by ``tool_name``, plus ``"overhead"``.

    Two tools sharing a ``tool_name`` (e.g. two instances of the same tool
    class) would silently overwrite each other's entry, so duplicates raise
    :class:`PastaError` instead; the ``"overhead"`` key is likewise reserved
    for the accountant's report.  With ``dry_run`` only the name validation
    runs — used to fail fast before any events are processed.
    """
    seen: dict[str, PastaTool] = {}
    for tool in tools:
        if tool.tool_name in seen:
            raise PastaError(
                f"two tools report under the name {tool.tool_name!r} "
                f"({type(seen[tool.tool_name]).__name__} and {type(tool).__name__}); "
                f"give each instance a distinct tool_name"
            )
        seen[tool.tool_name] = tool
    if overhead_accountant is not None and "overhead" in seen:
        raise PastaError(
            "tool name 'overhead' collides with the session overhead report; "
            "rename the tool or disable overhead measurement"
        )
    if dry_run:
        return {}
    out: dict[str, dict[str, object]] = {name: tool.report() for name, tool in seen.items()}
    if overhead_accountant is not None:
        out["overhead"] = overhead_accountant.report()
    return out


def _make_backend(spec: Union[str, ProfilingBackend, None], runtime: AcceleratorRuntime) -> ProfilingBackend:
    if isinstance(spec, ProfilingBackend):
        return spec
    if spec is None:
        return default_backend_for_vendor(runtime.vendor)
    return REGISTRY.create("vendors", spec)  # type: ignore[return-value]


class PastaSession:
    """One profiling session over one simulated GPU runtime."""

    def __init__(
        self,
        runtime: AcceleratorRuntime,
        tools: Optional[Sequence[Union[PastaTool, str]]] = None,
        vendor_backend: Union[str, ProfilingBackend, None] = None,
        analysis_model: Union[str, AnalysisModel] = AnalysisModel.GPU_RESIDENT,
        enable_fine_grained: bool = False,
        range_filter: Optional[RangeFilter] = None,
        measure_overhead: bool = True,
        cost_config: Optional[CostModelConfig] = None,
        record_to: Union[str, Path, None] = None,
        trace_metadata: Optional[Mapping[str, object]] = None,
        trace_writer: Optional["TraceWriter"] = None,
    ) -> None:
        self.runtime = runtime
        self.backend = _make_backend(vendor_backend, runtime)
        self.analysis_model = _make_analysis_model(analysis_model)
        self.enable_fine_grained = enable_fine_grained
        self.handler = PastaEventHandler()
        self.overhead_accountant: Optional[OverheadAccountant] = None
        if measure_overhead:
            self.overhead_accountant = OverheadAccountant(
                device_spec=runtime.device.spec,
                analysis_model=self.analysis_model,
                backend=self.backend.instrumentation,
                config=cost_config,
            )
        self.processor = PastaEventProcessor(
            address_resolver=self._resolve_address,
            range_filter=range_filter,
            enable_gpu_preprocessing=True,
            overhead_accountant=self.overhead_accountant,
        )
        self.handler.set_sink(self.processor.submit)
        self._tools: list[PastaTool] = []
        for tool in tools or ():
            self.add_tool(tool)
        self._attached_contexts: list[FrameworkContext] = []
        self._started = False
        #: Telemetry span covering start()..stop(); None while telemetry is
        #: disabled so the stop() sampling pass is skipped entirely.
        self._obs_span = None
        self._trace_writer: Optional["TraceWriter"] = None
        #: Whether this session created (and therefore closes) the writer.
        #: Multi-GPU runs share one externally-owned writer across the
        #: per-rank sessions, so each rank taps it but never finalises it.
        self._owns_trace_writer = True
        self.trace_path: Optional[Path] = None
        if record_to is not None and trace_writer is not None:
            raise PastaError(
                "pass either record_to (session-owned trace file) or "
                "trace_writer (shared, externally-owned writer), not both"
            )
        if trace_writer is not None:
            self._trace_writer = trace_writer
            self._owns_trace_writer = False
            self.trace_path = trace_writer.path
            self.handler.set_sink(self._record_and_submit)
        if record_to is not None:
            # Imported lazily: repro.replay builds on repro.core, not the
            # other way around, so the tap must not create an import cycle.
            from repro.replay.format import TraceHeader
            from repro.replay.writer import TraceWriter

            header = TraceHeader.for_recording(
                device_spec=runtime.device.spec,
                analysis_model=self.analysis_model.value,
                backend=self.backend.name,
                instrumentation=self.backend.instrumentation.value,
                fine_grained=self.enable_fine_grained,
                workload=trace_metadata,
            )
            self._trace_writer = TraceWriter(record_to, header)
            self.trace_path = self._trace_writer.path
            self.handler.set_sink(self._record_and_submit)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def add_tool(self, tool: Union[PastaTool, str]) -> PastaTool:
        """Register an analysis tool with the session.

        Accepts either a :class:`PastaTool` instance or a registry name
        (``"kernel_frequency"``), mirroring how ``analysis_model`` accepts
        both enum members and strings.  Tool names must be unique within a
        session: reports are keyed by ``tool_name``, so a second tool with
        the same name would silently shadow the first's report.
        """
        if isinstance(tool, str):
            # The registry seeds the bundled tool collection on first use.
            from repro.core.registry import create_tool

            tool = create_tool(tool)
        if any(existing.tool_name == tool.tool_name for existing in self._tools):
            raise PastaError(
                f"a tool named {tool.tool_name!r} is already registered with this "
                f"session; give each instance a distinct tool_name"
            )
        self._tools.append(tool)
        self.processor.register_tool(tool)
        if tool.requires_fine_grained:
            self.enable_fine_grained = True
        return tool

    @property
    def tools(self) -> list[PastaTool]:
        """Tools registered with this session."""
        return list(self._tools)

    def attach_framework(self, ctx: FrameworkContext) -> None:
        """Attach to a DL framework context (operator + tensor callbacks)."""
        if ctx in self._attached_contexts:
            return
        self.handler.attach_framework(ctx.callbacks, device_index=ctx.runtime.device.index)
        self._attached_contexts.append(ctx)

    def _resolve_address(self, address: int) -> Optional[tuple[int, int]]:
        obj = self.runtime.allocator.lookup(address, live_only=False)
        if obj is None:
            return None
        return obj.object_id, obj.size

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "PastaSession":
        """Attach to the vendor backend and begin profiling."""
        if self._started:
            raise PastaError("session is already started")
        if not self.backend.is_attached:
            self.backend.attach(self.runtime)
        self.handler.attach_vendor_backend(self.backend)
        if self.enable_fine_grained:
            if isinstance(self.backend, ComputeSanitizerBackend):
                self.backend.sanitizer_patch_module("all")
            else:
                self.backend.enable_instruction_tracing(True)
        self.runtime.device.reserve_profiler_memory(PROFILER_RESERVED_BYTES)
        for tool in self._tools:
            tool.on_session_start()
        _set_active_session(self)
        telemetry = _active_telemetry()
        if telemetry.enabled:
            self._obs_span = telemetry.span(
                "session.run",
                device=self.runtime.device.index,
                backend=self.backend.name,
                analysis_model=self.analysis_model.value,
                fine_grained=self.enable_fine_grained,
                recording=self._trace_writer is not None,
            )
            self.processor.dispatch_unit.enable_hook_timing()
        self._started = True
        return self

    def stop(self) -> None:
        """Stop profiling, detach from the vendor backend, finalise the trace."""
        if not self._started:
            return
        if self._obs_span is not None:
            self._sample_telemetry(self._obs_span)
            self._obs_span.finish()
            self._obs_span = None
        for tool in self._tools:
            tool.on_session_end()
        self.handler.detach_vendor_backend(self.backend)
        self.backend.detach()
        self.runtime.device.reserve_profiler_memory(0)
        _set_active_session(None)
        self._started = False
        if (
            self._owns_trace_writer
            and self._trace_writer is not None
            and not self._trace_writer.closed
        ):
            self._trace_writer.close()

    # ------------------------------------------------------------------ #
    # telemetry sampling
    # ------------------------------------------------------------------ #
    def annotate_telemetry(self, **attrs) -> None:
        """Attach attributes (e.g. a parallel rank) to the session span."""
        if self._obs_span is not None:
            for key, value in attrs.items():
                self._obs_span.set_attr(key, value)

    def _sample_telemetry(self, span) -> None:
        """Pull the pipeline's existing counters onto the session span.

        Telemetry never intercepts individual events: the hot path already
        counts what it does, and this one sampling pass at stop() copies
        those totals onto the span and into the metrics registry.  That is
        the whole no-op-fast-path story for the event pipeline.
        """
        from time import perf_counter_ns

        processor = self.processor
        span.set_counter("events_processed", processor.events_processed)
        span.set_counter("events_filtered", processor.events_filtered)
        span.set_counter("gpu_preprocessed_kernels", processor.gpu_preprocessed_kernels)
        span.set_counter("batches_dispatched", processor.batches_dispatched)
        span.set_counter("batch_records", processor.batch_records)
        span.set_counter("dispatched_events", processor.dispatch_unit.dispatched_events)
        span.set_counter("events_emitted", self.handler.events_emitted)
        span.set_counter("events_dropped", self.handler.events_dropped)
        for tool_name, hook_ns in sorted(processor.dispatch_unit.hook_times_ns().items()):
            span.set_counter(f"hook_ns.{tool_name}", hook_ns)
        # The caching allocator lives on the attached framework context(s);
        # sum across contexts (normally exactly one per session).
        allocators = [ctx.allocator for ctx in self._attached_contexts]
        free_list_depth = 0
        coalesces = 0
        if allocators:
            stats_list = [a.stats for a in allocators]
            free_list_depth = sum(a.free_list_depth() for a in allocators)
            coalesces = sum(s.coalesce_count for s in stats_list)
            span.set_counter("alloc.allocations", sum(s.allocation_count for s in stats_list))
            span.set_counter("alloc.frees", sum(s.free_count for s in stats_list))
            span.set_counter("alloc.cache_hits", sum(s.cache_hits for s in stats_list))
            span.set_counter("alloc.cache_misses", sum(s.cache_misses for s in stats_list))
            span.set_counter("alloc.coalesces", coalesces)
            span.set_counter("alloc.free_list_depth", free_list_depth)
        telemetry = _active_telemetry()
        telemetry.counter("processor.events_processed").inc(processor.events_processed)
        telemetry.counter("processor.events_filtered").inc(processor.events_filtered)
        telemetry.counter("processor.batches_dispatched").inc(processor.batches_dispatched)
        telemetry.counter("processor.batch_records").inc(processor.batch_records)
        telemetry.counter("dispatch.dispatched_events").inc(
            processor.dispatch_unit.dispatched_events
        )
        if allocators:
            telemetry.gauge("allocator.free_list_depth").set(free_list_depth)
            telemetry.counter("allocator.coalesces").inc(coalesces)
        elapsed_ns = perf_counter_ns() - span._start_wall_ns
        if elapsed_ns > 0 and processor.events_processed:
            rate = processor.events_processed / (elapsed_ns / 1e9)
            span.set_counter("events_per_s", round(rate, 1))
            telemetry.histogram(
                "session.events_per_s", EVENT_RATE_BUCKETS
            ).observe(rate)
        if processor.batches_dispatched:
            telemetry.histogram("processor.batch_size", SIZE_BUCKETS).observe(
                processor.batch_records / processor.batches_dispatched
            )

    # ------------------------------------------------------------------ #
    # trace recording
    # ------------------------------------------------------------------ #
    @property
    def is_recording(self) -> bool:
        """True while events are being appended to the trace file."""
        return self._trace_writer is not None and not self._trace_writer.closed

    def _record_and_submit(self, event) -> None:
        """Handler sink tap: persist the event, then forward it as usual."""
        if self._trace_writer is not None and not self._trace_writer.closed:
            self._trace_writer.write(event)
        self.processor.submit(event)

    def __enter__(self) -> "PastaSession":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.is_recording and self._owns_trace_writer:
            # The workload died mid-session: keep what was recorded but mark
            # the trace incomplete so readers refuse it by default.  A shared
            # writer is aborted by its owner (the multi-GPU executor), which
            # sees the exception too.
            self._trace_writer.abort(f"{exc_type.__name__}: {exc}")
        self.stop()

    @property
    def is_active(self) -> bool:
        """True while the session is started."""
        return self._started

    # ------------------------------------------------------------------ #
    # annotations (pasta.start()/pasta.stop())
    # ------------------------------------------------------------------ #
    def begin_region(self, label: str = "") -> None:
        """Open an analysis region."""
        self.handler.emit_region(label, starting=True, device_index=self.runtime.device.index)

    def end_region(self, label: str = "") -> None:
        """Close the innermost analysis region."""
        self.handler.emit_region(label, starting=False, device_index=self.runtime.device.index)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def reports(self) -> dict[str, dict[str, object]]:
        """Collect every tool's report, plus the overhead report if enabled."""
        with _active_telemetry().span("session.collect", tools=len(self._tools)):
            return collect_reports(self._tools, self.overhead_accountant)
