"""JSON-safe report serialization.

Every PASTA tool report — and every record the campaign subsystem persists —
must survive ``json.dumps`` without a custom encoder and round-trip through
``json.loads`` unchanged.  Tool authors naturally reach for enums, tuples,
dataclasses and (in numpy-backed forks) array scalars; :func:`json_sanitize`
coerces all of those to JSON-native values with deterministic, stable key
ordering so report digests and cache keys are reproducible across processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any, Mapping


def _sanitize_key(key: object) -> str:
    """Coerce a dict key to a plain string."""
    if isinstance(key, Enum):
        key = key.value
    if isinstance(key, str):
        return str(key)  # collapse str subclasses (including str enum values)
    if isinstance(key, (tuple, list)):
        return ",".join(_sanitize_key(part) for part in key)
    if isinstance(key, (bool, int, float)) or key is None:
        return str(key)
    return str(key)


def json_sanitize(value: Any) -> Any:
    """Recursively coerce ``value`` to JSON-native types.

    Rules:

    * ``None``/``bool``/``int``/``float``/``str`` pass through (subclasses —
      notably ``str``-based enums — collapse to the builtin type);
    * :class:`~enum.Enum` members become their ``value``;
    * mappings become dicts with string keys (tuple keys are joined with
      ``","``), preserving insertion order;
    * tuples, lists, sets and frozensets become lists (sets are sorted when
      their sanitized elements are orderable);
    * dataclass instances become dicts of their fields;
    * numpy-style scalars (anything with a zero-argument ``item()``) are
      unwrapped;
    * anything else falls back to ``str(value)``.
    """
    if value is None:
        return None
    if isinstance(value, Enum):
        return json_sanitize(value.value)
    if isinstance(value, bool):
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return str(value)
    if isinstance(value, Mapping):
        return {_sanitize_key(k): json_sanitize(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: json_sanitize(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, (set, frozenset)):
        items = [json_sanitize(v) for v in value]
        try:
            return sorted(items)
        except TypeError:
            return sorted(items, key=repr)
    if isinstance(value, (tuple, list)):
        return [json_sanitize(v) for v in value]
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return json_sanitize(item())
        except TypeError:
            pass
    return str(value)


def stable_json_dumps(value: Any, indent: int | None = None) -> str:
    """Serialize ``value`` deterministically: sanitized, sorted keys, no NaN."""
    return json.dumps(
        json_sanitize(value),
        sort_keys=True,
        indent=indent,
        separators=(",", ": ") if indent else (",", ":"),
        allow_nan=False,
    )


def json_roundtrip(value: Any) -> Any:
    """Sanitize and push ``value`` through an encode/decode cycle."""
    return json.loads(stable_json_dumps(value))


def content_digest(value: Any, *salts: str) -> str:
    """SHA-256 hex digest of the stable serialization of ``value``.

    Extra ``salts`` (e.g. the package version) are mixed into the hash so
    cached results are invalidated when the producing code changes.
    """
    hasher = hashlib.sha256()
    hasher.update(stable_json_dumps(value).encode("utf-8"))
    for salt in salts:
        hasher.update(b"\x00")
        hasher.update(str(salt).encode("utf-8"))
    return hasher.hexdigest()
