"""Unified PASTA event model (Table II of the paper).

Every runtime observation — whether it originates from a vendor profiling
backend, from the DL framework's callbacks, or from a user annotation — is
normalised into one of the event dataclasses below before reaching the event
processor and the tools.  The taxonomy follows Table II:

* **coarse-grained host-called API events** — driver/runtime API calls, kernel
  launches, memory copies/sets, synchronisation, resource operations;
* **fine-grained device-side operations** — per-thread memory accesses,
  barriers, block entry/exit, and the other instruction-level rows; and
* **high-level DL framework events** — operator start/end, tensor allocation
  and reclamation, plus annotation-driven region boundaries.

Fine-grained data travels in two shapes: the per-record events
(:class:`MemoryAccessEvent` / :class:`InstructionEvent`) and the columnar
batch events (:class:`MemoryAccessBatch` / :class:`InstructionBatch`) that
carry one kernel launch's sampled records as parallel arrays.  Batches are
what the vendor backends ship by default — one event per launch instead of
one per access — mirroring the paper's collect-and-analyze principle
(Figure 2b): aggregate on the producer side, move compact containers, never
pay a per-record delivery cost.

All event classes use ``slots=True`` (compact instances, faster attribute
access) and ``eq=False`` (identity comparison; events are never compared by
value on the hot path).  Event ids are allocated lazily on first read so the
common case — an event that is dispatched and dropped — never touches the
global counter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional

from repro.gpusim.instruction import InstructionKind

_event_ids = itertools.count(1)


class EventCategory(str, Enum):
    """Categories of PASTA events, grouping the rows of Table II."""

    # Coarse-grained host-called API events.
    RUNTIME_API = "runtime_api"
    KERNEL_LAUNCH = "kernel_launch"
    MEMORY_ALLOC = "memory_alloc"
    MEMORY_FREE = "memory_free"
    MEMCPY = "memcpy"
    MEMSET = "memset"
    SYNCHRONIZATION = "synchronization"
    # Fine-grained device-side operations.
    MEMORY_ACCESS = "memory_access"
    INSTRUCTION = "instruction"
    MEMORY_ACCESS_BATCH = "memory_access_batch"
    INSTRUCTION_BATCH = "instruction_batch"
    KERNEL_MEMORY_PROFILE = "kernel_memory_profile"
    # High-level DL framework events.
    OPERATOR_START = "operator_start"
    OPERATOR_END = "operator_end"
    TENSOR_ALLOC = "tensor_alloc"
    TENSOR_FREE = "tensor_free"
    # Annotation-driven region boundaries (pasta.start()/pasta.stop()).
    REGION_START = "region_start"
    REGION_STOP = "region_stop"


#: Categories considered "coarse-grained" (preprocessed on the CPU).
COARSE_CATEGORIES = frozenset(
    {
        EventCategory.RUNTIME_API,
        EventCategory.KERNEL_LAUNCH,
        EventCategory.MEMORY_ALLOC,
        EventCategory.MEMORY_FREE,
        EventCategory.MEMCPY,
        EventCategory.MEMSET,
        EventCategory.SYNCHRONIZATION,
    }
)

#: Categories considered "fine-grained" (preprocessed on the GPU).
FINE_GRAINED_CATEGORIES = frozenset(
    {
        EventCategory.MEMORY_ACCESS,
        EventCategory.INSTRUCTION,
        EventCategory.MEMORY_ACCESS_BATCH,
        EventCategory.INSTRUCTION_BATCH,
        EventCategory.KERNEL_MEMORY_PROFILE,
    }
)

#: Categories originating from the DL framework.
FRAMEWORK_CATEGORIES = frozenset(
    {
        EventCategory.OPERATOR_START,
        EventCategory.OPERATOR_END,
        EventCategory.TENSOR_ALLOC,
        EventCategory.TENSOR_FREE,
        EventCategory.REGION_START,
        EventCategory.REGION_STOP,
    }
)

#: Batch category -> the per-record category it aggregates.  A tool that
#: subscribes to a per-record category implicitly receives its batch form
#: (the tool template unrolls batches into per-record hooks by default).
BATCH_CATEGORY_BASES = {
    EventCategory.MEMORY_ACCESS_BATCH: EventCategory.MEMORY_ACCESS,
    EventCategory.INSTRUCTION_BATCH: EventCategory.INSTRUCTION,
}


class _LazyEventId:
    """Mixin giving events a lazily allocated, process-unique ``event_id``.

    The id is drawn from the global counter on first read only, so events
    that are dispatched and discarded (the overwhelming majority) never pay
    for it.  The slot lives here — outside the dataclass field list — so it
    is neither an ``__init__`` parameter nor part of the trace encoding.
    """

    __slots__ = ("_event_id",)

    @property
    def event_id(self) -> int:
        try:
            return self._event_id
        except AttributeError:
            eid = next(_event_ids)
            self._event_id = eid
            return eid

    @event_id.setter
    def event_id(self, value: int) -> None:
        self._event_id = value


@dataclass(slots=True, eq=False)
class PastaEvent(_LazyEventId):
    """Base class of all normalised events."""

    category: EventCategory = EventCategory.RUNTIME_API
    device_index: int = 0
    timestamp_ns: int = 0
    #: Name of the producer ("compute_sanitizer", "nvbit", "rocprofiler",
    #: "framework", "annotation").
    source: str = ""


@dataclass(slots=True, eq=False)
class RuntimeApiEvent(PastaEvent):
    """A driver/runtime API invocation (e.g. ``cudaMalloc``, ``hipMemcpy``)."""

    api_name: str = ""

    def __post_init__(self) -> None:
        self.category = EventCategory.RUNTIME_API


@dataclass(frozen=True, slots=True)
class KernelArgumentInfo:
    """Metadata about one memory region passed to a kernel.

    Carried on :class:`KernelLaunchEvent` so the event processor's
    GPU-resident preprocessing can attribute accesses to memory objects
    without materialising raw access records.
    """

    address: int
    size: int
    referenced_bytes: int
    access_count: int
    label: str = ""


@dataclass(slots=True, eq=False)
class KernelLaunchEvent(PastaEvent):
    """A kernel launch, with the metadata the event processor extracts."""

    kernel_name: str = ""
    launch_id: int = 0
    grid: tuple[int, int, int] = (1, 1, 1)
    block: tuple[int, int, int] = (1, 1, 1)
    stream_id: int = 0
    duration_ns: int = 0
    memory_footprint_bytes: int = 0
    working_set_bytes: int = 0
    total_memory_accesses: int = 0
    #: Operator the framework attributes this launch to ('' outside operators).
    op_context: str = ""
    #: Sequential index of this launch within the run (used by the
    #: START_GRID_ID / END_GRID_ID range filter).
    grid_index: int = 0
    #: Per-argument access metadata (address, size, referenced bytes, accesses).
    arguments: tuple[KernelArgumentInfo, ...] = ()

    def __post_init__(self) -> None:
        self.category = EventCategory.KERNEL_LAUNCH

    @property
    def total_threads(self) -> int:
        """Total threads in the launch."""
        gx, gy, gz = self.grid
        bx, by, bz = self.block
        return gx * gy * gz * bx * by * bz


@dataclass(slots=True, eq=False)
class MemoryAllocEvent(PastaEvent):
    """A driver-level memory allocation (``cudaMalloc`` and variants)."""

    address: int = 0
    size: int = 0
    object_id: int = 0
    memory_kind: str = "device"
    tag: str = ""

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMORY_ALLOC


@dataclass(slots=True, eq=False)
class MemoryFreeEvent(PastaEvent):
    """A driver-level memory free."""

    address: int = 0
    size: int = 0
    object_id: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMORY_FREE


@dataclass(slots=True, eq=False)
class MemcpyEvent(PastaEvent):
    """An explicit memory copy, with its normalised direction."""

    size: int = 0
    direction: str = "host_to_device"
    duration_ns: int = 0
    stream_id: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMCPY


@dataclass(slots=True, eq=False)
class MemsetEvent(PastaEvent):
    """A memory-set operation."""

    address: int = 0
    size: int = 0
    value: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMSET


@dataclass(slots=True, eq=False)
class SynchronizationEvent(PastaEvent):
    """A stream or device synchronisation."""

    scope: str = "device"
    stream_id: Optional[int] = None

    def __post_init__(self) -> None:
        self.category = EventCategory.SYNCHRONIZATION


@dataclass(slots=True, eq=False)
class MemoryAccessEvent(PastaEvent):
    """One sampled device-side memory access (fine-grained)."""

    address: int = 0
    size: int = 4
    is_write: bool = False
    kernel_launch_id: int = 0
    thread_index: int = 0
    block_index: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMORY_ACCESS


@dataclass(slots=True, eq=False)
class InstructionEvent(PastaEvent):
    """A sampled device-side non-memory instruction (barrier, block marker, ...)."""

    kind: InstructionKind = InstructionKind.OTHER
    kernel_launch_id: int = 0
    thread_index: int = 0
    block_index: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.INSTRUCTION


@dataclass(slots=True, eq=False)
class MemoryAccessBatch(PastaEvent):
    """One kernel launch's sampled memory accesses as parallel arrays.

    The columnar twin of :class:`MemoryAccessEvent`: element ``i`` of every
    array describes one access, and the array order matches the order the
    per-record pipeline would have delivered the same accesses in, so
    unrolling a batch reproduces the unbatched stream exactly.
    """

    kernel_launch_id: int = 0
    addresses: tuple[int, ...] = ()
    sizes: tuple[int, ...] = ()
    write_flags: tuple[bool, ...] = ()
    thread_indices: tuple[int, ...] = ()
    block_indices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMORY_ACCESS_BATCH

    def __len__(self) -> int:
        return len(self.addresses)

    def unroll(self) -> Iterator[MemoryAccessEvent]:
        """Per-record view: yields the equivalent :class:`MemoryAccessEvent`\\ s."""
        for address, size, is_write, thread, block in zip(
            self.addresses, self.sizes, self.write_flags,
            self.thread_indices, self.block_indices,
        ):
            yield MemoryAccessEvent(
                address=address,
                size=size,
                is_write=is_write,
                kernel_launch_id=self.kernel_launch_id,
                thread_index=thread,
                block_index=block,
                device_index=self.device_index,
                timestamp_ns=self.timestamp_ns,
                source=self.source,
            )


@dataclass(slots=True, eq=False)
class InstructionBatch(PastaEvent):
    """One kernel launch's sampled non-memory instructions as parallel arrays.

    The columnar twin of :class:`InstructionEvent` (barriers, block markers,
    device calls, ...), with the same ordering guarantee as
    :class:`MemoryAccessBatch`.
    """

    kernel_launch_id: int = 0
    kinds: tuple[InstructionKind, ...] = ()
    thread_indices: tuple[int, ...] = ()
    block_indices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        self.category = EventCategory.INSTRUCTION_BATCH

    def __len__(self) -> int:
        return len(self.kinds)

    def unroll(self) -> Iterator[InstructionEvent]:
        """Per-record view: yields the equivalent :class:`InstructionEvent`\\ s."""
        for kind, thread, block in zip(self.kinds, self.thread_indices, self.block_indices):
            yield InstructionEvent(
                kind=kind,
                kernel_launch_id=self.kernel_launch_id,
                thread_index=thread,
                block_index=block,
                device_index=self.device_index,
                timestamp_ns=self.timestamp_ns,
                source=self.source,
            )


@dataclass(slots=True, eq=False)
class KernelMemoryProfile(PastaEvent):
    """GPU-preprocessed per-kernel memory profile (the result-map of Figure 8b).

    Produced by the event processor's GPU-resident analysis: for one kernel
    launch, the map from memory-object id to access count, plus the derived
    footprint/working-set numbers.  This is the event most memory tools
    consume instead of raw access records.
    """

    kernel_name: str = ""
    launch_id: int = 0
    op_context: str = ""
    object_access_counts: dict[int, int] = field(default_factory=dict)
    #: (object_id -> referenced bytes) for objects with at least one access.
    object_referenced_bytes: dict[int, int] = field(default_factory=dict)
    footprint_bytes: int = 0
    working_set_bytes: int = 0
    total_accesses: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.KERNEL_MEMORY_PROFILE

    @property
    def accessed_object_count(self) -> int:
        """Number of distinct memory objects the kernel referenced."""
        return sum(1 for count in self.object_access_counts.values() if count > 0)


@dataclass(slots=True, eq=False)
class OperatorStartEvent(PastaEvent):
    """A DL framework operator began executing."""

    op_id: int = 0
    name: str = ""
    scope: str = ""
    sequence: int = 0
    python_stack: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.category = EventCategory.OPERATOR_START


@dataclass(slots=True, eq=False)
class OperatorEndEvent(PastaEvent):
    """A DL framework operator finished executing."""

    op_id: int = 0
    name: str = ""
    scope: str = ""
    sequence: int = 0
    kernel_count: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.OPERATOR_END


@dataclass(slots=True, eq=False)
class TensorAllocEvent(PastaEvent):
    """A framework tensor allocation (normalised to a positive size)."""

    tensor_id: int = 0
    tensor_name: str = ""
    address: int = 0
    nbytes: int = 0
    pool_allocated_bytes: int = 0
    pool_reserved_bytes: int = 0
    event_index: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.TENSOR_ALLOC


@dataclass(slots=True, eq=False)
class TensorFreeEvent(PastaEvent):
    """A framework tensor reclamation (normalised to a positive size)."""

    tensor_id: int = 0
    tensor_name: str = ""
    address: int = 0
    nbytes: int = 0
    pool_allocated_bytes: int = 0
    pool_reserved_bytes: int = 0
    event_index: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.TENSOR_FREE


@dataclass(slots=True, eq=False)
class RegionEvent(PastaEvent):
    """A user annotation boundary (``pasta.start()`` / ``pasta.stop()``)."""

    label: str = ""
    starting: bool = True

    def __post_init__(self) -> None:
        self.category = EventCategory.REGION_START if self.starting else EventCategory.REGION_STOP
