"""Unified PASTA event model (Table II of the paper).

Every runtime observation — whether it originates from a vendor profiling
backend, from the DL framework's callbacks, or from a user annotation — is
normalised into one of the event dataclasses below before reaching the event
processor and the tools.  The taxonomy follows Table II:

* **coarse-grained host-called API events** — driver/runtime API calls, kernel
  launches, memory copies/sets, synchronisation, resource operations;
* **fine-grained device-side operations** — per-thread memory accesses,
  barriers, block entry/exit, and the other instruction-level rows; and
* **high-level DL framework events** — operator start/end, tensor allocation
  and reclamation, plus annotation-driven region boundaries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.gpusim.instruction import InstructionKind

_event_ids = itertools.count(1)


class EventCategory(str, Enum):
    """Categories of PASTA events, grouping the rows of Table II."""

    # Coarse-grained host-called API events.
    RUNTIME_API = "runtime_api"
    KERNEL_LAUNCH = "kernel_launch"
    MEMORY_ALLOC = "memory_alloc"
    MEMORY_FREE = "memory_free"
    MEMCPY = "memcpy"
    MEMSET = "memset"
    SYNCHRONIZATION = "synchronization"
    # Fine-grained device-side operations.
    MEMORY_ACCESS = "memory_access"
    INSTRUCTION = "instruction"
    KERNEL_MEMORY_PROFILE = "kernel_memory_profile"
    # High-level DL framework events.
    OPERATOR_START = "operator_start"
    OPERATOR_END = "operator_end"
    TENSOR_ALLOC = "tensor_alloc"
    TENSOR_FREE = "tensor_free"
    # Annotation-driven region boundaries (pasta.start()/pasta.stop()).
    REGION_START = "region_start"
    REGION_STOP = "region_stop"


#: Categories considered "coarse-grained" (preprocessed on the CPU).
COARSE_CATEGORIES = frozenset(
    {
        EventCategory.RUNTIME_API,
        EventCategory.KERNEL_LAUNCH,
        EventCategory.MEMORY_ALLOC,
        EventCategory.MEMORY_FREE,
        EventCategory.MEMCPY,
        EventCategory.MEMSET,
        EventCategory.SYNCHRONIZATION,
    }
)

#: Categories considered "fine-grained" (preprocessed on the GPU).
FINE_GRAINED_CATEGORIES = frozenset(
    {
        EventCategory.MEMORY_ACCESS,
        EventCategory.INSTRUCTION,
        EventCategory.KERNEL_MEMORY_PROFILE,
    }
)

#: Categories originating from the DL framework.
FRAMEWORK_CATEGORIES = frozenset(
    {
        EventCategory.OPERATOR_START,
        EventCategory.OPERATOR_END,
        EventCategory.TENSOR_ALLOC,
        EventCategory.TENSOR_FREE,
        EventCategory.REGION_START,
        EventCategory.REGION_STOP,
    }
)


@dataclass
class PastaEvent:
    """Base class of all normalised events."""

    category: EventCategory = EventCategory.RUNTIME_API
    device_index: int = 0
    timestamp_ns: int = 0
    #: Name of the producer ("compute_sanitizer", "nvbit", "rocprofiler",
    #: "framework", "annotation").
    source: str = ""
    event_id: int = field(default_factory=lambda: next(_event_ids))


@dataclass
class RuntimeApiEvent(PastaEvent):
    """A driver/runtime API invocation (e.g. ``cudaMalloc``, ``hipMemcpy``)."""

    api_name: str = ""

    def __post_init__(self) -> None:
        self.category = EventCategory.RUNTIME_API


@dataclass(frozen=True)
class KernelArgumentInfo:
    """Metadata about one memory region passed to a kernel.

    Carried on :class:`KernelLaunchEvent` so the event processor's
    GPU-resident preprocessing can attribute accesses to memory objects
    without materialising raw access records.
    """

    address: int
    size: int
    referenced_bytes: int
    access_count: int
    label: str = ""


@dataclass
class KernelLaunchEvent(PastaEvent):
    """A kernel launch, with the metadata the event processor extracts."""

    kernel_name: str = ""
    launch_id: int = 0
    grid: tuple[int, int, int] = (1, 1, 1)
    block: tuple[int, int, int] = (1, 1, 1)
    stream_id: int = 0
    duration_ns: int = 0
    memory_footprint_bytes: int = 0
    working_set_bytes: int = 0
    total_memory_accesses: int = 0
    #: Operator the framework attributes this launch to ('' outside operators).
    op_context: str = ""
    #: Sequential index of this launch within the run (used by the
    #: START_GRID_ID / END_GRID_ID range filter).
    grid_index: int = 0
    #: Per-argument access metadata (address, size, referenced bytes, accesses).
    arguments: tuple[KernelArgumentInfo, ...] = ()

    def __post_init__(self) -> None:
        self.category = EventCategory.KERNEL_LAUNCH

    @property
    def total_threads(self) -> int:
        """Total threads in the launch."""
        gx, gy, gz = self.grid
        bx, by, bz = self.block
        return gx * gy * gz * bx * by * bz


@dataclass
class MemoryAllocEvent(PastaEvent):
    """A driver-level memory allocation (``cudaMalloc`` and variants)."""

    address: int = 0
    size: int = 0
    object_id: int = 0
    memory_kind: str = "device"
    tag: str = ""

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMORY_ALLOC


@dataclass
class MemoryFreeEvent(PastaEvent):
    """A driver-level memory free."""

    address: int = 0
    size: int = 0
    object_id: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMORY_FREE


@dataclass
class MemcpyEvent(PastaEvent):
    """An explicit memory copy, with its normalised direction."""

    size: int = 0
    direction: str = "host_to_device"
    duration_ns: int = 0
    stream_id: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMCPY


@dataclass
class MemsetEvent(PastaEvent):
    """A memory-set operation."""

    address: int = 0
    size: int = 0
    value: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMSET


@dataclass
class SynchronizationEvent(PastaEvent):
    """A stream or device synchronisation."""

    scope: str = "device"
    stream_id: Optional[int] = None

    def __post_init__(self) -> None:
        self.category = EventCategory.SYNCHRONIZATION


@dataclass
class MemoryAccessEvent(PastaEvent):
    """One sampled device-side memory access (fine-grained)."""

    address: int = 0
    size: int = 4
    is_write: bool = False
    kernel_launch_id: int = 0
    thread_index: int = 0
    block_index: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.MEMORY_ACCESS


@dataclass
class InstructionEvent(PastaEvent):
    """A sampled device-side non-memory instruction (barrier, block marker, ...)."""

    kind: InstructionKind = InstructionKind.OTHER
    kernel_launch_id: int = 0
    thread_index: int = 0
    block_index: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.INSTRUCTION


@dataclass
class KernelMemoryProfile(PastaEvent):
    """GPU-preprocessed per-kernel memory profile (the result-map of Figure 8b).

    Produced by the event processor's GPU-resident analysis: for one kernel
    launch, the map from memory-object id to access count, plus the derived
    footprint/working-set numbers.  This is the event most memory tools
    consume instead of raw access records.
    """

    kernel_name: str = ""
    launch_id: int = 0
    op_context: str = ""
    object_access_counts: dict[int, int] = field(default_factory=dict)
    #: (object_id -> referenced bytes) for objects with at least one access.
    object_referenced_bytes: dict[int, int] = field(default_factory=dict)
    footprint_bytes: int = 0
    working_set_bytes: int = 0
    total_accesses: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.KERNEL_MEMORY_PROFILE

    @property
    def accessed_object_count(self) -> int:
        """Number of distinct memory objects the kernel referenced."""
        return sum(1 for count in self.object_access_counts.values() if count > 0)


@dataclass
class OperatorStartEvent(PastaEvent):
    """A DL framework operator began executing."""

    op_id: int = 0
    name: str = ""
    scope: str = ""
    sequence: int = 0
    python_stack: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.category = EventCategory.OPERATOR_START


@dataclass
class OperatorEndEvent(PastaEvent):
    """A DL framework operator finished executing."""

    op_id: int = 0
    name: str = ""
    scope: str = ""
    sequence: int = 0
    kernel_count: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.OPERATOR_END


@dataclass
class TensorAllocEvent(PastaEvent):
    """A framework tensor allocation (normalised to a positive size)."""

    tensor_id: int = 0
    tensor_name: str = ""
    address: int = 0
    nbytes: int = 0
    pool_allocated_bytes: int = 0
    pool_reserved_bytes: int = 0
    event_index: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.TENSOR_ALLOC


@dataclass
class TensorFreeEvent(PastaEvent):
    """A framework tensor reclamation (normalised to a positive size)."""

    tensor_id: int = 0
    tensor_name: str = ""
    address: int = 0
    nbytes: int = 0
    pool_allocated_bytes: int = 0
    pool_reserved_bytes: int = 0
    event_index: int = 0

    def __post_init__(self) -> None:
        self.category = EventCategory.TENSOR_FREE


@dataclass
class RegionEvent(PastaEvent):
    """A user annotation boundary (``pasta.start()`` / ``pasta.stop()``)."""

    label: str = ""
    starting: bool = True

    def __post_init__(self) -> None:
        self.category = EventCategory.REGION_START if self.starting else EventCategory.REGION_STOP
