"""Cross-layer call-stack utilities (the Figure 4 feature).

PASTA's inefficiency-location utilities combine a Python-level call stack
(captured via the CPython ``PyFrame`` API on real hardware, synthesised from
the framework's module scopes here) with a C/C++-level backtrace (captured via
``libbacktrace`` on real hardware, synthesised from the kernel name here) into
a single cross-layer stack, so a hot kernel like
``at::cuda::blas::gemm_and_bias`` can be traced back through ATen dispatch into
the user's ``forward()`` methods and driver script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class StackFrame:
    """One frame of a cross-layer call stack."""

    location: str  #: "file.py:123" or "Blas.cpp:281"
    function: str  #: function or kernel symbol
    language: str  #: "python" or "c++"

    def render(self) -> str:
        """Human-readable one-line rendering."""
        return f"{self.location} {self.function}"


@dataclass(frozen=True)
class CrossLayerStack:
    """A full cross-layer call stack: C/C++ frames innermost, Python frames outer."""

    kernel_name: str
    cpp_frames: tuple[StackFrame, ...]
    python_frames: tuple[StackFrame, ...]

    @property
    def frames(self) -> tuple[StackFrame, ...]:
        """All frames, innermost (device/C++) first."""
        return self.cpp_frames + self.python_frames

    def render(self) -> str:
        """Multi-line rendering matching the layout of Figure 4."""
        lines = [f"cross-layer call stack for kernel {self.kernel_name!r}:"]
        lines.extend(f"  [C/C++ ] {frame.render()}" for frame in self.cpp_frames)
        lines.extend(f"  [Python] {frame.render()}" for frame in self.python_frames)
        return "\n".join(lines)


#: Synthesised C++ backtraces for well-known kernel families.  Each entry maps
#: a substring of the kernel name to the ATen/driver frames that launch it.
_CPP_BACKTRACES: tuple[tuple[str, tuple[tuple[str, str], ...]], ...] = (
    (
        "gemm",
        (
            ("torch/aten/src/ATen/cuda/CUDABlas.cpp:771", "at::cuda::blas::gemm_and_bias()"),
            ("torch/aten/src/ATen/native/cuda/Blas.cpp:281", "addmm_out_cuda_impl"),
            ("torch/build/aten/src/ATen/RegisterCUDA.cpp:17434", "wrapper_CUDA_addmm"),
        ),
    ),
    (
        "im2col",
        (
            ("torch/aten/src/ATen/native/cuda/im2col.cuh:98", "at::native::im2col_kernel"),
            ("torch/aten/src/ATen/native/cuda/ConvolutionMM2d.cu:154", "slow_conv2d_forward"),
        ),
    ),
    (
        "convolve",
        (
            ("cudnn/conv/implicit_gemm.cu:412", "implicit_convolve_sgemm"),
            ("torch/aten/src/ATen/native/cudnn/Conv_v8.cpp:712", "raw_cudnn_convolution_forward"),
        ),
    ),
    (
        "elementwise",
        (
            ("torch/aten/src/ATen/native/cuda/CUDALoops.cuh:312", "vectorized_elementwise_kernel"),
            ("torch/aten/src/ATen/native/cuda/Loops.cuh:59", "gpu_kernel_impl"),
        ),
    ),
    (
        "softmax",
        (
            ("torch/aten/src/ATen/native/cuda/SoftMax.cu:844", "softmax_warp_forward"),
            ("torch/aten/src/ATen/native/cuda/SoftMax.cu:1012", "host_softmax"),
        ),
    ),
    (
        "layer_norm",
        (
            ("torch/aten/src/ATen/native/cuda/layer_norm_kernel.cu:310", "vectorized_layer_norm_kernel"),
            ("torch/aten/src/ATen/native/layer_norm.cpp:87", "layer_norm_cpu_out"),
        ),
    ),
    (
        "nccl",
        (
            ("nccl/src/collectives/device/all_reduce.h:22", "ncclDevKernel_AllReduce"),
            ("torch/csrc/distributed/c10d/ProcessGroupNCCL.cpp:2901", "ProcessGroupNCCL::allreduce"),
        ),
    ),
)

#: Frames appended below every synthesised C++ backtrace (process entry).
_PROCESS_FRAMES: tuple[tuple[str, str], ...] = (
    ("../sysdeps/nptl/libc_start_call_main.h:58", "__libc_start_call_main"),
    ("../csu/libc-start.c:392", "__libc_start_main_impl"),
)


def synthesize_cpp_frames(kernel_name: str) -> tuple[StackFrame, ...]:
    """Build a plausible C/C++ backtrace for ``kernel_name``."""
    lowered = kernel_name.lower()
    chosen: tuple[tuple[str, str], ...] = ()
    for needle, frames in _CPP_BACKTRACES:
        if needle in lowered:
            chosen = frames
            break
    if not chosen:
        chosen = (
            ("torch/aten/src/ATen/native/cuda/DispatchStub.cpp:44", kernel_name),
            ("torch/aten/src/ATen/core/dispatch/Dispatcher.h:692", "c10::Dispatcher::call"),
        )
    frames = tuple(StackFrame(location=loc, function=fn, language="c++") for loc, fn in chosen)
    frames += tuple(
        StackFrame(location=loc, function=fn, language="c++") for loc, fn in _PROCESS_FRAMES
    )
    return frames


def python_frames_from_stack(python_stack: Sequence[str]) -> tuple[StackFrame, ...]:
    """Convert the framework's synthesised Python stack strings into frames."""
    frames = []
    for entry in python_stack:
        location, _, function = entry.partition(" ")
        frames.append(StackFrame(location=location, function=function or "<module>", language="python"))
    return tuple(frames)


def build_cross_layer_stack(kernel_name: str, python_stack: Sequence[str]) -> CrossLayerStack:
    """Combine a kernel's C++ backtrace with the operator's Python stack."""
    return CrossLayerStack(
        kernel_name=kernel_name,
        cpp_frames=synthesize_cpp_frames(kernel_name),
        python_frames=python_frames_from_stack(python_stack),
    )
