"""Inefficiency-location knobs (Section III-F2).

Rather than capturing full context for every runtime event (expensive), PASTA
lets users select *which* kernel deserves a full cross-layer call stack via
predefined knobs such as ``MAX_MEM_REFERENCED_KERNEL`` (the kernel with the
most memory references) and ``MAX_CALLED_KERNEL`` (the most frequently invoked
kernel).  Users can register custom knobs as plain selection functions over the
per-kernel statistics PASTA accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import PastaError


@dataclass
class KernelStats:
    """Aggregated statistics for one kernel name."""

    kernel_name: str
    invocation_count: int = 0
    total_memory_accesses: int = 0
    total_duration_ns: int = 0
    max_working_set_bytes: int = 0
    #: Python stack of the operator active at the kernel's first launch.
    representative_python_stack: tuple[str, ...] = ()
    representative_op: str = ""


#: A knob is a function selecting one KernelStats out of the collected set.
KnobFn = Callable[[dict[str, KernelStats]], Optional[KernelStats]]


def _max_by(stats: dict[str, KernelStats], key: Callable[[KernelStats], float]) -> Optional[KernelStats]:
    if not stats:
        return None
    return max(stats.values(), key=key)


def max_mem_referenced_kernel(stats: dict[str, KernelStats]) -> Optional[KernelStats]:
    """``MAX_MEM_REFERENCED_KERNEL``: the kernel with the most memory references."""
    return _max_by(stats, lambda s: s.total_memory_accesses)


def max_called_kernel(stats: dict[str, KernelStats]) -> Optional[KernelStats]:
    """``MAX_CALLED_KERNEL``: the most frequently invoked kernel."""
    return _max_by(stats, lambda s: s.invocation_count)


def max_duration_kernel(stats: dict[str, KernelStats]) -> Optional[KernelStats]:
    """``MAX_DURATION_KERNEL``: the kernel with the largest cumulative time."""
    return _max_by(stats, lambda s: s.total_duration_ns)


def max_working_set_kernel(stats: dict[str, KernelStats]) -> Optional[KernelStats]:
    """``MAX_WORKING_SET_KERNEL``: the kernel with the largest single-launch working set."""
    return _max_by(stats, lambda s: s.max_working_set_bytes)


class KnobRegistry:
    """Holds the predefined knobs plus any user-registered custom knobs."""

    def __init__(self) -> None:
        self._knobs: dict[str, KnobFn] = {
            "MAX_MEM_REFERENCED_KERNEL": max_mem_referenced_kernel,
            "MAX_CALLED_KERNEL": max_called_kernel,
            "MAX_DURATION_KERNEL": max_duration_kernel,
            "MAX_WORKING_SET_KERNEL": max_working_set_kernel,
        }

    def register(self, name: str, fn: KnobFn) -> None:
        """Register a custom knob under ``name``."""
        self._knobs[name.upper()] = fn

    def names(self) -> list[str]:
        """Available knob names."""
        return sorted(self._knobs)

    def select(self, name: str, stats: dict[str, KernelStats]) -> Optional[KernelStats]:
        """Apply the named knob to the collected kernel statistics."""
        try:
            fn = self._knobs[name.upper()]
        except KeyError:
            raise PastaError(f"unknown knob {name!r}; available: {self.names()}") from None
        return fn(stats)
