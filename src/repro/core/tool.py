"""PASTA tool collection template.

The tool collection is the third of PASTA's three modules (Figure 1): users
build custom analyses by subclassing :class:`PastaTool` and overriding the
handler methods they care about — the paper's "simply overriding functions in
the PASTA tool collection template".  Tools receive already-normalised,
already-preprocessed events from the event processor and never interact with
vendor APIs directly.

Fine-grained data arrives as columnar batches by default (one
:class:`~repro.core.events.MemoryAccessBatch` / ``InstructionBatch`` per
kernel launch).  Tools written before batching existed keep working
unchanged: the default ``on_memory_access_batch`` / ``on_instruction_batch``
implementations unroll each batch into the per-record ``on_memory_access`` /
``on_instruction`` hooks in delivery order.  Batch-aware tools override the
batch hooks and process the parallel arrays directly, skipping per-record
event construction entirely.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.events import (
    BATCH_CATEGORY_BASES,
    EventCategory,
    InstructionBatch,
    InstructionEvent,
    KernelLaunchEvent,
    KernelMemoryProfile,
    MemcpyEvent,
    MemoryAccessBatch,
    MemoryAccessEvent,
    MemoryAllocEvent,
    MemoryFreeEvent,
    MemsetEvent,
    OperatorEndEvent,
    OperatorStartEvent,
    PastaEvent,
    RegionEvent,
    RuntimeApiEvent,
    SynchronizationEvent,
    TensorAllocEvent,
    TensorFreeEvent,
)

_BATCH_CATEGORIES = frozenset(BATCH_CATEGORY_BASES)


class PastaTool:
    """Base class for user-defined analysis tools.

    Subclasses set :attr:`tool_name` and override whichever ``on_*`` hooks
    their analysis needs; the default implementations are no-ops.  Tools can
    restrict which categories they receive via :attr:`subscribed_categories`
    (``None`` subscribes to everything), which lets the dispatch unit skip
    irrelevant tools cheaply.  Subscribing to a per-record fine-grained
    category implicitly subscribes to its batch form.
    """

    #: Registry name of the tool (used for PASTA_TOOL selection).
    tool_name: str = "pasta_tool"
    #: Categories the tool wants, or None for all.
    subscribed_categories: Optional[frozenset[EventCategory]] = None
    #: Whether the tool needs fine-grained (device-side) instrumentation.
    requires_fine_grained: bool = False

    def __init__(self) -> None:
        self.events_received = 0
        self.rebind_handlers()

    def rebind_handlers(self) -> None:
        """(Re)build the category -> bound-hook table used by dispatch.

        Called once at construction, which captures the hook methods visible
        on the instance at that moment (subclass overrides included).  Call
        again after patching a hook — on the instance *or* the class — for
        dispatch to see the new implementation.
        """
        self._handlers: dict[EventCategory, Callable[[PastaEvent], None]] = {
            category: getattr(self, method_name)
            for category, method_name in _DISPATCH.items()
        }

    # ------------------------------------------------------------------ #
    # dispatch entry point (called by the event processor)
    # ------------------------------------------------------------------ #
    def wants(self, category: EventCategory) -> bool:
        """True if the tool subscribes to ``category``.

        Batch categories are implied by their per-record base category, so a
        pre-batching tool subscribed to ``MEMORY_ACCESS`` still receives
        ``MEMORY_ACCESS_BATCH`` events (and unrolls them by default).
        """
        subscribed = self.subscribed_categories
        if subscribed is None or category in subscribed:
            return True
        base = BATCH_CATEGORY_BASES.get(category)
        return base is not None and base in subscribed

    def handle_event(self, event: PastaEvent) -> None:
        """Route one event to the matching ``on_*`` hook.

        ``events_received`` counts logical (per-record) events: a batch of
        ``n`` records counts ``n``, so the tally is identical whether the
        pipeline delivered records individually or batched.
        """
        category = event.category
        if category in _BATCH_CATEGORIES:
            self.events_received += len(event)  # type: ignore[arg-type]
        else:
            self.events_received += 1
        try:
            handler = self._handlers.get(category)
        except AttributeError:
            # Subclass skipped super().__init__(); bind lazily.
            self.rebind_handlers()
            handler = self._handlers.get(category)
        if handler is not None:
            handler(event)

    # ------------------------------------------------------------------ #
    # lifecycle hooks
    # ------------------------------------------------------------------ #
    def on_session_start(self) -> None:
        """Called when the owning session starts profiling."""

    def on_session_end(self) -> None:
        """Called when the owning session stops profiling."""

    def report(self) -> dict[str, object]:
        """Produce the tool's analysis report (overridden by concrete tools)."""
        return {"tool": self.tool_name, "events": self.events_received}

    # ------------------------------------------------------------------ #
    # event hooks (all optional)
    # ------------------------------------------------------------------ #
    def on_runtime_api(self, event: RuntimeApiEvent) -> None:
        """A driver/runtime API call."""

    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        """A kernel launch (coarse-grained)."""

    def on_memory_alloc(self, event: MemoryAllocEvent) -> None:
        """A driver-level memory allocation."""

    def on_memory_free(self, event: MemoryFreeEvent) -> None:
        """A driver-level memory free."""

    def on_memcpy(self, event: MemcpyEvent) -> None:
        """An explicit memory copy."""

    def on_memset(self, event: MemsetEvent) -> None:
        """A memory-set operation."""

    def on_synchronization(self, event: SynchronizationEvent) -> None:
        """A stream/device synchronisation."""

    def on_memory_access(self, event: MemoryAccessEvent) -> None:
        """A sampled fine-grained memory access."""

    def on_instruction(self, event: InstructionEvent) -> None:
        """A sampled fine-grained non-memory instruction."""

    def on_memory_access_batch(self, event: MemoryAccessBatch) -> None:
        """One launch's sampled memory accesses as parallel arrays.

        The default implementation unrolls the batch into per-record
        :meth:`on_memory_access` calls so pre-batching tools keep working;
        batch-aware tools override this and consume the arrays directly.
        """
        on_memory_access = self.on_memory_access
        for access in event.unroll():
            on_memory_access(access)

    def on_instruction_batch(self, event: InstructionBatch) -> None:
        """One launch's sampled non-memory instructions as parallel arrays.

        Default: unroll into per-record :meth:`on_instruction` calls.
        """
        on_instruction = self.on_instruction
        for instruction in event.unroll():
            on_instruction(instruction)

    def on_kernel_memory_profile(self, event: KernelMemoryProfile) -> None:
        """A GPU-preprocessed per-kernel memory profile."""

    def on_operator_start(self, event: OperatorStartEvent) -> None:
        """A framework operator started."""

    def on_operator_end(self, event: OperatorEndEvent) -> None:
        """A framework operator finished."""

    def on_tensor_alloc(self, event: TensorAllocEvent) -> None:
        """A framework tensor allocation."""

    def on_tensor_free(self, event: TensorFreeEvent) -> None:
        """A framework tensor reclamation."""

    def on_region(self, event: RegionEvent) -> None:
        """A user annotation boundary."""


#: Category -> hook method name; bound per instance in rebind_handlers() so
#: dispatch is one dict lookup plus a direct call (no getattr per event).
_DISPATCH = {
    EventCategory.RUNTIME_API: "on_runtime_api",
    EventCategory.KERNEL_LAUNCH: "on_kernel_launch",
    EventCategory.MEMORY_ALLOC: "on_memory_alloc",
    EventCategory.MEMORY_FREE: "on_memory_free",
    EventCategory.MEMCPY: "on_memcpy",
    EventCategory.MEMSET: "on_memset",
    EventCategory.SYNCHRONIZATION: "on_synchronization",
    EventCategory.MEMORY_ACCESS: "on_memory_access",
    EventCategory.INSTRUCTION: "on_instruction",
    EventCategory.MEMORY_ACCESS_BATCH: "on_memory_access_batch",
    EventCategory.INSTRUCTION_BATCH: "on_instruction_batch",
    EventCategory.KERNEL_MEMORY_PROFILE: "on_kernel_memory_profile",
    EventCategory.OPERATOR_START: "on_operator_start",
    EventCategory.OPERATOR_END: "on_operator_end",
    EventCategory.TENSOR_ALLOC: "on_tensor_alloc",
    EventCategory.TENSOR_FREE: "on_tensor_free",
    EventCategory.REGION_START: "on_region",
    EventCategory.REGION_STOP: "on_region",
}
