"""PASTA tool collection template.

The tool collection is the third of PASTA's three modules (Figure 1): users
build custom analyses by subclassing :class:`PastaTool` and overriding the
handler methods they care about — the paper's "simply overriding functions in
the PASTA tool collection template".  Tools receive already-normalised,
already-preprocessed events from the event processor and never interact with
vendor APIs directly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import (
    EventCategory,
    InstructionEvent,
    KernelLaunchEvent,
    KernelMemoryProfile,
    MemcpyEvent,
    MemoryAccessEvent,
    MemoryAllocEvent,
    MemoryFreeEvent,
    MemsetEvent,
    OperatorEndEvent,
    OperatorStartEvent,
    PastaEvent,
    RegionEvent,
    RuntimeApiEvent,
    SynchronizationEvent,
    TensorAllocEvent,
    TensorFreeEvent,
)


class PastaTool:
    """Base class for user-defined analysis tools.

    Subclasses set :attr:`tool_name` and override whichever ``on_*`` hooks
    their analysis needs; the default implementations are no-ops.  Tools can
    restrict which categories they receive via :attr:`subscribed_categories`
    (``None`` subscribes to everything), which lets the dispatch unit skip
    irrelevant tools cheaply.
    """

    #: Registry name of the tool (used for PASTA_TOOL selection).
    tool_name: str = "pasta_tool"
    #: Categories the tool wants, or None for all.
    subscribed_categories: Optional[frozenset[EventCategory]] = None
    #: Whether the tool needs fine-grained (device-side) instrumentation.
    requires_fine_grained: bool = False

    def __init__(self) -> None:
        self.events_received = 0

    # ------------------------------------------------------------------ #
    # dispatch entry point (called by the event processor)
    # ------------------------------------------------------------------ #
    def wants(self, category: EventCategory) -> bool:
        """True if the tool subscribes to ``category``."""
        return self.subscribed_categories is None or category in self.subscribed_categories

    def handle_event(self, event: PastaEvent) -> None:
        """Route one event to the matching ``on_*`` hook."""
        self.events_received += 1
        method_name = _DISPATCH.get(event.category)
        if method_name is not None:
            getattr(self, method_name)(event)

    # ------------------------------------------------------------------ #
    # lifecycle hooks
    # ------------------------------------------------------------------ #
    def on_session_start(self) -> None:
        """Called when the owning session starts profiling."""

    def on_session_end(self) -> None:
        """Called when the owning session stops profiling."""

    def report(self) -> dict[str, object]:
        """Produce the tool's analysis report (overridden by concrete tools)."""
        return {"tool": self.tool_name, "events": self.events_received}

    # ------------------------------------------------------------------ #
    # event hooks (all optional)
    # ------------------------------------------------------------------ #
    def on_runtime_api(self, event: RuntimeApiEvent) -> None:
        """A driver/runtime API call."""

    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        """A kernel launch (coarse-grained)."""

    def on_memory_alloc(self, event: MemoryAllocEvent) -> None:
        """A driver-level memory allocation."""

    def on_memory_free(self, event: MemoryFreeEvent) -> None:
        """A driver-level memory free."""

    def on_memcpy(self, event: MemcpyEvent) -> None:
        """An explicit memory copy."""

    def on_memset(self, event: MemsetEvent) -> None:
        """A memory-set operation."""

    def on_synchronization(self, event: SynchronizationEvent) -> None:
        """A stream/device synchronisation."""

    def on_memory_access(self, event: MemoryAccessEvent) -> None:
        """A sampled fine-grained memory access."""

    def on_instruction(self, event: InstructionEvent) -> None:
        """A sampled fine-grained non-memory instruction."""

    def on_kernel_memory_profile(self, event: KernelMemoryProfile) -> None:
        """A GPU-preprocessed per-kernel memory profile."""

    def on_operator_start(self, event: OperatorStartEvent) -> None:
        """A framework operator started."""

    def on_operator_end(self, event: OperatorEndEvent) -> None:
        """A framework operator finished."""

    def on_tensor_alloc(self, event: TensorAllocEvent) -> None:
        """A framework tensor allocation."""

    def on_tensor_free(self, event: TensorFreeEvent) -> None:
        """A framework tensor reclamation."""

    def on_region(self, event: RegionEvent) -> None:
        """A user annotation boundary."""


#: Category -> hook method name; resolved through ``getattr`` at dispatch time
#: so subclass overrides are honoured.
_DISPATCH = {
    EventCategory.RUNTIME_API: "on_runtime_api",
    EventCategory.KERNEL_LAUNCH: "on_kernel_launch",
    EventCategory.MEMORY_ALLOC: "on_memory_alloc",
    EventCategory.MEMORY_FREE: "on_memory_free",
    EventCategory.MEMCPY: "on_memcpy",
    EventCategory.MEMSET: "on_memset",
    EventCategory.SYNCHRONIZATION: "on_synchronization",
    EventCategory.MEMORY_ACCESS: "on_memory_access",
    EventCategory.INSTRUCTION: "on_instruction",
    EventCategory.KERNEL_MEMORY_PROFILE: "on_kernel_memory_profile",
    EventCategory.OPERATOR_START: "on_operator_start",
    EventCategory.OPERATOR_END: "on_operator_end",
    EventCategory.TENSOR_ALLOC: "on_tensor_alloc",
    EventCategory.TENSOR_FREE: "on_tensor_free",
    EventCategory.REGION_START: "on_region",
    EventCategory.REGION_STOP: "on_region",
}
