"""Tool registry and selection.

The paper's artifact selects a tool with ``accelprof -t <tool> <executable>``
or via an environment variable.  The registry maps tool names to tool factories
and resolves the user's selection (explicit name, ``PASTA_TOOL`` environment
variable, or a default).
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional

from repro.errors import ToolError
from repro.core.tool import PastaTool

#: Environment variable used to select a tool (the CLI's ``-t`` equivalent).
PASTA_TOOL_ENV = "PASTA_TOOL"

#: Factory signature for registered tools.
ToolFactory = Callable[[], PastaTool]

_registry: dict[str, ToolFactory] = {}


def register_tool(name: str, factory: ToolFactory, overwrite: bool = False) -> None:
    """Register a tool factory under ``name``."""
    key = name.strip().lower()
    if not key:
        raise ToolError("tool name must be non-empty")
    if key in _registry and not overwrite:
        raise ToolError(f"tool {name!r} is already registered")
    _registry[key] = factory


def registered_tools() -> list[str]:
    """Names of all registered tools."""
    return sorted(_registry)


def create_tool(name: str) -> PastaTool:
    """Instantiate a registered tool by name."""
    key = name.strip().lower()
    factory = _registry.get(key)
    if factory is None:
        raise ToolError(f"unknown tool {name!r}; registered tools: {registered_tools()}")
    return factory()


def create_tools(names: Iterable[str]) -> list[PastaTool]:
    """Instantiate several registered tools."""
    return [create_tool(name) for name in names]


def select_tool(
    explicit: Optional[str] = None, env: Optional[dict[str, str]] = None
) -> PastaTool:
    """Resolve the user's tool selection.

    Precedence: an explicit name, then the ``PASTA_TOOL`` environment variable.
    Raises :class:`~repro.errors.ToolError` if neither is set.
    """
    env = dict(os.environ if env is None else env)
    name = explicit or env.get(PASTA_TOOL_ENV)
    if not name:
        raise ToolError(
            f"no tool selected; pass a name or set the {PASTA_TOOL_ENV} environment variable "
            f"(registered tools: {registered_tools()})"
        )
    return create_tool(name)


def clear_registry() -> None:
    """Remove all registered tools (used by tests)."""
    _registry.clear()
