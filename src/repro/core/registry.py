"""Typed multi-namespace registry: the framework's single extension point.

The paper's pitch is a *modular* framework: tools, vendor backends, devices,
models and analysis models all plug into one session abstraction.  This module
is the plug board.  A :class:`Registry` holds one :class:`RegistryNamespace`
per extension kind; each namespace is typed (it validates what registrants
hand it), raises the domain's own error class, and can populate itself from
three sources:

* **built-ins** — seeded lazily on first access, so importing the registry
  never drags in the simulator, the model zoo, or the tool collection;
* **explicit registration** — :meth:`Registry.register` or the
  :meth:`Registry.provider` decorator::

      @REGISTRY.provider("tools", "my_tool")
      class MyTool(PastaTool): ...

* **entry points** — third-party distributions advertise plugins under the
  ``pasta.<namespace>`` entry-point groups (``pasta.tools``,
  ``pasta.vendors``, ``pasta.devices``, ``pasta.models``,
  ``pasta.analysis_models``) and are discovered via
  :mod:`importlib.metadata` without touching ``repro.*``::

      [project.entry-points."pasta.tools"]
      my_tool = "my_package.tools:MyTool"

The historical tool-only helpers (``register_tool``, ``create_tool``,
``registered_tools``, ``select_tool``, the ``PASTA_TOOL`` environment
variable) remain the supported convenience surface for the ``tools``
namespace — they are thin views over :data:`REGISTRY`.
"""

from __future__ import annotations

import importlib
import importlib.metadata
import os
import sys
import threading
import warnings
from typing import Callable, Iterable, Iterator, Optional, Sequence, TYPE_CHECKING

from repro.errors import (
    DeviceError,
    ModelError,
    PastaError,
    RegistryError,
    ToolError,
    VendorError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.tool import PastaTool

#: Environment variable used to select a tool (the CLI's ``-t`` equivalent).
PASTA_TOOL_ENV = "PASTA_TOOL"

#: Factory signature for registered tools.
ToolFactory = Callable[[], "PastaTool"]

#: Prefix shared by every entry-point group the registry scans.
ENTRY_POINT_PREFIX = "pasta"


def _seed_tools(ns: "RegistryNamespace") -> Optional[bool]:
    # Importing the package registers the bundled tool collection.  If the
    # module is already (or still) being imported on another thread, calling
    # import_module here could deadlock against the import lock; fall back to
    # its idempotent registration hook instead.
    module = sys.modules.get("repro.tools")
    if module is None:
        importlib.import_module("repro.tools")
        return None
    register = getattr(module, "register_builtin_tools", None)
    if register is None:
        # Mid-import on another thread and the hook is not defined yet:
        # report "not seeded" so the next access retries instead of
        # latching the namespace empty.
        return False
    register()
    return None


def _seed_vendors(ns: "RegistryNamespace") -> None:
    from repro.vendors import BUILTIN_BACKENDS, BACKEND_ALIASES

    for name, factory in BUILTIN_BACKENDS.items():
        aliases = tuple(a for a, target in BACKEND_ALIASES.items() if target == name)
        ns.register(name, factory, aliases=aliases, skip_existing=True)


def _seed_devices(ns: "RegistryNamespace") -> None:
    from repro.gpusim.device import BUILTIN_DEVICE_SPECS, DEVICE_ALIASES

    for name, spec in BUILTIN_DEVICE_SPECS.items():
        aliases = tuple(a for a, target in DEVICE_ALIASES.items() if target == name)
        ns.register(name, spec, aliases=aliases, skip_existing=True)


def _seed_models(ns: "RegistryNamespace") -> None:
    from repro.dlframework.models import MODEL_ALIASES, MODEL_REGISTRY

    for name, factory in MODEL_REGISTRY.items():
        aliases = tuple(a for a, target in MODEL_ALIASES.items() if target == name)
        ns.register(name, factory, aliases=aliases, skip_existing=True)


def _seed_analysis_models(ns: "RegistryNamespace") -> None:
    from repro.gpusim.trace import AnalysisModel

    for member in AnalysisModel:
        ns.register(member.value, member, skip_existing=True)


def _product_check(dotted: str) -> Callable[[object], bool]:
    """Lazily-resolved ``isinstance`` check against ``module:attr``."""

    def check(obj: object) -> bool:
        module_name, _, attr = dotted.partition(":")
        base = getattr(importlib.import_module(module_name), attr)
        return isinstance(obj, base)

    return check


class RegistryNamespace:
    """One typed name -> entry mapping inside a :class:`Registry`.

    Parameters
    ----------
    name:
        Namespace identifier (``"tools"``, ``"devices"``, ...); also the
        plural noun used in error messages.
    kind:
        ``"factory"`` entries are zero-argument callables instantiated by
        :meth:`create`; ``"value"`` entries are returned as-is.
    noun:
        Singular noun for error messages (``"tool"``, ``"device"``).
    error:
        Domain error class raised for lookup/registration failures.
    entry_point_group:
        :mod:`importlib.metadata` group scanned for plugins
        (``"pasta.tools"``); empty disables discovery for this namespace.
    seed:
        Callback registering the built-in entries; invoked lazily on first
        access so the registry itself stays import-light.
    product_check:
        Optional predicate applied to whatever :meth:`create` produced;
        a failing check raises the namespace's error class.
    """

    def __init__(
        self,
        name: str,
        *,
        kind: str = "factory",
        noun: Optional[str] = None,
        error: type = RegistryError,
        entry_point_group: str = "",
        seed: Optional[Callable[["RegistryNamespace"], Optional[bool]]] = None,
        product_check: Optional[Callable[[object], bool]] = None,
        registry: Optional["Registry"] = None,
    ) -> None:
        if kind not in ("factory", "value"):
            raise RegistryError(f"namespace kind must be 'factory' or 'value', got {kind!r}")
        self.name = name
        self.kind = kind
        self.noun = noun or name.rstrip("s").replace("_", " ")
        self.error = error
        self.entry_point_group = entry_point_group
        self._seed = seed
        self._seeded = seed is None
        self._seeding = False
        self._seed_lock = threading.RLock()
        self._product_check = product_check
        self._registry = registry
        self._entries: dict[str, object] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(name: str) -> str:
        key = str(name).strip().lower()
        return key

    def register(
        self,
        name: str,
        entry: object,
        *,
        overwrite: bool = False,
        skip_existing: bool = False,
        aliases: Sequence[str] = (),
    ) -> object:
        """Register ``entry`` under ``name`` (plus optional aliases).

        A duplicate name raises the namespace's error class unless
        ``overwrite=True`` (replace) or ``skip_existing=True`` (keep the
        existing entry — used by built-in seeding and plugin discovery so
        an explicit registration always wins).  Returns the entry so the
        method can back a decorator.
        """
        self._ensure_seeded()
        key = self._key(name)
        if not key:
            raise self.error(f"{self.noun} name must be non-empty")
        if self.kind == "factory" and not callable(entry):
            raise self.error(
                f"{self.noun} {name!r} must be registered as a zero-argument "
                f"factory (a class or function), got {type(entry).__name__}"
            )
        if key in self._entries or key in self._aliases:
            if skip_existing:
                return self._entries.get(key, entry)
            if not overwrite:
                raise self.error(
                    f"{self.noun} {name!r} is already registered; pass "
                    f"overwrite=True to replace it"
                )
            self._aliases.pop(key, None)
        self._entries[key] = entry
        for alias in aliases:
            alias_key = self._key(alias)
            if not alias_key or alias_key == key:
                continue
            if alias_key in self._entries:
                raise self.error(
                    f"alias {alias!r} for {self.noun} {name!r} collides with a "
                    f"registered {self.noun}"
                )
            self._aliases[alias_key] = key
        return entry

    def unregister(self, name: str) -> bool:
        """Remove one entry (and its aliases); True if it existed."""
        self._ensure_seeded()
        key = self._key(name)
        key = self._aliases.get(key, key)
        if key not in self._entries:
            return False
        del self._entries[key]
        self._aliases = {a: t for a, t in self._aliases.items() if t != key}
        return True

    def clear(self) -> None:
        """Drop every entry and alias (built-ins will not auto-reseed)."""
        self._seeded = True  # an explicit clear means "empty", not "unseeded"
        self._entries.clear()
        self._aliases.clear()

    def reset(self) -> None:
        """Drop everything and allow built-ins to reseed on next access."""
        self._entries.clear()
        self._aliases.clear()
        self._seeded = self._seed is None

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def _ensure_seeded(self) -> None:
        if self._seeded:
            return
        # Double-checked locking: concurrent first accesses (e.g. campaign
        # worker threads) must block until seeding completes rather than see
        # a half-populated namespace.  The seeding thread itself re-enters
        # through register() and is let through by the _seeding flag.
        with self._seed_lock:
            if self._seeded or self._seeding:
                return
            self._seeding = True
            try:
                assert self._seed is not None
                done = self._seed(self)
            finally:
                self._seeding = False
            # Latch only on success: a raising seed (e.g. a transient
            # ImportError) propagates and is retried on the next access
            # instead of leaving the namespace permanently empty; a seed may
            # also return False to request a retry explicitly.
            self._seeded = done is not False

    def resolve(self, name: str) -> str:
        """Canonical key for ``name`` (follows aliases); raises if unknown."""
        self._ensure_seeded()
        key = self._key(name)
        key = self._aliases.get(key, key)
        if key not in self._entries:
            if self._registry is not None and self._registry.discover_on_miss(self):
                return self.resolve(name)
            raise self.error(
                f"unknown {self.noun} {name!r}; registered {self.name}: {self.names()}"
            )
        return key

    def get(self, name: str) -> object:
        """The raw registered entry (factory or value) for ``name``."""
        return self._entries[self.resolve(name)]

    def create(self, name: str) -> object:
        """Instantiate (``kind="factory"``) or fetch (``kind="value"``) ``name``."""
        entry = self.get(name)
        product = entry() if self.kind == "factory" else entry
        if self._product_check is not None and not self._product_check(product):
            raise self.error(
                f"{self.noun} {name!r} produced a {type(product).__name__}, "
                f"which is not a valid {self.noun} for the {self.name!r} namespace"
            )
        return product

    def names(self) -> list[str]:
        """Sorted canonical names (aliases excluded), plugins included.

        Listing triggers the one-shot entry-point scan so installed plugins
        show up in ``--list-...`` output, not only on lookup misses.
        """
        self._ensure_seeded()
        if self._registry is not None and self.entry_point_group:
            self._registry.discover()
        return sorted(self._entries)

    def aliases(self) -> dict[str, str]:
        """Alias -> canonical-name mapping."""
        self._ensure_seeded()
        return dict(self._aliases)

    def __contains__(self, name: str) -> bool:
        self._ensure_seeded()
        key = self._key(name)
        return key in self._entries or key in self._aliases

    def __len__(self) -> int:
        self._ensure_seeded()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RegistryNamespace {self.name!r} ({len(self)} entries)>"


class Registry:
    """A set of typed namespaces with decorator and entry-point registration."""

    def __init__(self) -> None:
        self._namespaces: dict[str, RegistryNamespace] = {}
        self._discovered = False

    # ------------------------------------------------------------------ #
    # namespaces
    # ------------------------------------------------------------------ #
    def add_namespace(self, namespace: RegistryNamespace) -> RegistryNamespace:
        if namespace.name in self._namespaces:
            raise RegistryError(f"namespace {namespace.name!r} already exists")
        namespace._registry = self
        self._namespaces[namespace.name] = namespace
        return namespace

    def namespace(self, name: str) -> RegistryNamespace:
        ns = self._namespaces.get(name)
        if ns is None:
            raise RegistryError(
                f"unknown registry namespace {name!r}; namespaces: {self.namespaces()}"
            )
        return ns

    def namespaces(self) -> list[str]:
        return sorted(self._namespaces)

    # ------------------------------------------------------------------ #
    # convenience passthroughs
    # ------------------------------------------------------------------ #
    def register(self, namespace: str, name: str, entry: object, **kwargs: object) -> object:
        return self.namespace(namespace).register(name, entry, **kwargs)  # type: ignore[arg-type]

    def get(self, namespace: str, name: str) -> object:
        return self.namespace(namespace).get(name)

    def create(self, namespace: str, name: str) -> object:
        return self.namespace(namespace).create(name)

    def names(self, namespace: str) -> list[str]:
        return self.namespace(namespace).names()

    def provider(
        self,
        namespace: str,
        name: Optional[str] = None,
        *,
        overwrite: bool = False,
        aliases: Sequence[str] = (),
    ) -> Callable:
        """Decorator registering a class or factory in ``namespace``.

        The registered name defaults to the decorated object's ``tool_name``
        attribute, falling back to its lowercased ``__name__``::

            @REGISTRY.provider("tools")
            class CacheLineTool(PastaTool):
                tool_name = "cache_lines"
        """

        def decorate(obj):
            registered = name or getattr(obj, "tool_name", None) or obj.__name__.lower()
            self.namespace(namespace).register(
                str(registered), obj, overwrite=overwrite, aliases=aliases
            )
            return obj

        return decorate

    # ------------------------------------------------------------------ #
    # entry-point discovery
    # ------------------------------------------------------------------ #
    def discover(
        self,
        *,
        path: Optional[Sequence[str]] = None,
        force: bool = False,
    ) -> dict[str, list[str]]:
        """Scan ``pasta.*`` entry points and register every plugin found.

        With ``path`` the scan is restricted to distributions importable from
        those directories (used by tests to point at a synthetic
        distribution); otherwise the interpreter's installed distributions
        are scanned once per process (pass ``force=True`` to re-scan).
        Existing registrations always win: a plugin can never silently
        shadow a built-in or an explicitly registered entry.  A plugin whose
        ``load()`` fails is skipped with a :class:`RuntimeWarning` rather
        than breaking the host application.  Returns the names registered,
        keyed by namespace.
        """
        if path is None:
            if self._discovered and not force:
                return {}
            self._discovered = True
        groups = {
            ns.entry_point_group: ns
            for ns in self._namespaces.values()
            if ns.entry_point_group
        }
        found: dict[str, list[str]] = {}
        for group, ns in groups.items():
            for ep in self._entry_points(group, path):
                if ep.name in ns:
                    continue
                try:
                    entry = ep.load()
                except Exception as error:  # pragma: no cover - plugin bug path
                    warnings.warn(
                        f"failed to load {group} entry point {ep.name!r} "
                        f"({ep.value}): {type(error).__name__}: {error}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                ns.register(ep.name, entry, skip_existing=True)
                found.setdefault(ns.name, []).append(ep.name)
        return found

    def discover_on_miss(self, namespace: RegistryNamespace) -> bool:
        """Run one lazy discovery pass after a lookup miss; True if it ran."""
        if self._discovered or not namespace.entry_point_group:
            return False
        return bool(self.discover()) or True

    @staticmethod
    def _entry_points(group: str, path: Optional[Sequence[str]]) -> Iterable:
        if path is None:
            return importlib.metadata.entry_points(group=group)
        eps = []
        for dist in importlib.metadata.distributions(path=list(path)):
            eps.extend(ep for ep in dist.entry_points if ep.group == group)
        return eps


def _default_registry() -> Registry:
    registry = Registry()
    registry.add_namespace(RegistryNamespace(
        "tools",
        kind="factory",
        noun="tool",
        error=ToolError,
        entry_point_group=f"{ENTRY_POINT_PREFIX}.tools",
        seed=_seed_tools,
        product_check=_product_check("repro.core.tool:PastaTool"),
    ))
    registry.add_namespace(RegistryNamespace(
        "vendors",
        kind="factory",
        noun="profiling backend",
        error=VendorError,
        entry_point_group=f"{ENTRY_POINT_PREFIX}.vendors",
        seed=_seed_vendors,
        product_check=_product_check("repro.vendors.base:ProfilingBackend"),
    ))
    registry.add_namespace(RegistryNamespace(
        "devices",
        kind="value",
        noun="device",
        error=DeviceError,
        entry_point_group=f"{ENTRY_POINT_PREFIX}.devices",
        seed=_seed_devices,
        product_check=_product_check("repro.gpusim.device:DeviceSpec"),
    ))
    registry.add_namespace(RegistryNamespace(
        "models",
        kind="factory",
        noun="model",
        error=ModelError,
        entry_point_group=f"{ENTRY_POINT_PREFIX}.models",
        seed=_seed_models,
        product_check=_product_check("repro.dlframework.models.base:ModelBase"),
    ))
    registry.add_namespace(RegistryNamespace(
        "analysis_models",
        kind="value",
        noun="analysis model",
        error=PastaError,
        entry_point_group=f"{ENTRY_POINT_PREFIX}.analysis_models",
        seed=_seed_analysis_models,
    ))
    return registry


#: The process-wide registry every framework component consults.
REGISTRY = _default_registry()


def discover_plugins(
    path: Optional[Sequence[str]] = None, force: bool = True
) -> dict[str, list[str]]:
    """Explicitly scan for ``pasta.*`` entry-point plugins (see README)."""
    return REGISTRY.discover(path=path, force=force)


# ---------------------------------------------------------------------- #
# historical tool-namespace helpers (the supported convenience surface)
# ---------------------------------------------------------------------- #
def register_tool(name: str, factory: ToolFactory, overwrite: bool = False) -> None:
    """Register a tool factory under ``name``."""
    REGISTRY.namespace("tools").register(name, factory, overwrite=overwrite)


def registered_tools() -> list[str]:
    """Names of all registered tools."""
    return REGISTRY.names("tools")


def create_tool(name: str) -> "PastaTool":
    """Instantiate a registered tool by name."""
    return REGISTRY.create("tools", name)  # type: ignore[return-value]


def create_tools(names: Iterable[str]) -> list["PastaTool"]:
    """Instantiate several registered tools."""
    return [create_tool(name) for name in names]


def select_tool(
    explicit: Optional[str] = None, env: Optional[dict[str, str]] = None
) -> "PastaTool":
    """Resolve the user's tool selection.

    Precedence: an explicit name, then the ``PASTA_TOOL`` environment
    variable.  Raises :class:`~repro.errors.ToolError` if neither is set.
    """
    env = dict(os.environ if env is None else env)
    name = explicit or env.get(PASTA_TOOL_ENV)
    if not name:
        raise ToolError(
            f"no tool selected; pass a name or set the {PASTA_TOOL_ENV} environment variable "
            f"(registered tools: {registered_tools()})"
        )
    return create_tool(name)


def clear_registry(namespace: str = "tools") -> None:
    """Remove every entry of one namespace (used by tests).

    Clearing is sticky — built-ins do not silently reseed — so a test that
    clears the tool namespace sees exactly what it registers afterwards.
    Use :meth:`RegistryNamespace.reset` (or re-register the built-ins, e.g.
    ``repro.tools.register_builtin_tools()``) to restore the defaults.
    """
    REGISTRY.namespace(namespace).clear()
