"""PASTA event handler: vendor + framework adapters and event normalisation.

The handler is the first of PASTA's three modules (Figure 1).  It

* configures and registers with the profiling utilities — the simulated vendor
  backends in :mod:`repro.vendors` and the framework callback registry in
  :mod:`repro.dlframework.callbacks`,
* translates each vendor callback / framework callback into the unified event
  model of :mod:`repro.core.events`, normalising cross-vendor inconsistencies
  (sign conventions for reclamation sizes, naming, direction metadata), and
* forwards normalised events to the event processor.

Supporting a new accelerator only requires adding a backend adapter here; the
processor and tools are untouched (the modularity claim of Section III-A).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HandlerError
from repro.core.events import (
    BATCH_CATEGORY_BASES,
    EventCategory,
    InstructionBatch,
    InstructionEvent,
    KernelArgumentInfo,
    KernelLaunchEvent,
    MemcpyEvent,
    MemoryAccessBatch,
    MemoryAccessEvent,
    MemoryAllocEvent,
    MemoryFreeEvent,
    MemsetEvent,
    OperatorEndEvent,
    OperatorStartEvent,
    PastaEvent,
    RegionEvent,
    RuntimeApiEvent,
    SynchronizationEvent,
    TensorAllocEvent,
    TensorFreeEvent,
)
from repro.dlframework.allocator import MemoryUsageRecord
from repro.dlframework.callbacks import FrameworkCallbackRegistry, OperatorEvent
from repro.gpusim.instruction import InstructionBatchRecord, InstructionRecord
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import MemoryObject
from repro.gpusim.runtime import MemcpyRecord, MemsetRecord, SyncRecord
from repro.vendors.base import ProfilingBackend, VendorCallback

#: Signature of the sink that receives normalised events (the event processor).
EventSink = Callable[[PastaEvent], None]


class PastaEventHandler:
    """Normalises vendor and framework callbacks into PASTA events."""

    def __init__(self, sink: Optional[EventSink] = None) -> None:
        self._sink: Optional[EventSink] = sink
        self._backends: list[ProfilingBackend] = []
        self._framework_registries: list[FrameworkCallbackRegistry] = []
        #: Per-device running kernel-launch index (the "grid id" of the paper's
        #: START_GRID_ID/END_GRID_ID range filter).
        self._grid_index: dict[int, int] = {}
        #: Enabled event categories; everything is enabled by default.
        self._enabled: set[EventCategory] = set(EventCategory)
        #: Enabled set with batch categories masked out when their per-record
        #: base is disabled; consulted once per emitted event.
        self._effective_enabled: frozenset[EventCategory] = frozenset(self._enabled)
        self.events_emitted = 0
        self.events_dropped = 0

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def set_sink(self, sink: EventSink) -> None:
        """Set the downstream consumer (normally the event processor)."""
        self._sink = sink

    def enable_category(self, category: EventCategory, enabled: bool = True) -> None:
        """Enable or disable emission of one event category.

        Disabling a per-record fine-grained category also silences its batch
        form, so the data cannot sneak through in the other shape.
        """
        if enabled:
            self._enabled.add(category)
        else:
            self._enabled.discard(category)
        effective = set(self._enabled)
        for batch, base in BATCH_CATEGORY_BASES.items():
            if base not in self._enabled:
                effective.discard(batch)
        self._effective_enabled = frozenset(effective)

    def enabled_categories(self) -> frozenset[EventCategory]:
        """Categories that are effectively emitted.

        A batch category only counts as enabled while its per-record base
        category is enabled too, matching what :meth:`emit` actually drops.
        """
        return self._effective_enabled

    # ------------------------------------------------------------------ #
    # attachment
    # ------------------------------------------------------------------ #
    def attach_vendor_backend(self, backend: ProfilingBackend) -> None:
        """Register with a vendor profiling backend (low-level events)."""
        if backend in self._backends:
            return
        backend.register_callback(self._on_vendor_callback)
        self._backends.append(backend)

    def detach_vendor_backend(self, backend: ProfilingBackend) -> None:
        """Stop receiving callbacks from a vendor backend."""
        if backend in self._backends:
            backend.unregister_callback(self._on_vendor_callback)
            self._backends.remove(backend)

    def attach_framework(self, registry: FrameworkCallbackRegistry, device_index: int = 0) -> None:
        """Register with a DL framework's callback registry (high-level events)."""
        if registry in self._framework_registries:
            return
        registry.add_operator_callback(lambda event: self._on_operator_event(event))
        registry.add_memory_callback(lambda record: self._on_memory_usage(record, device_index))
        self._framework_registries.append(registry)

    @property
    def attached_backends(self) -> list[ProfilingBackend]:
        """Vendor backends the handler is currently registered with."""
        return list(self._backends)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def emit(self, event: PastaEvent) -> None:
        """Forward one normalised event to the sink (dropping disabled categories)."""
        if event.category not in self._effective_enabled:
            self.events_dropped += 1
            return
        if self._sink is None:
            raise HandlerError("event handler has no sink; call set_sink() first")
        self.events_emitted += 1
        self._sink(event)

    def emit_region(self, label: str, starting: bool, device_index: int = 0) -> None:
        """Emit an annotation region boundary (used by the ``pasta`` package)."""
        self.emit(RegionEvent(label=label, starting=starting, device_index=device_index,
                              source="annotation"))

    # ------------------------------------------------------------------ #
    # vendor callback translation
    # ------------------------------------------------------------------ #
    def _on_vendor_callback(self, callback: VendorCallback) -> None:
        payload = callback.payload
        device = callback.device_index
        source = callback.backend
        if isinstance(payload, KernelLaunch):
            if callback.cbid.endswith(("LAUNCH_BEGIN", "entry", "enter")):
                # Launch-begin callbacks carry no completed-duration metadata;
                # PASTA uses the end callback as the canonical launch event.
                return
            self.emit(self._normalize_kernel_launch(payload, device, source))
        elif isinstance(payload, MemoryObject):
            if "FREE" in callback.cbid.upper() or "hipFree" in callback.cbid:
                self.emit(MemoryFreeEvent(
                    address=payload.address, size=payload.size, object_id=payload.object_id,
                    device_index=device, source=source,
                    timestamp_ns=payload.free_time_ns or 0,
                ))
            else:
                self.emit(MemoryAllocEvent(
                    address=payload.address, size=payload.size, object_id=payload.object_id,
                    memory_kind=payload.kind.value, tag=payload.tag,
                    device_index=device, source=source, timestamp_ns=payload.alloc_time_ns,
                ))
        elif isinstance(payload, MemcpyRecord):
            self.emit(MemcpyEvent(
                size=payload.size, direction=payload.kind.value,
                duration_ns=payload.duration_ns, stream_id=payload.stream_id,
                device_index=device, source=source, timestamp_ns=payload.start_time_ns,
            ))
        elif isinstance(payload, MemsetRecord):
            self.emit(MemsetEvent(
                address=payload.address, size=payload.size, value=payload.value,
                device_index=device, source=source, timestamp_ns=payload.start_time_ns,
            ))
        elif isinstance(payload, SyncRecord):
            self.emit(SynchronizationEvent(
                scope=payload.scope, stream_id=payload.stream_id,
                device_index=device, source=source, timestamp_ns=payload.time_ns,
            ))
        elif isinstance(payload, InstructionBatchRecord):
            self._emit_instruction_batch(payload, device, source)
        elif isinstance(payload, InstructionRecord):
            self._emit_instruction(payload, device, source)
        elif isinstance(payload, str):
            self.emit(RuntimeApiEvent(api_name=payload, device_index=device, source=source))

    def _normalize_kernel_launch(
        self, launch: KernelLaunch, device: int, source: str
    ) -> KernelLaunchEvent:
        """Extract and normalise kernel-launch metadata (grid config etc.)."""
        index = self._grid_index.get(device, 0)
        self._grid_index[device] = index + 1
        grid = launch.grid_config
        arguments = tuple(
            KernelArgumentInfo(
                address=arg.address,
                size=arg.size,
                referenced_bytes=arg.referenced_bytes,
                access_count=arg.access_count,
                label=arg.label,
            )
            for arg in launch.arguments
        )
        return KernelLaunchEvent(
            arguments=arguments,
            kernel_name=launch.kernel_name,
            launch_id=launch.launch_id,
            grid=(grid.grid.x, grid.grid.y, grid.grid.z),
            block=(grid.block.x, grid.block.y, grid.block.z),
            stream_id=launch.stream_id,
            duration_ns=launch.duration_ns,
            memory_footprint_bytes=launch.memory_footprint_bytes,
            working_set_bytes=launch.working_set_bytes,
            total_memory_accesses=launch.total_memory_accesses,
            op_context=launch.op_context,
            grid_index=index,
            device_index=device,
            source=source,
            timestamp_ns=launch.start_time_ns,
        )

    def _emit_instruction_batch(
        self, batch: InstructionBatchRecord, device: int, source: str
    ) -> None:
        """Normalise one columnar vendor batch into PASTA batch events.

        The batch's three sections are emitted in stream order (pre-access
        instructions, memory accesses, post-access instructions), so tools
        that unroll see exactly the sequence the per-record protocol
        delivers.
        """
        if batch.pre_kinds:
            self.emit(InstructionBatch(
                kernel_launch_id=batch.kernel_launch_id,
                kinds=batch.pre_kinds,
                thread_indices=batch.pre_thread_indices,
                block_indices=batch.pre_block_indices,
                device_index=device,
                source=source,
            ))
        if batch.addresses:
            sizes = batch.sizes
            if 0 in sizes:
                # Same normalisation the per-record path applies
                # (``record.size or 4``), so both delivery modes agree.
                sizes = tuple(size or 4 for size in sizes)
            self.emit(MemoryAccessBatch(
                kernel_launch_id=batch.kernel_launch_id,
                addresses=batch.addresses,
                sizes=sizes,
                write_flags=batch.write_flags,
                thread_indices=batch.access_thread_indices,
                block_indices=batch.access_block_indices,
                device_index=device,
                source=source,
            ))
        if batch.post_kinds:
            self.emit(InstructionBatch(
                kernel_launch_id=batch.kernel_launch_id,
                kinds=batch.post_kinds,
                thread_indices=batch.post_thread_indices,
                block_indices=batch.post_block_indices,
                device_index=device,
                source=source,
            ))

    def _emit_instruction(self, record: InstructionRecord, device: int, source: str) -> None:
        if record.kind.is_memory_access and record.address is not None:
            self.emit(MemoryAccessEvent(
                address=record.address,
                size=record.size or 4,
                is_write=record.kind.is_write,
                kernel_launch_id=record.kernel_launch_id,
                thread_index=record.thread_index,
                block_index=record.block_index,
                device_index=device,
                source=source,
            ))
        else:
            self.emit(InstructionEvent(
                kind=record.kind,
                kernel_launch_id=record.kernel_launch_id,
                thread_index=record.thread_index,
                block_index=record.block_index,
                device_index=device,
                source=source,
            ))

    # ------------------------------------------------------------------ #
    # framework callback translation
    # ------------------------------------------------------------------ #
    def _on_operator_event(self, event: OperatorEvent) -> None:
        if event.phase == "start":
            self.emit(OperatorStartEvent(
                op_id=event.op_id, name=event.name, scope=event.scope,
                sequence=event.sequence, python_stack=event.python_stack,
                device_index=event.device_index, source="framework",
            ))
        else:
            self.emit(OperatorEndEvent(
                op_id=event.op_id, name=event.name, scope=event.scope,
                sequence=event.sequence, kernel_count=event.kernel_count,
                device_index=event.device_index, source="framework",
            ))

    def _on_memory_usage(self, record: MemoryUsageRecord, device_index: int) -> None:
        # Normalisation: some runtimes report reclamation as a negative delta,
        # others as a positive size with a separate event type.  PASTA exposes
        # a positive size plus an explicit alloc/free category.
        event_cls = TensorAllocEvent if record.delta_bytes >= 0 else TensorFreeEvent
        self.emit(event_cls(
            tensor_id=record.tensor_id,
            tensor_name=record.tensor_name,
            address=record.address,
            nbytes=abs(record.delta_bytes),
            pool_allocated_bytes=record.allocated_bytes,
            pool_reserved_bytes=record.reserved_bytes,
            event_index=record.event_index,
            device_index=record.device_index if record.device_index else device_index,
            source="framework",
        ))
