"""PASTA core: the paper's primary contribution.

Event model (Table II), event handler, event processor with GPU-resident
preprocessing and dispatch, the tool-collection template, range-specific
analysis, cross-layer call stacks, inefficiency-location knobs, overhead
accounting, and the user-facing session.
"""

from repro.core.annotations import RangeFilter, start, stop
from repro.core.callstack import (
    CrossLayerStack,
    StackFrame,
    build_cross_layer_stack,
    python_frames_from_stack,
    synthesize_cpp_frames,
)
from repro.core.events import (
    COARSE_CATEGORIES,
    EventCategory,
    FINE_GRAINED_CATEGORIES,
    FRAMEWORK_CATEGORIES,
    InstructionEvent,
    KernelArgumentInfo,
    KernelLaunchEvent,
    KernelMemoryProfile,
    MemcpyEvent,
    MemoryAccessEvent,
    MemoryAllocEvent,
    MemoryFreeEvent,
    MemsetEvent,
    OperatorEndEvent,
    OperatorStartEvent,
    PastaEvent,
    RegionEvent,
    RuntimeApiEvent,
    SynchronizationEvent,
    TensorAllocEvent,
    TensorFreeEvent,
)
from repro.core.handler import PastaEventHandler
from repro.core.knobs import (
    KernelStats,
    KnobRegistry,
    max_called_kernel,
    max_duration_kernel,
    max_mem_referenced_kernel,
    max_working_set_kernel,
)
from repro.core.overhead import OverheadAccountant
from repro.core.processor import DispatchUnit, PastaEventProcessor
from repro.core.registry import (
    PASTA_TOOL_ENV,
    REGISTRY,
    Registry,
    RegistryNamespace,
    clear_registry,
    create_tool,
    create_tools,
    discover_plugins,
    register_tool,
    registered_tools,
    select_tool,
)
from repro.core.session import PROFILER_RESERVED_BYTES, PastaSession
from repro.core.tool import PastaTool

__all__ = [
    "COARSE_CATEGORIES",
    "CrossLayerStack",
    "DispatchUnit",
    "EventCategory",
    "FINE_GRAINED_CATEGORIES",
    "FRAMEWORK_CATEGORIES",
    "InstructionEvent",
    "KernelArgumentInfo",
    "KernelLaunchEvent",
    "KernelMemoryProfile",
    "KernelStats",
    "KnobRegistry",
    "MemcpyEvent",
    "MemoryAccessEvent",
    "MemoryAllocEvent",
    "MemoryFreeEvent",
    "MemsetEvent",
    "OperatorEndEvent",
    "OperatorStartEvent",
    "OverheadAccountant",
    "PASTA_TOOL_ENV",
    "PROFILER_RESERVED_BYTES",
    "REGISTRY",
    "Registry",
    "RegistryNamespace",
    "discover_plugins",
    "PastaEvent",
    "PastaEventHandler",
    "PastaEventProcessor",
    "PastaSession",
    "PastaTool",
    "RangeFilter",
    "RegionEvent",
    "RuntimeApiEvent",
    "StackFrame",
    "SynchronizationEvent",
    "TensorAllocEvent",
    "TensorFreeEvent",
    "build_cross_layer_stack",
    "clear_registry",
    "create_tool",
    "create_tools",
    "max_called_kernel",
    "max_duration_kernel",
    "max_mem_referenced_kernel",
    "max_working_set_kernel",
    "python_frames_from_stack",
    "register_tool",
    "registered_tools",
    "select_tool",
    "start",
    "stop",
    "synthesize_cpp_frames",
]
