"""PASTA event processor: preprocessing, GPU-resident analysis and dispatch.

The processor is the second of PASTA's three modules (Figure 1).  It receives
normalised events from the event handler and

* **CPU-preprocesses coarse-grained events** (kernel launches, allocations,
  copies) — in this simulation a pass-through plus range filtering,
* **GPU-preprocesses fine-grained data**: instead of shipping raw per-access
  records to the host, the GPU-resident analysis reduces each instrumented
  kernel launch into a per-object access-count map
  (:class:`~repro.core.events.KernelMemoryProfile`), reproducing the
  collect-and-analyze model of Figure 2b / Figure 8b, and
* **dispatches** the resulting events to the registered tools through the
  dispatch unit, honouring each tool's category subscriptions and the active
  range filter.  Routing is indexed — per-category tool tuples are rebuilt
  when the tool set changes — so delivering an event costs one lookup, and
  fine-grained columnar batches (one event per kernel launch) flow straight
  through to the tools' batch hooks.

An optional :class:`~repro.core.overhead.OverheadAccountant` charges every
analysed kernel with the cost the configured backend/analysis-model pair would
incur, which is how the Figure 9/10 experiments measure overhead.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Callable, Optional

from repro.core.annotations import RangeFilter
from repro.core.events import (
    BATCH_CATEGORY_BASES,
    EventCategory,
    FINE_GRAINED_CATEGORIES,
    KernelLaunchEvent,
    KernelMemoryProfile,
    PastaEvent,
    RegionEvent,
)

#: Columnar batch categories (keys of the batch→base mapping).
_BATCH_CATEGORIES = frozenset(BATCH_CATEGORY_BASES)
from repro.core.overhead import OverheadAccountant
from repro.core.tool import PastaTool
from repro.gpusim.trace import AccessCountMap

#: Resolves an address to ``(object_id, object_size)`` or ``None``; normally
#: bound to the driver allocator's lookup.
AddressResolver = Callable[[int], Optional[tuple[int, int]]]


class DispatchUnit:
    """Routes preprocessed events to the tools that subscribed to them.

    Routing is indexed: a per-category tuple of subscribed tools is
    precomputed whenever the tool set changes, so delivering an event is one
    dict lookup plus direct calls — no per-event ``wants()`` scan over every
    registered tool.  Tools whose ``wants()`` answer changes after
    registration must call :meth:`rebuild_index`.
    """

    def __init__(self) -> None:
        self._tools: list[PastaTool] = []
        self._routes: dict[EventCategory, tuple[PastaTool, ...]] = {}
        self.dispatched_events = 0
        #: Per-tool cumulative ``handle_event`` nanoseconds, or ``None`` when
        #: hook timing is disabled (the default): the hot dispatch loop pays
        #: one ``is None`` check, not two clock reads per tool call.
        self._hook_time_ns: Optional[dict[str, int]] = None

    def enable_hook_timing(self) -> None:
        """Start accumulating per-tool dispatch time (telemetry sampling)."""
        if self._hook_time_ns is None:
            self._hook_time_ns = {}

    def hook_times_ns(self) -> dict[str, int]:
        """Cumulative per-tool dispatch nanoseconds (empty when disabled)."""
        return dict(self._hook_time_ns or {})

    def register_tool(self, tool: PastaTool) -> None:
        """Add a tool to the dispatch table."""
        if tool not in self._tools:
            self._tools.append(tool)
            self.rebuild_index()

    def unregister_tool(self, tool: PastaTool) -> None:
        """Remove a tool from the dispatch table."""
        if tool in self._tools:
            self._tools.remove(tool)
            self.rebuild_index()

    def rebuild_index(self) -> None:
        """Recompute the per-category routing tuples from ``wants()``."""
        self._routes = {
            category: tuple(tool for tool in self._tools if tool.wants(category))
            for category in EventCategory
        }

    @property
    def tools(self) -> list[PastaTool]:
        """Registered tools, in registration order."""
        return list(self._tools)

    def has_subscribers(self, category: EventCategory) -> bool:
        """True if at least one registered tool subscribes to ``category``."""
        return bool(self._routes.get(category))

    def dispatch(self, event: PastaEvent) -> None:
        """Deliver one event to every subscribed tool."""
        route = self._routes.get(event.category)
        if not route:
            return
        if self._hook_time_ns is None:
            for tool in route:
                tool.handle_event(event)
        else:
            times = self._hook_time_ns
            for tool in route:
                started = perf_counter_ns()
                tool.handle_event(event)
                times[tool.tool_name] = (
                    times.get(tool.tool_name, 0) + perf_counter_ns() - started
                )
        self.dispatched_events += len(route)


class PastaEventProcessor:
    """Preprocesses events and feeds the dispatch unit."""

    def __init__(
        self,
        address_resolver: Optional[AddressResolver] = None,
        range_filter: Optional[RangeFilter] = None,
        enable_gpu_preprocessing: bool = True,
        overhead_accountant: Optional[OverheadAccountant] = None,
    ) -> None:
        self.dispatch_unit = DispatchUnit()
        self.address_resolver = address_resolver
        self.range_filter = range_filter or RangeFilter()
        self.enable_gpu_preprocessing = enable_gpu_preprocessing
        self.overhead_accountant = overhead_accountant
        self.events_processed = 0
        self.events_filtered = 0
        self.gpu_preprocessed_kernels = 0
        self.batches_dispatched = 0
        #: Logical records carried by those batches (sum of batch lengths).
        self.batch_records = 0
        #: Cumulative per-object access counts across all analysed kernels.
        self.global_access_map = AccessCountMap()

    # ------------------------------------------------------------------ #
    # tool registration (delegated to the dispatch unit)
    # ------------------------------------------------------------------ #
    def register_tool(self, tool: PastaTool) -> None:
        """Register a tool for dispatch."""
        self.dispatch_unit.register_tool(tool)

    def unregister_tool(self, tool: PastaTool) -> None:
        """Unregister a tool."""
        self.dispatch_unit.unregister_tool(tool)

    def rebuild_dispatch_index(self) -> None:
        """Recompute event routing after a registered tool changed its
        ``subscribed_categories`` / ``wants()`` answers in place."""
        self.dispatch_unit.rebuild_index()

    @property
    def tools(self) -> list[PastaTool]:
        """Registered tools."""
        return self.dispatch_unit.tools

    def _any_tool_wants(self, category: EventCategory) -> bool:
        return self.dispatch_unit.has_subscribers(category)

    # ------------------------------------------------------------------ #
    # event intake
    # ------------------------------------------------------------------ #
    def submit(self, event: PastaEvent) -> None:
        """Entry point the event handler feeds (one normalised event)."""
        self.events_processed += 1
        if isinstance(event, RegionEvent):
            self._handle_region(event)
            return
        if event.category is EventCategory.KERNEL_LAUNCH:
            self._handle_kernel_launch(event)  # type: ignore[arg-type]
            return
        if event.category in FINE_GRAINED_CATEGORIES:
            # Fine-grained events inherit their kernel's range decision: when
            # an annotation window is active, accesses are only generated for
            # launches inside it, so they can be forwarded directly.
            if event.category in _BATCH_CATEGORIES:
                self.batches_dispatched += 1
                self.batch_records += len(event)  # type: ignore[arg-type]
            self.dispatch_unit.dispatch(event)
            return
        self.dispatch_unit.dispatch(event)

    def _handle_region(self, event: RegionEvent) -> None:
        if event.starting:
            self.range_filter.open_region(event.label)
        else:
            self.range_filter.close_region(event.label)
        self.dispatch_unit.dispatch(event)

    def _handle_kernel_launch(self, event: KernelLaunchEvent) -> None:
        if not self.range_filter.in_range(event.grid_index):
            self.events_filtered += 1
            return
        if self.overhead_accountant is not None:
            self.overhead_accountant.record_kernel(event)
        self.dispatch_unit.dispatch(event)
        if self.enable_gpu_preprocessing and self._any_tool_wants(
            EventCategory.KERNEL_MEMORY_PROFILE
        ):
            profile = self.gpu_preprocess_kernel(event)
            self.dispatch_unit.dispatch(profile)

    # ------------------------------------------------------------------ #
    # GPU-resident preprocessing (Figure 2b / Figure 8b)
    # ------------------------------------------------------------------ #
    def gpu_preprocess_kernel(self, event: KernelLaunchEvent) -> KernelMemoryProfile:
        """Reduce one launch's accesses into a per-object access-count map.

        On real hardware this reduction runs as ``__device__`` analysis threads
        while the kernel executes; only the small result map crosses PCIe.
        Here the reduction is computed from the launch's argument metadata and
        the address resolver, which yields the identical result map.
        """
        access_counts: dict[int, int] = {}
        referenced: dict[int, int] = {}
        footprint = 0
        working_set = 0
        total_accesses = 0
        for arg in event.arguments:
            footprint += arg.size
            working_set += arg.referenced_bytes
            total_accesses += arg.access_count
            if arg.access_count <= 0:
                continue
            object_id = self._resolve_object(arg.address)
            access_counts[object_id] = access_counts.get(object_id, 0) + arg.access_count
            referenced[object_id] = referenced.get(object_id, 0) + arg.referenced_bytes
            self.global_access_map.record(object_id, arg.access_count)
        self.gpu_preprocessed_kernels += 1
        return KernelMemoryProfile(
            kernel_name=event.kernel_name,
            launch_id=event.launch_id,
            op_context=event.op_context,
            object_access_counts=access_counts,
            object_referenced_bytes=referenced,
            footprint_bytes=footprint,
            working_set_bytes=working_set,
            total_accesses=total_accesses,
            device_index=event.device_index,
            timestamp_ns=event.timestamp_ns,
            source="pasta_processor",
        )

    def _resolve_object(self, address: int) -> int:
        if self.address_resolver is None:
            # Without a driver allocator to consult, fall back to a synthetic
            # object id derived from the address's 2 MiB-aligned base.
            return address >> 21
        resolved = self.address_resolver(address)
        if resolved is None:
            return address >> 21
        object_id, _size = resolved
        return object_id
