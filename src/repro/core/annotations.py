"""Range-specific analysis: grid-id windows and ``pasta.start()/stop()`` regions.

Section III-F1 of the paper describes two ways to focus analysis on a
sub-region of an application:

* the ``START_GRID_ID`` / ``END_GRID_ID`` environment variables select a window
  of kernel-launch indices for standard GPU applications, and
* the ``pasta`` Python package lets users bracket interesting code regions with
  ``pasta.start()`` and ``pasta.stop()`` (e.g. around one transformer layer).

Both are implemented by :class:`RangeFilter`, which the event processor
consults before dispatching kernel-level events to tools.  The module-level
``start``/``stop`` functions provide the user-facing annotation API; they act
on the currently active :class:`~repro.core.session.PastaSession`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AnnotationError

#: Environment variable names used by the paper's artifact.
START_GRID_ID_ENV = "START_GRID_ID"
END_GRID_ID_ENV = "END_GRID_ID"


@dataclass
class RangeFilter:
    """Decides whether kernel-level events fall inside the analysis range.

    The filter is permissive by default (everything is analysed).  Setting a
    grid-id window restricts analysis to launches whose sequential index lies
    in ``[start_grid_id, end_grid_id]``; annotation regions restrict analysis
    to launches that occur while at least one ``pasta.start()`` region is open.
    When both mechanisms are configured a launch must satisfy both.
    """

    start_grid_id: Optional[int] = None
    end_grid_id: Optional[int] = None
    #: Whether any annotation region has been used during this run; once a
    #: region has been seen, launches outside regions are filtered out.
    annotations_used: bool = False
    _open_regions: list[str] = field(default_factory=list)
    kernels_in_range: int = 0
    kernels_filtered: int = 0

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    @classmethod
    def from_environment(cls, env: Optional[dict[str, str]] = None) -> "RangeFilter":
        """Build a filter from ``START_GRID_ID`` / ``END_GRID_ID``."""
        env = dict(os.environ if env is None else env)
        start = env.get(START_GRID_ID_ENV)
        end = env.get(END_GRID_ID_ENV)
        filt = cls()
        if start is not None:
            filt.start_grid_id = int(start)
        if end is not None:
            filt.end_grid_id = int(end)
        return filt

    def set_grid_window(self, start: Optional[int], end: Optional[int]) -> None:
        """Explicitly set the grid-id window."""
        if start is not None and end is not None and end < start:
            raise AnnotationError(f"END_GRID_ID ({end}) must be >= START_GRID_ID ({start})")
        self.start_grid_id = start
        self.end_grid_id = end

    # ------------------------------------------------------------------ #
    # annotation regions
    # ------------------------------------------------------------------ #
    def open_region(self, label: str = "") -> None:
        """Enter a ``pasta.start()`` region."""
        self.annotations_used = True
        self._open_regions.append(label)

    def close_region(self, label: str = "") -> str:
        """Leave the innermost region; returns its label."""
        if not self._open_regions:
            raise AnnotationError("pasta.stop() called without a matching pasta.start()")
        return self._open_regions.pop()

    @property
    def region_depth(self) -> int:
        """Number of currently open annotation regions."""
        return len(self._open_regions)

    @property
    def current_region(self) -> str:
        """Label of the innermost open region ('' when none)."""
        return self._open_regions[-1] if self._open_regions else ""

    # ------------------------------------------------------------------ #
    # the filter itself
    # ------------------------------------------------------------------ #
    def in_range(self, grid_index: int) -> bool:
        """True if a launch with this sequential index should be analysed."""
        if self.start_grid_id is not None and grid_index < self.start_grid_id:
            self.kernels_filtered += 1
            return False
        if self.end_grid_id is not None and grid_index > self.end_grid_id:
            self.kernels_filtered += 1
            return False
        if self.annotations_used and not self._open_regions:
            self.kernels_filtered += 1
            return False
        self.kernels_in_range += 1
        return True


# --------------------------------------------------------------------------- #
# the user-facing ``pasta`` annotation API
# --------------------------------------------------------------------------- #
_active_session = None


def _set_active_session(session) -> None:
    """Install the session that annotation calls should act on (internal)."""
    global _active_session
    _active_session = session


def _get_active_session():
    """Return the active session, or None."""
    return _active_session


def start(label: str = "") -> None:
    """Begin an analysis region (the paper's ``pasta.start()``).

    Inside a region, kernel launches and fine-grained events are analysed;
    once any region has been used, launches outside all regions are skipped.
    A no-op when no PASTA session is active, so annotated application code
    runs unmodified without the profiler.
    """
    if _active_session is not None:
        _active_session.begin_region(label)


def stop(label: str = "") -> None:
    """End the innermost analysis region (the paper's ``pasta.stop()``)."""
    if _active_session is not None:
        _active_session.end_region(label)
