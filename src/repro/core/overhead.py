"""Profiling-overhead accounting (data source for Figures 9 and 10).

The accountant sits beside the event processor and charges each analysed
kernel launch with the cost the selected instrumentation backend and analysis
model would incur, using the analytical model in
:mod:`repro.gpusim.costmodel`.  At the end of a run it exposes the total
:class:`~repro.gpusim.costmodel.ProfilingCost`, its normalised overhead
(Figure 9's y-axis) and its execution/collection/transfer/analysis breakdown
(Figure 10's y-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.events import KernelLaunchEvent
from repro.gpusim.costmodel import (
    CostModelConfig,
    InstrumentationBackend,
    OverheadModel,
    ProfilingCost,
)
from repro.gpusim.device import DeviceSpec
from repro.gpusim.trace import AnalysisModel


@dataclass
class OverheadAccountant:
    """Accumulates profiling cost across the kernels of one run."""

    device_spec: DeviceSpec
    analysis_model: AnalysisModel = AnalysisModel.GPU_RESIDENT
    backend: InstrumentationBackend = InstrumentationBackend.COMPUTE_SANITIZER
    config: Optional[CostModelConfig] = None
    cost: ProfilingCost = field(default_factory=ProfilingCost)
    kernels_recorded: int = 0

    def __post_init__(self) -> None:
        self._model = OverheadModel(self.device_spec, self.config)

    def record_kernel(self, event: KernelLaunchEvent) -> ProfilingCost:
        """Charge the cost of profiling one kernel launch and return it."""
        kernel_cost = self._model.kernel_cost(
            kernel_duration_ns=float(event.duration_ns),
            memory_accesses=event.total_memory_accesses,
            model=self.analysis_model,
            backend=self.backend,
        )
        self.cost = self.cost + kernel_cost
        self.kernels_recorded += 1
        return kernel_cost

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def normalized_overhead(self) -> float:
        """Total overhead relative to uninstrumented execution time."""
        return self.cost.normalized_overhead()

    def breakdown_fractions(self) -> dict[str, float]:
        """Fraction of profiled time per component."""
        return self.cost.fractions()

    def report(self) -> dict[str, object]:
        """Structured summary of the accumulated cost."""
        return {
            "device": self.device_spec.name,
            "analysis_model": self.analysis_model.value,
            "backend": self.backend.value,
            "kernels": self.kernels_recorded,
            "execution_ns": self.cost.execution_ns,
            "collection_ns": self.cost.collection_ns,
            "transfer_ns": self.cost.transfer_ns,
            "analysis_ns": self.cost.analysis_ns,
            "total_ns": self.cost.total_ns,
            "normalized_overhead": self.normalized_overhead(),
            "fractions": self.breakdown_fractions(),
        }
