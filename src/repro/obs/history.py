"""Cross-run telemetry history: a run index and regression diffs.

One telemetry run is one JSONL file; a campaign of runs leaves a directory
tree of them.  This module makes that history queryable and comparable:

* :class:`RunIndex` — scans a root directory for telemetry files and
  indexes each by its manifest (``run_id``, creation time, rank, and the
  provenance the sink accumulated — most importantly the ProfileSpec
  digest).  ``pasta telemetry list`` renders it; :meth:`RunIndex.resolve`
  turns a run-id prefix (or a literal path) back into a file.
* :func:`diff_runs` — compare two runs span-name by span-name (wall and CPU
  time, counts, self time) and counter by counter, flagging regressions
  past a configurable threshold.  ``pasta telemetry diff A B --threshold``
  exits non-zero when anything regressed, which is the whole CI-gate story:
  record telemetry on main, record it on the branch, diff.

Two runs are *comparable* when their provenance carries the same spec
digest — same workload, same tools, same knobs, same package version.  The
diff still runs (and says so) when the digests differ; the flag exists so a
gate can refuse to compare apples to oranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.errors import ReproError
from repro.obs.report import (
    aggregate_spans,
    manifest_of,
    metrics_of,
    self_overhead_of,
    span_records,
)
from repro.obs.sink import read_records

#: Spans whose baseline wall time is below this floor are never flagged as
#: regressions — microsecond-scale spans are all jitter, no signal.
MIN_REGRESSION_WALL_NS = 1_000_000


@dataclass
class RunEntry:
    """One indexed telemetry run (manifest identity + cheap aggregates)."""

    path: Path
    run_id: str
    created_unix: float
    rank: int
    pid: int
    repro_version: str
    provenance: dict[str, object] = field(default_factory=dict)
    spans: int = 0
    wall_ns: int = 0
    errors: int = 0
    closed: bool = False

    @property
    def spec_digest(self) -> Optional[str]:
        """The ProfileSpec digest the run annotated (None when absent)."""
        digest = self.provenance.get("spec_digest")
        return str(digest) if digest is not None else None

    def to_dict(self) -> dict[str, object]:
        return {
            "path": str(self.path),
            "run_id": self.run_id,
            "created_unix": self.created_unix,
            "rank": self.rank,
            "pid": self.pid,
            "repro_version": self.repro_version,
            "provenance": dict(self.provenance),
            "spec_digest": self.spec_digest,
            "spans": self.spans,
            "wall_ns": self.wall_ns,
            "errors": self.errors,
            "closed": self.closed,
        }


def index_run(path: Union[str, Path]) -> RunEntry:
    """Index one telemetry file (raises :class:`ReproError` when it isn't one)."""
    path = Path(path)
    records = read_records(path)
    manifest = manifest_of(records)
    spans = span_records(records)
    roots_wall = sum(
        int(s.get("wall_ns") or 0) for s in spans if s.get("parent_id") is None
    )
    return RunEntry(
        path=path,
        run_id=str(manifest.get("run_id")),
        created_unix=float(manifest.get("created_unix") or 0.0),
        rank=int(manifest.get("rank") or 0),  # type: ignore[arg-type]
        pid=int(manifest.get("pid") or 0),  # type: ignore[arg-type]
        repro_version=str(manifest.get("repro_version")),
        provenance=dict(manifest.get("provenance") or {}),  # type: ignore[arg-type]
        spans=len(spans),
        wall_ns=roots_wall,
        errors=sum(1 for s in spans if s.get("status") == "error"),
        # A cleanly closed run ends with the sink's self_overhead record.
        closed=self_overhead_of(records) is not None,
    )


class RunIndex:
    """All telemetry runs under one root directory, newest first."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.entries: list[RunEntry] = []
        self.skipped: list[Path] = []
        if self.root.is_file():
            candidates = [self.root]
        elif self.root.is_dir():
            candidates = sorted(self.root.rglob("*.jsonl"))
        else:
            raise ReproError(f"no telemetry root at {self.root}")
        for candidate in candidates:
            try:
                self.entries.append(index_run(candidate))
            except Exception:
                # Not every .jsonl under the root is telemetry (result
                # stores, status streams); skip quietly but keep the list.
                self.skipped.append(candidate)
        self.entries.sort(key=lambda e: -e.created_unix)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def by_digest(self) -> dict[Optional[str], list[RunEntry]]:
        """Runs grouped by spec digest (comparable runs share a group)."""
        groups: dict[Optional[str], list[RunEntry]] = {}
        for entry in self.entries:
            groups.setdefault(entry.spec_digest, []).append(entry)
        return groups

    def resolve(self, run: str) -> RunEntry:
        """Find one run by run-id prefix (or by its file path)."""
        as_path = Path(run)
        if as_path.exists():
            target = as_path if as_path.is_file() else as_path / "telemetry.jsonl"
            return index_run(target)
        matches = [e for e in self.entries if e.run_id.startswith(run)]
        if not matches:
            known = ", ".join(e.run_id for e in self.entries[:10]) or "none"
            raise ReproError(
                f"no telemetry run matching {run!r} under {self.root} "
                f"(known runs: {known})"
            )
        if len(matches) > 1:
            raise ReproError(
                f"run id {run!r} is ambiguous under {self.root}: "
                f"{[e.run_id for e in matches]}"
            )
        return matches[0]


def resolve_run_records(
    run: str, *, root: Union[str, Path] = "."
) -> tuple[RunEntry, list[dict[str, object]]]:
    """Resolve a path-or-run-id to ``(entry, records)``.

    A literal path wins without scanning; anything else is looked up as a
    run-id prefix in the :class:`RunIndex` over ``root``.
    """
    as_path = Path(run)
    if as_path.exists():
        target = as_path if as_path.is_file() else as_path / "telemetry.jsonl"
        return index_run(target), read_records(target)
    entry = RunIndex(root).resolve(run)
    return entry, read_records(entry.path)


# ---------------------------------------------------------------------- #
# cross-run diffs
# ---------------------------------------------------------------------- #
def _counter_values(records: list[dict[str, object]]) -> dict[str, object]:
    snapshot = metrics_of(records)
    if not snapshot:
        return {}
    counters = snapshot.get("counters")
    return dict(counters) if isinstance(counters, Mapping) else {}


def diff_runs(
    baseline: list[dict[str, object]],
    current: list[dict[str, object]],
    *,
    threshold: float = 0.05,
    min_wall_ns: int = MIN_REGRESSION_WALL_NS,
) -> dict[str, object]:
    """Per-span-name and per-counter comparison of two telemetry runs.

    A span name *regresses* when its aggregate wall time grew by more than
    ``threshold`` (a fraction: 0.05 flags > +5%) and its baseline wall time
    is at least ``min_wall_ns``.  The result is JSON-native; ``regressions``
    counts the flagged span names, which the CLI turns into the exit code.
    """
    if threshold < 0:
        raise ReproError(f"threshold must be >= 0, got {threshold}")
    base_manifest = manifest_of(baseline)
    cur_manifest = manifest_of(current)
    base_digest = (base_manifest.get("provenance") or {}).get("spec_digest")  # type: ignore[union-attr]
    cur_digest = (cur_manifest.get("provenance") or {}).get("spec_digest")  # type: ignore[union-attr]
    base_by_name = aggregate_spans(span_records(baseline))
    cur_by_name = aggregate_spans(span_records(current))

    spans: dict[str, dict[str, object]] = {}
    regressions = 0
    for name in sorted(set(base_by_name) | set(cur_by_name)):
        base_agg = base_by_name.get(name)
        cur_agg = cur_by_name.get(name)
        row: dict[str, object] = {
            "baseline_count": base_agg["count"] if base_agg else 0,
            "current_count": cur_agg["count"] if cur_agg else 0,
            "baseline_wall_ns": base_agg["wall_ns"] if base_agg else 0,
            "current_wall_ns": cur_agg["wall_ns"] if cur_agg else 0,
            "baseline_self_wall_ns": base_agg["self_wall_ns"] if base_agg else 0,
            "current_self_wall_ns": cur_agg["self_wall_ns"] if cur_agg else 0,
            "baseline_cpu_ns": base_agg["cpu_ns"] if base_agg else 0,
            "current_cpu_ns": cur_agg["cpu_ns"] if cur_agg else 0,
            "only_in": (
                "baseline" if cur_agg is None
                else "current" if base_agg is None else None
            ),
        }
        base_wall = int(row["baseline_wall_ns"])  # type: ignore[arg-type]
        cur_wall = int(row["current_wall_ns"])  # type: ignore[arg-type]
        row["wall_delta_ns"] = cur_wall - base_wall
        row["ratio"] = (cur_wall / base_wall) if base_wall else None
        regressed = (
            base_agg is not None and cur_agg is not None
            and base_wall >= min_wall_ns
            and cur_wall > base_wall * (1.0 + threshold)
        )
        row["regressed"] = regressed
        if regressed:
            regressions += 1
        spans[name] = row

    base_counters = _counter_values(baseline)
    cur_counters = _counter_values(current)
    counters: dict[str, dict[str, object]] = {}
    for name in sorted(set(base_counters) | set(cur_counters)):
        base_value = base_counters.get(name, 0)
        cur_value = cur_counters.get(name, 0)
        counters[name] = {
            "baseline": base_value,
            "current": cur_value,
            "delta": (cur_value or 0) - (base_value or 0),  # type: ignore[operator]
        }

    return {
        "baseline": {
            "run_id": base_manifest.get("run_id"),
            "spec_digest": base_digest,
            "repro_version": base_manifest.get("repro_version"),
        },
        "current": {
            "run_id": cur_manifest.get("run_id"),
            "spec_digest": cur_digest,
            "repro_version": cur_manifest.get("repro_version"),
        },
        "same_spec": (
            base_digest is not None and base_digest == cur_digest
        ),
        "threshold": threshold,
        "min_wall_ns": min_wall_ns,
        "spans": spans,
        "counters": counters,
        "regressions": regressions,
    }


# ---------------------------------------------------------------------- #
# text rendering
# ---------------------------------------------------------------------- #
def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:,.2f}ms"


def render_run_list(entries: list[RunEntry]) -> str:
    """Aligned table of indexed runs (``pasta telemetry list``)."""
    if not entries:
        return "no telemetry runs found"
    rows = []
    for entry in entries:
        digest = entry.spec_digest
        provenance = {k: v for k, v in entry.provenance.items()
                      if k != "spec_digest"}
        rows.append((
            entry.run_id,
            f"rank{entry.rank}",
            str(entry.spans),
            _fmt_ms(entry.wall_ns),
            (digest[:12] if digest else "-"),
            "closed" if entry.closed else "crashed",
            ", ".join(f"{k}={v}" for k, v in sorted(provenance.items())) or "-",
        ))
    headers = ("run", "rank", "spans", "wall", "digest", "state", "provenance")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_diff(result: Mapping[str, object]) -> str:
    """Human-readable form of :func:`diff_runs`."""
    baseline = result.get("baseline") or {}
    current = result.get("current") or {}
    lines = [
        f"baseline {baseline.get('run_id')} -> current {current.get('run_id')}"  # type: ignore[union-attr]
        f"  (threshold +{float(result.get('threshold') or 0) * 100:.0f}%)",
    ]
    if not result.get("same_spec"):
        lines.append(
            "WARNING: runs have different spec digests "
            f"({baseline.get('spec_digest')} vs {current.get('spec_digest')}); "  # type: ignore[union-attr]
            "wall-time deltas may reflect different workloads"
        )
    spans = result.get("spans") or {}
    name_width = max((len(n) for n in spans), default=4)
    name_width = max(name_width, len("span"))
    lines.append(
        f"{'span':<{name_width}}  {'baseline':>12}  {'current':>12}  "
        f"{'delta':>12}  flag"
    )
    for name, row in spans.items():  # type: ignore[union-attr]
        flag = "REGRESSED" if row.get("regressed") else (
            f"only-{row['only_in']}" if row.get("only_in") else ""
        )
        lines.append(
            f"{name:<{name_width}}  "
            f"{_fmt_ms(int(row['baseline_wall_ns'])):>12}  "
            f"{_fmt_ms(int(row['current_wall_ns'])):>12}  "
            f"{_fmt_ms(int(row['wall_delta_ns'])):>12}  {flag}"
        )
    counters = result.get("counters") or {}
    changed = {n: c for n, c in counters.items() if c.get("delta")}  # type: ignore[union-attr]
    if changed:
        lines.append("")
        lines.append("counter deltas:")
        for name, cell in changed.items():
            lines.append(
                f"  {name}: {cell['baseline']} -> {cell['current']} "
                f"({cell['delta']:+})"
            )
    lines.append("")
    lines.append(f"{result.get('regressions')} span(s) regressed")
    return "\n".join(lines)


__all__ = [
    "MIN_REGRESSION_WALL_NS",
    "RunEntry",
    "RunIndex",
    "diff_runs",
    "index_run",
    "render_diff",
    "render_run_list",
    "resolve_run_records",
]
