"""Stdlib ``logging`` integration for the profiler's own namespace.

Every logger the repo uses comes from :func:`get_logger`, which namespaces
under ``repro.`` (``get_logger("campaign")`` → ``repro.campaign``), so an
embedding application controls the whole profiler with one line of ordinary
``logging`` configuration — no custom handler types, no side channels.

:func:`configure_logging` is the CLI's entry point for ``--log-level``: it
installs a single stderr handler on the ``repro`` root logger (idempotent —
re-invocations only adjust the level) and leaves the global root logger
untouched, so library users never see surprise handlers.

Telemetry records are mirrored to the ``repro.obs`` logger at DEBUG by
:class:`~repro.obs.telemetry.Telemetry`, which means
``pasta --log-level debug profile ...`` streams spans to stderr live even
when no ``--telemetry`` sink is configured.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

#: Root logger name for everything in this package.
ROOT_LOGGER = "repro"

#: Log line format used by the CLI handler.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_handler: Optional[logging.Handler] = None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger()`` returns the ``repro`` root; ``get_logger("campaign")``
    returns ``repro.campaign``; a name already starting with ``repro`` is
    used verbatim (so modules may pass ``__name__``).
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def parse_level(level: Union[str, int]) -> int:
    """Translate a ``--log-level`` argument to a ``logging`` level number."""
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(level.strip().upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def configure_logging(level: Union[str, int] = "warning") -> logging.Logger:
    """Route ``repro.*`` logs to stderr at ``level`` (idempotent).

    Installs one stream handler on the ``repro`` logger the first time; later
    calls only adjust the level.  The handler does not propagate to the
    global root, so embedding applications keep full control.
    """
    global _handler
    logger = logging.getLogger(ROOT_LOGGER)
    resolved = parse_level(level)
    if _handler is None:
        _handler = logging.StreamHandler(sys.stderr)
        _handler.setFormatter(logging.Formatter(LOG_FORMAT))
        logger.addHandler(_handler)
        logger.propagate = False
    logger.setLevel(resolved)
    return logger


def reset_logging() -> None:
    """Remove the CLI handler (test hygiene)."""
    global _handler
    logger = logging.getLogger(ROOT_LOGGER)
    if _handler is not None:
        logger.removeHandler(_handler)
        _handler = None
    logger.propagate = True
    logger.setLevel(logging.NOTSET)
