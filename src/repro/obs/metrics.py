"""Metrics registry: counters, gauges and fixed-bucket histograms.

The profiler's own throughput and health indicators — events per second,
cache hits, queue depths, job latencies — are ordinary metric instruments,
kept deliberately tiny:

* :class:`Counter` — a monotonically increasing integer (``inc``);
* :class:`Gauge` — a last-value-wins sample (``set``);
* :class:`Histogram` — a fixed-bucket distribution (``observe``); bucket
  edges are chosen at creation and never resize, so snapshots from different
  runs line up column for column.

Instruments live in a :class:`MetricsRegistry` keyed by name;
:meth:`MetricsRegistry.snapshot` renders the whole registry as one
JSON-native dict (the record the telemetry sink appends on close).

Increments are plain attribute updates guarded only by the GIL: instruments
are updated from the scheduler's worker threads as well as the main thread,
and a lost increment in a throughput counter is an acceptable trade for
keeping ``inc()`` off every profile's critical path.  Instrument *creation*
is locked, so two threads asking for the same name always share one object.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Optional, Sequence, Union

from repro.errors import ReproError

#: Default histogram bucket upper bounds for durations in seconds: sub-ms to
#: minutes, roughly geometric.  The last implicit bucket is +inf.
DURATION_BUCKETS_S = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: Default bucket upper bounds for dimensionless sizes/counts (batch sizes,
#: queue depths): powers of four.
SIZE_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def as_value(self) -> int:
        return self.value


class Gauge:
    """Last-value-wins sample."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        """Record the current value."""
        self.value = value

    def as_value(self) -> Union[int, float]:
        return self.value


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` are the inclusive upper bounds of each bucket, strictly
    increasing; one overflow bucket (``+inf``) is always appended.  An
    observation lands in the first bucket whose bound is >= the value, i.e.
    bucket ``i`` covers ``(buckets[i-1], buckets[i]]`` — a value exactly on
    an edge counts toward the bucket the edge bounds.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DURATION_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ReproError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ReproError(
                f"histogram {name!r} bucket bounds must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the bucket the quantile lands in, with
        the estimate clamped to the observed ``[min, max]`` — so p50/p95/p99
        are approximations whose error is bounded by the bucket width, never
        values outside what was actually seen.  Returns ``None`` before the
        first observation.
        """
        if not 0.0 < q <= 1.0:
            raise ReproError(
                f"histogram {self.name!r} percentile q must be in (0, 1], got {q}"
            )
        if not self.count:
            return None
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if bucket_count and cumulative >= target:
                lo = self.buckets[i - 1] if i else 0.0
                hi = (
                    self.buckets[i] if i < len(self.buckets)
                    else (self.max if self.max is not None else self.buckets[-1])
                )
                fraction = (target - (cumulative - bucket_count)) / bucket_count
                estimate = lo + (hi - lo) * fraction
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
        return self.max

    def as_value(self) -> dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "mean": (self.sum / self.count) if self.count else 0.0,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Name-keyed collection of instruments with a JSON-native snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DURATION_BUCKETS_S
    ) -> Histogram:
        """Get or create the histogram ``name``.

        The first creation fixes the bucket edges; later calls with different
        edges raise rather than silently measuring two distributions that
        cannot be merged.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, buckets)
            elif instrument.buckets != tuple(float(b) for b in buckets):
                raise ReproError(
                    f"histogram {name!r} already exists with buckets "
                    f"{instrument.buckets}, requested {tuple(buckets)}"
                )
            return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-native view of every instrument, sorted by name."""
        with self._lock:
            return {
                "counters": {n: c.as_value() for n, c in sorted(self._counters.items())},
                "gauges": {n: g.as_value() for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.as_value() for n, h in sorted(self._histograms.items())},
            }


class NullInstrument:
    """Shared no-op stand-in for every instrument kind when telemetry is off.

    One instance serves every name: ``inc``/``set``/``observe`` fall through
    immediately, so a disabled telemetry call site pays one method call and
    nothing else.
    """

    __slots__ = ()

    name = ""

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass

    def as_value(self) -> int:
        return 0


#: The shared no-op instrument.
NULL_INSTRUMENT = NullInstrument()
