"""Run-scoped JSONL telemetry sink with a provenance manifest.

One telemetry run writes one ``telemetry.jsonl``: a stream of JSON objects,
one per line, in the order they were emitted — the same "JSON Lines
everywhere" discipline the campaign result store uses, so the file tails,
greps, and pipes like any other store.  The first line is always the run
*manifest*, which pins the provenance every later record inherits:

``{"type": "manifest", "schema": 1, "run_id": ..., "repro_version": ...,``
``"pid": ..., "rank": ..., "created_unix": ..., "platform": ...,``
``"python": ..., "argv": [...], "provenance": {...}}``

``provenance`` carries caller-supplied identity (the ProfileSpec digest, the
campaign name, the trace path).  Record types appended afterwards:

* ``span`` — one closed tracer span (:mod:`repro.obs.spans`);
* ``event`` — one point-in-time annotation;
* ``metrics`` — the final registry snapshot, written on close.

Writes are line-buffered behind a lock (spans close on worker threads too)
and the file is flushed on every write, so a crashed run keeps everything
emitted before the crash — the telemetry analogue of the campaign store's
append-per-job durability.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.core.serialization import json_sanitize

#: Default file name inside a telemetry directory.
TELEMETRY_FILE = "telemetry.jsonl"

#: Manifest schema version.
MANIFEST_SCHEMA = 1


def telemetry_path(target: Union[str, Path]) -> Path:
    """Resolve a CLI ``--telemetry`` target to the JSONL file path.

    A directory (existing or ending without a ``.jsonl`` suffix) means
    ``<dir>/telemetry.jsonl``; an explicit ``*.jsonl`` path is used as-is.
    """
    target = Path(target)
    if target.suffix == ".jsonl":
        return target
    return target / TELEMETRY_FILE


class JsonlSink:
    """Append-only JSONL writer for telemetry records."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        rank: int = 0,
        provenance: Optional[Mapping[str, object]] = None,
        argv: Optional[list[str]] = None,
    ) -> None:
        import repro

        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = uuid.uuid4().hex[:12]
        self._lock = threading.Lock()
        self._file = open(self.path, "w", encoding="utf-8")
        self.records_written = 0
        self._closed = False
        self.manifest: dict[str, object] = {
            "type": "manifest",
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "repro_version": repro.__version__,
            "pid": os.getpid(),
            "rank": rank,
            "created_unix": round(time.time(), 6),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "argv": list(sys.argv if argv is None else argv),
            "provenance": dict(provenance or {}),
        }
        self.write(self.manifest)

    @property
    def closed(self) -> bool:
        """True once the sink has been closed."""
        return self._closed

    def write(self, record: Mapping[str, object]) -> None:
        """Append one record as a JSON line (no-op after close)."""
        with self._lock:
            if self._closed:
                return
            self._file.write(
                json.dumps(json_sanitize(record), sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._file.flush()
            self.records_written += 1

    def annotate_provenance(self, **fields: object) -> None:
        """Merge late-bound provenance (e.g. a spec digest) and append the
        delta as an ``event`` record, so readers see it without re-reading
        the manifest line."""
        self.manifest.setdefault("provenance", {}).update(fields)  # type: ignore[union-attr]
        self.write({
            "type": "event",
            "name": "provenance",
            "ts_unix": round(time.time(), 6),
            "attrs": dict(fields),
        })

    def close(self, final_records: Optional[list[Mapping[str, object]]] = None) -> None:
        """Append any final records (idempotent) and close the file."""
        with self._lock:
            if self._closed:
                return
            for record in final_records or []:
                self._file.write(
                    json.dumps(json_sanitize(record), sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
                self.records_written += 1
            self._file.flush()
            self._file.close()
            self._closed = True


def read_records(target: Union[str, Path]) -> list[dict[str, object]]:
    """Load every record of a telemetry file (or directory).

    Tolerates a truncated final line (a run killed mid-write) by skipping
    it; any other malformed line raises, since the sink never writes one.
    """
    path = telemetry_path(target)
    records: list[dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn tail of a crashed run
            raise
    return records
