"""Telemetry facade: tracer + metrics + sink behind one no-op-able handle.

Everything the profiler instruments itself with goes through a
:class:`Telemetry` object:

* ``telemetry.span("campaign.job", model="gpt2")`` — a context-managed span;
* ``telemetry.counter("campaign.cache_hits").inc()`` — metric instruments;
* ``telemetry.event("provenance", digest=...)`` — point annotations;
* ``telemetry.close()`` — flush the final metrics snapshot and summary.

The crucial property is the **no-op fast path**: the module-level default is
:data:`NULL_TELEMETRY`, whose every operation returns a shared null object
and touches no state, so instrumentation left in the hot layers costs one
method call when telemetry is disabled — nothing is formatted, allocated or
written.  Instrumented code never needs ``if enabled:`` guards *except*
where building the call's arguments is itself expensive; ``enabled`` exists
for exactly those sites.

A process has at most one *active* telemetry at a time (:func:`active` /
:func:`activate`), which is what the instrumented layers consult when no
explicit handle is passed down.  The ``PASTA_TELEMETRY`` environment
variable names a directory to activate telemetry in for processes not
started through the CLI flags (e.g. the perf benchmark harness).

Every record is optionally mirrored to the ``repro.obs`` stdlib logger at
DEBUG level, so an embedding application gets logs through plain ``logging``
configuration without ever touching the sink.
"""

from __future__ import annotations

import atexit
import logging
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence, Union

from repro.obs.log import get_logger
from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullInstrument,
)
from repro.obs.sink import JsonlSink, telemetry_path
from repro.obs.spans import NULL_SPAN, AttrValue, NullSpan, Span, SpanTracer

#: Environment variable naming a telemetry directory (or ``*.jsonl`` path).
TELEMETRY_ENV = "PASTA_TELEMETRY"

#: Bucket bounds (seconds) for the span wall-time self-histogram: spans range
#: from microsecond bookkeeping to whole-campaign roots, so the buckets span
#: µs to tens of minutes.
SPAN_WALL_BUCKETS_S = (
    0.000001, 0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0,
)

#: Seconds between partial metrics checkpoints (see ``Telemetry._emit``).
DEFAULT_CHECKPOINT_INTERVAL_S = 30.0


class Telemetry:
    """One run's telemetry: a tracer, a metrics registry and (optionally) a sink.

    Constructed via :meth:`open` (directory/file target) or directly with
    ``sink=None`` for a log-mirror-only telemetry (spans and metrics are
    tracked and mirrored to DEBUG logs, nothing is persisted).
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[JsonlSink] = None,
        *,
        checkpoint_interval_s: float = DEFAULT_CHECKPOINT_INTERVAL_S,
    ) -> None:
        self.sink = sink
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(emit=self._emit)
        self.span_wall = Histogram("telemetry.span_wall_s", SPAN_WALL_BUCKETS_S)
        self._log = get_logger("obs")
        self._closed = False
        self._checkpoint_interval_s = checkpoint_interval_s
        self._last_checkpoint = time.monotonic()
        if sink is not None:
            # A run that dies without close() (sys.exit, uncaught exception)
            # would lose the closing metrics snapshot and self-overhead
            # record; atexit covers those.  SIGKILL can't be covered by any
            # handler — there the sink's flush-per-write is the safety net.
            atexit.register(self.close)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        target: Union[str, Path],
        *,
        rank: int = 0,
        provenance: Optional[Mapping[str, object]] = None,
        argv: Optional[Sequence[str]] = None,
        checkpoint_interval_s: float = DEFAULT_CHECKPOINT_INTERVAL_S,
    ) -> "Telemetry":
        """Create a telemetry writing to ``target`` (a directory or ``.jsonl``)."""
        sink = JsonlSink(
            telemetry_path(target),
            rank=rank,
            provenance=provenance,
            argv=list(argv) if argv is not None else None,
        )
        return cls(sink, checkpoint_interval_s=checkpoint_interval_s)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def _emit(self, record: Mapping[str, object]) -> None:
        is_span = record.get("type") == "span"
        if is_span:
            self.span_wall.observe(float(record.get("wall_ns") or 0) / 1e9)
        if self.sink is not None:
            self.sink.write(record)
            if is_span:
                self._maybe_checkpoint()
        if self._log.isEnabledFor(logging.DEBUG):
            if record.get("type") == "span":
                wall_ns = record.get("wall_ns") or 0
                self._log.debug(
                    "span %s %.3fms status=%s counters=%s",
                    record.get("name"), wall_ns / 1e6,  # type: ignore[operator]
                    record.get("status"), record.get("counters"),
                )
            else:
                self._log.debug("%s %s", record.get("type"), dict(record))

    def _maybe_checkpoint(self) -> None:
        """Write a partial metrics snapshot if the interval has elapsed.

        A killed run keeps its spans (flush-per-write) but would otherwise
        lose every metric, since the full snapshot is only appended by
        ``close()``.  Periodic ``partial`` checkpoints bound that loss; the
        reader (``metrics_of``) keeps the *last* metrics record, so the
        closing snapshot supersedes every checkpoint on a clean run.
        """
        if self._checkpoint_interval_s <= 0:
            return
        now = time.monotonic()
        if now - self._last_checkpoint < self._checkpoint_interval_s:
            return
        self._last_checkpoint = now
        if len(self.metrics) and self.sink is not None:
            self.sink.write(
                {"type": "metrics", "partial": True, **self.metrics.snapshot()}
            )

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: AttrValue) -> Span:
        """Open a nested span (context manager)."""
        return self.tracer.span(name, **attrs)

    def record_span(self, name: str, wall_ns: int, **kwargs) -> None:
        """Emit an externally timed span (see :meth:`SpanTracer.record`)."""
        self.tracer.record(name, wall_ns, **kwargs)

    def event(self, name: str, **attrs: object) -> None:
        """Emit one point-in-time annotation record."""
        started = time.perf_counter_ns()
        self._emit({
            "type": "event",
            "name": name,
            "ts_unix": round(time.time(), 6),
            "attrs": dict(attrs),
        })
        self.tracer.self_time_ns += time.perf_counter_ns() - started

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def counter(self, name: str):
        """Get or create a counter."""
        return self.metrics.counter(name)

    def gauge(self, name: str):
        """Get or create a gauge."""
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets: Sequence[float] = DURATION_BUCKETS_S):
        """Get or create a fixed-bucket histogram."""
        return self.metrics.histogram(name, buckets)

    # ------------------------------------------------------------------ #
    # provenance + self-accounting
    # ------------------------------------------------------------------ #
    def annotate(self, **fields: object) -> None:
        """Attach late-bound provenance (spec digest, campaign name, ...)."""
        if self.sink is not None:
            self.sink.annotate_provenance(**fields)
        else:
            self.event("provenance", **fields)

    def elapsed_ns(self) -> Optional[int]:
        """Wall nanoseconds since the root span opened (``None`` before it has)."""
        root = self.tracer.root
        if root is None:
            return None
        return time.perf_counter_ns() - root._start_wall_ns

    def self_overhead_report(
        self, total_wall_ns: Optional[int] = None
    ) -> dict[str, object]:
        """What the telemetry layer itself cost, profiler-report style.

        ``telemetry_ns`` is the measured time spent inside span bookkeeping,
        metric snapshots and sink writes.  Given the run's total wall time it
        also estimates the telemetry-off wall time (total minus overhead) and
        the overhead fraction — the profiler reporting its own cost the way
        it reports the simulated instrumentation's.
        """
        overhead_ns = self.tracer.self_time_ns
        report: dict[str, object] = {
            "telemetry_enabled": True,
            "spans_recorded": self.tracer.spans_closed,
            "records_written": (
                self.sink.records_written if self.sink is not None else 0
            ),
            "telemetry_ns": overhead_ns,
        }
        if self.span_wall.count:
            report["span_wall_s"] = self.span_wall.as_value()
        if total_wall_ns:
            report["wall_ns_with_telemetry"] = int(total_wall_ns)
            report["wall_ns_estimated_without"] = max(0, int(total_wall_ns) - overhead_ns)
            # Sink setup (manifest write) can predate the root span on tiny
            # runs, so clamp rather than report a >100% fraction.
            report["overhead_fraction"] = min(1.0, overhead_ns / total_wall_ns)
        return report

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Finish any spans left open, snapshot metrics, close the sink."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        root = self.tracer.root
        total_wall_ns: Optional[int] = None
        if root is not None:
            root.finish()
            total_wall_ns = root.wall_ns
        final: list[Mapping[str, object]] = []
        if len(self.metrics):
            final.append({"type": "metrics", **self.metrics.snapshot()})
        final.append({
            "type": "self_overhead",
            **self.self_overhead_report(total_wall_ns),
        })
        if self.sink is not None:
            self.sink.close(final)
        elif self._log.isEnabledFor(logging.DEBUG):
            for record in final:
                self._log.debug("%s %s", record.get("type"), dict(record))

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullTelemetry:
    """The disabled telemetry: every operation is a shared no-op.

    All methods return immediately; ``span`` hands back the one
    :data:`~repro.obs.spans.NULL_SPAN` and the instrument getters the one
    :data:`~repro.obs.metrics.NULL_INSTRUMENT`, so disabled call sites cost
    a method call and no allocation.
    """

    enabled = False
    sink = None
    closed = False

    def span(self, name: str, **attrs: AttrValue) -> NullSpan:
        return NULL_SPAN

    def record_span(self, name: str, wall_ns: int, **kwargs) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass

    def counter(self, name: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Sequence[float] = DURATION_BUCKETS_S
    ) -> NullInstrument:
        return NULL_INSTRUMENT

    def annotate(self, **fields: object) -> None:
        pass

    def elapsed_ns(self) -> Optional[int]:
        return None

    def self_overhead_report(self, total_wall_ns: Optional[int] = None) -> dict[str, object]:
        return {"telemetry_enabled": False}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared disabled telemetry (the module default).
NULL_TELEMETRY = NullTelemetry()

#: The process-wide active telemetry consulted by instrumented layers.
_active: Union[Telemetry, NullTelemetry] = NULL_TELEMETRY


def active() -> Union[Telemetry, NullTelemetry]:
    """The currently active telemetry (the shared null object when disabled)."""
    return _active


def activate(telemetry: Union[Telemetry, NullTelemetry]) -> Union[Telemetry, NullTelemetry]:
    """Install ``telemetry`` as the process-wide active telemetry."""
    global _active
    _active = telemetry
    return telemetry


def deactivate() -> None:
    """Reset the active telemetry to the shared null object."""
    global _active
    _active = NULL_TELEMETRY


@contextmanager
def activated(
    telemetry: Union[Telemetry, NullTelemetry], *, close: bool = True
) -> Iterator[Union[Telemetry, NullTelemetry]]:
    """Scope ``telemetry`` as active, restoring (and closing) on exit."""
    global _active
    previous = _active
    _active = telemetry
    try:
        yield telemetry
    finally:
        _active = previous
        if close:
            telemetry.close()


def from_env(environ: Optional[Mapping[str, str]] = None) -> Union[Telemetry, NullTelemetry]:
    """Telemetry named by ``PASTA_TELEMETRY`` (or the null telemetry)."""
    env = os.environ if environ is None else environ
    target = env.get(TELEMETRY_ENV)
    if not target:
        return NULL_TELEMETRY
    return Telemetry.open(target)
