"""Read-side analysis of telemetry files: tree, summary, top, export.

The sink writes a flat record stream; this module turns it back into
something a person can act on:

* :func:`build_tree` — reconstruct the span tree from ``span_id`` /
  ``parent_id`` (spans are emitted on close, so children precede parents in
  the file and reconstruction cannot be streaming);
* :func:`summarize` — run identity, per-span-name aggregates, metric
  snapshot, and *coverage*: how much of each parent's wall time its
  children account for (the acceptance gate for "the profiler can explain
  its own time");
* :func:`top_spans` — spans ranked by **self time** (wall minus children's
  wall), which is where untracked time actually lives;
* renderers producing the aligned plain-text tables the ``pasta telemetry``
  subcommand prints.

All functions take the raw record list from
:func:`repro.obs.sink.read_records`, so they work on files from crashed
runs too (whatever was flushed is analysable).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.errors import ReproError


class SpanNode:
    """One reconstructed span with links to its children."""

    __slots__ = ("record", "children")

    def __init__(self, record: Mapping[str, object]) -> None:
        self.record = record
        self.children: list["SpanNode"] = []

    @property
    def name(self) -> str:
        return str(self.record.get("name", ""))

    @property
    def wall_ns(self) -> int:
        return int(self.record.get("wall_ns") or 0)

    @property
    def child_wall_ns(self) -> int:
        return sum(child.wall_ns for child in self.children)

    @property
    def self_wall_ns(self) -> int:
        """Wall time not attributed to any child span."""
        return max(0, self.wall_ns - self.child_wall_ns)

    @property
    def coverage(self) -> Optional[float]:
        """Fraction of this span's wall time covered by child spans."""
        if not self.children or not self.wall_ns:
            return None
        return min(1.0, self.child_wall_ns / self.wall_ns)


def manifest_of(records: Iterable[Mapping[str, object]]) -> dict[str, object]:
    """The run manifest (always the first record the sink writes).

    Late-bound ``provenance`` events (spec digests, campaign names annotated
    after the manifest line was written) are merged into the returned view.
    """
    manifest: Optional[dict[str, object]] = None
    for record in records:
        kind = record.get("type")
        if kind == "manifest" and manifest is None:
            manifest = dict(record)
            manifest["provenance"] = dict(manifest.get("provenance") or {})  # type: ignore[arg-type]
        elif (kind == "event" and record.get("name") == "provenance"
              and manifest is not None):
            manifest["provenance"].update(record.get("attrs") or {})  # type: ignore[union-attr]
    if manifest is None:
        raise ReproError("telemetry file has no manifest record")
    return manifest


def span_records(records: Iterable[Mapping[str, object]]) -> list[dict[str, object]]:
    """Just the span records, in file (i.e. close) order."""
    return [dict(r) for r in records if r.get("type") == "span"]


def metrics_of(records: Iterable[Mapping[str, object]]) -> Optional[dict[str, object]]:
    """The final metrics snapshot, if the run closed cleanly."""
    snapshot = None
    for record in records:
        if record.get("type") == "metrics":
            snapshot = {k: v for k, v in record.items() if k != "type"}
    return snapshot


def self_overhead_of(records: Iterable[Mapping[str, object]]) -> Optional[dict[str, object]]:
    """The sink's closing self_overhead record, if present."""
    for record in records:
        if record.get("type") == "self_overhead":
            return {k: v for k, v in record.items() if k != "type"}
    return None


def build_tree(records: Iterable[Mapping[str, object]]) -> list[SpanNode]:
    """Reconstruct the span forest; returns root nodes in start order.

    A span whose parent never made it into the file (a crash between child
    and parent close) becomes a root rather than being dropped.
    """
    spans = span_records(records)
    nodes = {int(s["span_id"]): SpanNode(s) for s in spans}
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent_id = node.record.get("parent_id")
        parent = nodes.get(int(parent_id)) if parent_id is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda c: float(c.record.get("start_unix") or 0.0))
    roots.sort(key=lambda r: float(r.record.get("start_unix") or 0.0))
    return roots


def _walk(nodes: Iterable[SpanNode]) -> Iterable[SpanNode]:
    for node in nodes:
        yield node
        yield from _walk(node.children)


def aggregate_spans(
    records: Iterable[Mapping[str, object]],
) -> dict[str, dict[str, object]]:
    """Per-span-name aggregates: count, wall/self/CPU time, errors.

    The shared shape behind ``summary``'s by-name table and the cross-run
    ``diff`` in :mod:`repro.obs.history` — both sides of a diff aggregate
    through this one function so deltas compare like with like.
    """
    by_name: dict[str, dict[str, object]] = {}
    for node in _walk(build_tree(records)):
        agg = by_name.setdefault(node.name, {
            "count": 0, "wall_ns": 0, "self_wall_ns": 0, "cpu_ns": 0,
            "errors": 0,
        })
        agg["count"] += 1  # type: ignore[operator]
        agg["wall_ns"] += node.wall_ns  # type: ignore[operator]
        agg["self_wall_ns"] += node.self_wall_ns  # type: ignore[operator]
        agg["cpu_ns"] += int(node.record.get("cpu_ns") or 0)  # type: ignore[operator]
        if node.record.get("status") == "error":
            agg["errors"] += 1  # type: ignore[operator]
    return dict(sorted(by_name.items()))


def summarize(records: list[dict[str, object]]) -> dict[str, object]:
    """One JSON-native digest of a telemetry run (``pasta telemetry summary``)."""
    manifest = manifest_of(records)
    roots = build_tree(records)
    all_nodes = list(_walk(roots))
    by_name = aggregate_spans(records)
    root_wall_ns = sum(r.wall_ns for r in roots)
    root_child_ns = sum(r.child_wall_ns for r in roots)
    events = [dict(r) for r in records if r.get("type") == "event"]
    summary: dict[str, object] = {
        "run_id": manifest.get("run_id"),
        "repro_version": manifest.get("repro_version"),
        "rank": manifest.get("rank"),
        "created_unix": manifest.get("created_unix"),
        "provenance": manifest.get("provenance", {}),
        "spans": len(all_nodes),
        "roots": [r.name for r in roots],
        "events": len(events),
        "wall_ns": root_wall_ns,
        "coverage": (
            min(1.0, root_child_ns / root_wall_ns) if root_wall_ns else None
        ),
        "errors": sum(
            1 for n in all_nodes if n.record.get("status") == "error"
        ),
        "by_name": by_name,
    }
    metrics = metrics_of(records)
    if metrics is not None:
        summary["metrics"] = metrics
    overhead = self_overhead_of(records)
    if overhead is not None:
        summary["self_overhead"] = overhead
    return summary


def top_spans(records: list[dict[str, object]], limit: int = 10) -> list[dict[str, object]]:
    """Spans ranked by self time — where the wall clock actually went."""
    nodes = sorted(_walk(build_tree(records)), key=lambda n: -n.self_wall_ns)
    ranked = []
    for node in nodes[:max(0, limit)]:
        ranked.append({
            "name": node.name,
            "span_id": node.record.get("span_id"),
            "wall_ns": node.wall_ns,
            "self_wall_ns": node.self_wall_ns,
            "children": len(node.children),
            "status": node.record.get("status"),
            "attrs": node.record.get("attrs", {}),
        })
    return ranked


# ---------------------------------------------------------------------- #
# text rendering
# ---------------------------------------------------------------------- #
def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:,.2f}ms"


def render_summary(summary: Mapping[str, object]) -> str:
    """Human-readable form of :func:`summarize`."""
    lines = [
        f"run {summary.get('run_id')}  "
        f"(repro {summary.get('repro_version')}, rank {summary.get('rank')})",
    ]
    provenance = summary.get("provenance") or {}
    if provenance:
        joined = ", ".join(f"{k}={v}" for k, v in sorted(provenance.items()))  # type: ignore[union-attr]
        lines.append(f"provenance: {joined}")
    coverage = summary.get("coverage")
    coverage_text = f"{coverage * 100:.1f}%" if isinstance(coverage, float) else "n/a"
    lines.append(
        f"spans: {summary.get('spans')}  wall: {_fmt_ms(int(summary.get('wall_ns') or 0))}  "
        f"coverage: {coverage_text}  errors: {summary.get('errors')}"
    )
    by_name = summary.get("by_name") or {}
    if by_name:
        lines.append("")
        name_width = max(len("span"), *(len(n) for n in by_name))  # type: ignore[union-attr]
        lines.append(
            f"{'span':<{name_width}}  {'count':>5}  {'wall':>12}  {'self':>12}  err"
        )
        for name, agg in by_name.items():  # type: ignore[union-attr]
            lines.append(
                f"{name:<{name_width}}  {agg['count']:>5}  "
                f"{_fmt_ms(agg['wall_ns']):>12}  {_fmt_ms(agg['self_wall_ns']):>12}  "
                f"{agg['errors']}"
            )
    metrics = summary.get("metrics")
    if metrics:
        counters = metrics.get("counters") or {}  # type: ignore[union-attr]
        gauges = metrics.get("gauges") or {}  # type: ignore[union-attr]
        histograms = metrics.get("histograms") or {}  # type: ignore[union-attr]
        if counters or gauges or histograms:
            lines.append("")
            lines.append("metrics:")
            for name, value in sorted(counters.items()):
                lines.append(f"  {name} = {value}")
            for name, value in sorted(gauges.items()):
                lines.append(f"  {name} = {value}")
            for name, hist in sorted(histograms.items()):
                lines.append(f"  {name}: {_fmt_histogram(hist)}")
    overhead = summary.get("self_overhead")
    if overhead:
        ns = int(overhead.get("telemetry_ns") or 0)  # type: ignore[union-attr]
        lines.append("")
        lines.append(
            f"self overhead: {_fmt_ms(ns)} across "
            f"{overhead.get('records_written')} records"  # type: ignore[union-attr]
        )
        span_hist = overhead.get("span_wall_s")  # type: ignore[union-attr]
        if isinstance(span_hist, Mapping) and span_hist.get("count"):
            lines.append(f"span wall: {_fmt_histogram(span_hist)}")
    return "\n".join(lines)


def _fmt_histogram(hist: Mapping[str, object]) -> str:
    """One-line histogram digest: count, mean, bucket-estimated percentiles."""
    parts = [f"n={hist.get('count')}"]
    for key in ("mean", "p50", "p95", "p99", "max"):
        value = hist.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            parts.append(f"{key}={value:.4g}")
    return "  ".join(parts)


def render_top(ranked: list[Mapping[str, object]]) -> str:
    """Human-readable form of :func:`top_spans`."""
    if not ranked:
        return "no spans recorded"
    name_width = max(len("span"), *(len(str(r["name"])) for r in ranked))
    lines = [f"{'span':<{name_width}}  {'self':>12}  {'wall':>12}  kids  status"]
    for row in ranked:
        lines.append(
            f"{str(row['name']):<{name_width}}  "
            f"{_fmt_ms(int(row['self_wall_ns'])):>12}  "  # type: ignore[arg-type]
            f"{_fmt_ms(int(row['wall_ns'])):>12}  "  # type: ignore[arg-type]
            f"{row['children']:>4}  {row['status']}"
        )
    return "\n".join(lines)


def render_tree(records: list[dict[str, object]], *, max_depth: Optional[int] = None) -> str:
    """Indented span tree (``pasta telemetry export --tree``)."""
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        counters = node.record.get("counters") or {}
        counter_text = (
            "  [" + ", ".join(f"{k}={v}" for k, v in sorted(counters.items())) + "]"  # type: ignore[union-attr]
            if counters else ""
        )
        lines.append(
            f"{'  ' * depth}{node.name}  {_fmt_ms(node.wall_ns)}"
            f"{'' if node.record.get('status') == 'ok' else '  !' + str(node.record.get('error'))}"
            f"{counter_text}"
        )
        for child in node.children:
            visit(child, depth + 1)

    for root in build_tree(records):
        visit(root, 0)
    return "\n".join(lines) if lines else "no spans recorded"
