"""Span tracer: nested, context-managed timing spans for the profiler itself.

A *span* is one timed region of the profiler's own execution — a campaign
job, a session's simulate phase, a trace replay.  Spans carry

* wall time (``time.perf_counter_ns``) and CPU time of the opening thread
  (``time.thread_time_ns``),
* a parent/child nesting relationship (per-thread stacks; a span opened on a
  worker thread with an empty stack parents to the process root span),
* free-form ``attrs`` fixed at open, and integer ``counters`` accumulated
  while the span is open (events processed, bytes written, ...).

Spans are emitted to the tracer's emit callback *when they close*, as plain
JSON-native dicts, so the sink sees a flat record stream and the tree is
reconstructed from ``span_id``/``parent_id`` (see :mod:`repro.obs.report`).

Exception safety: ``with tracer.span(...)`` closes the span whatever happens
inside, records ``status="error"`` plus the exception summary, and never
swallows the exception.  The tracer also accounts the time it spends on its
own bookkeeping (``self_time_ns``), which is how the run report's
``self_overhead`` section knows what telemetry itself cost.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Mapping, Optional, Union

#: Attribute / counter value types accepted on spans (JSON scalars).
AttrValue = Union[str, int, float, bool, None]

#: Receives one closed span as a JSON-native dict.
SpanEmitter = Callable[[dict[str, object]], None]

_span_ids = itertools.count(1)


class Span:
    """One open timing region.  Created by :class:`SpanTracer`, not directly."""

    __slots__ = (
        "name", "span_id", "parent_id", "depth", "attrs", "counters",
        "start_unix", "_start_wall_ns", "_start_cpu_ns", "wall_ns", "cpu_ns",
        "status", "error", "_tracer",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        parent_id: Optional[int],
        depth: int,
        attrs: Mapping[str, AttrValue],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.depth = depth
        self.attrs: dict[str, AttrValue] = dict(attrs)
        self.counters: dict[str, Union[int, float]] = {}
        self.start_unix = time.time()
        self._start_wall_ns = time.perf_counter_ns()
        self._start_cpu_ns = time.thread_time_ns()
        self.wall_ns: Optional[int] = None
        self.cpu_ns: Optional[int] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # accumulation while open
    # ------------------------------------------------------------------ #
    def add(self, counter: str, amount: Union[int, float] = 1) -> None:
        """Accumulate ``amount`` onto one of the span's counters."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def set_counter(self, counter: str, value: Union[int, float]) -> None:
        """Set one of the span's counters to an absolute value."""
        self.counters[counter] = value

    def set_attr(self, key: str, value: AttrValue) -> None:
        """Attach one attribute after open (sparingly; attrs are identity)."""
        self.attrs[key] = value

    @property
    def closed(self) -> bool:
        """True once the span has been finished and emitted."""
        return self.wall_ns is not None

    def finish(self, error: Optional[BaseException] = None) -> None:
        """Close the span (idempotent) and emit its record."""
        self._tracer.finish(self, error=error)

    # ------------------------------------------------------------------ #
    # context-manager protocol
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(error=exc)

    def to_record(self) -> dict[str, object]:
        """JSON-native form of a *closed* span."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_unix": round(self.start_unix, 6),
            "wall_ns": self.wall_ns,
            "cpu_ns": self.cpu_ns,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
        }


class SpanTracer:
    """Opens, nests and emits spans (see module docstring).

    Nesting is per thread: each thread keeps its own open-span stack, so the
    campaign scheduler's worker threads produce well-formed sub-trees whose
    roots attach to the process root span (the first span opened anywhere).
    """

    def __init__(self, emit: Optional[SpanEmitter] = None) -> None:
        self._emit = emit
        self._stacks = threading.local()
        self._root: Optional[Span] = None
        self._lock = threading.Lock()
        #: Nanoseconds spent inside the tracer's own bookkeeping.
        self.self_time_ns = 0
        self.spans_opened = 0
        self.spans_closed = 0

    # ------------------------------------------------------------------ #
    # stack plumbing
    # ------------------------------------------------------------------ #
    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on the calling thread (or the root)."""
        stack = self._stack()
        if stack:
            return stack[-1]
        return self._root

    @property
    def root(self) -> Optional[Span]:
        """The first span opened on this tracer that is still open."""
        return self._root

    # ------------------------------------------------------------------ #
    # open / close
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: AttrValue) -> Span:
        """Open a span; use as ``with tracer.span("phase", key=...):``."""
        started = time.perf_counter_ns()
        stack = self._stack()
        if stack:
            parent = stack[-1]
            parent_id: Optional[int] = parent.span_id
            depth = parent.depth + 1
        elif self._root is not None:
            # A worker thread's first span: attach under the process root so
            # the tree stays connected.
            parent_id = self._root.span_id
            depth = self._root.depth + 1
        else:
            parent_id = None
            depth = 0
        span = Span(self, name, parent_id, depth, attrs)
        stack.append(span)
        with self._lock:
            if self._root is None:
                self._root = span
            self.spans_opened += 1
        self.self_time_ns += time.perf_counter_ns() - started
        return span

    def finish(self, span: Span, error: Optional[BaseException] = None) -> None:
        """Close ``span``, pop it from its thread's stack, emit its record."""
        if span.closed:
            return
        end_wall = time.perf_counter_ns()
        span.wall_ns = end_wall - span._start_wall_ns
        span.cpu_ns = time.thread_time_ns() - span._start_cpu_ns
        if error is not None:
            span.status = "error"
            span.error = f"{type(error).__name__}: {error}"
        stack = self._stack()
        if span in stack:
            # Close any children left open (crash paths): innermost first.
            while stack and stack[-1] is not span:
                self.finish(stack[-1], error=error)
            stack.pop()
        with self._lock:
            self.spans_closed += 1
            if self._root is span:
                self._root = None
        if self._emit is not None:
            self._emit(span.to_record())
        self.self_time_ns += time.perf_counter_ns() - end_wall

    # ------------------------------------------------------------------ #
    # synthetic spans
    # ------------------------------------------------------------------ #
    def record(
        self,
        name: str,
        wall_ns: int,
        *,
        start_unix: Optional[float] = None,
        attrs: Optional[Mapping[str, AttrValue]] = None,
        counters: Optional[Mapping[str, Union[int, float]]] = None,
        status: str = "ok",
        error: Optional[str] = None,
    ) -> dict[str, object]:
        """Emit an already-measured span (e.g. a worker-pool job timed by its
        future) as a child of the calling thread's current span."""
        started = time.perf_counter_ns()
        parent = self.current
        record = {
            "type": "span",
            "name": name,
            "span_id": next(_span_ids),
            "parent_id": parent.span_id if parent is not None else None,
            "depth": (parent.depth + 1) if parent is not None else 0,
            "start_unix": round(
                time.time() - wall_ns / 1e9 if start_unix is None else start_unix, 6
            ),
            "wall_ns": int(wall_ns),
            "cpu_ns": None,
            "status": status,
            "error": error,
            "attrs": dict(attrs or {}),
            "counters": dict(counters or {}),
        }
        with self._lock:
            self.spans_opened += 1
            self.spans_closed += 1
        if self._emit is not None:
            self._emit(record)
        self.self_time_ns += time.perf_counter_ns() - started
        return record


class NullSpan:
    """Shared no-op span: every method falls straight through.

    A single instance is handed out for every disabled ``span()`` call, so
    the disabled path allocates nothing.
    """

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    depth = 0
    attrs: dict[str, AttrValue] = {}
    counters: dict[str, Union[int, float]] = {}
    status = "ok"
    error = None
    closed = False

    def add(self, counter: str, amount: Union[int, float] = 1) -> None:
        pass

    def set_counter(self, counter: str, value: Union[int, float]) -> None:
        pass

    def set_attr(self, key: str, value: AttrValue) -> None:
        pass

    def finish(self, error: Optional[BaseException] = None) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def to_record(self) -> dict[str, object]:
        return {}


#: The shared no-op span.
NULL_SPAN = NullSpan()
