"""Self-telemetry for the profiler: spans, metrics, JSONL run manifests.

The profiler measures workloads; :mod:`repro.obs` measures the profiler.
Three pieces, one facade:

* :mod:`repro.obs.spans` — nested context-managed spans (wall + CPU time);
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms;
* :mod:`repro.obs.sink` — a run-scoped ``telemetry.jsonl`` whose first line
  is a provenance manifest (version, pid, rank, spec digest, argv);
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade over all three
  plus the process-wide active handle (:func:`active` / :func:`activate`),
  defaulting to a shared no-op so disabled telemetry costs ~nothing;
* :mod:`repro.obs.report` — read-side summary/top/tree analysis;
* :mod:`repro.obs.export` — Chrome Trace Event Format (Perfetto) and
  folded-stack (flamegraph) exporters plus a strict trace validator;
* :mod:`repro.obs.history` — a run index over a telemetry root and
  cross-run regression diffs (``pasta telemetry list | diff``);
* :mod:`repro.obs.log` — ``repro.*``-namespaced stdlib logging.

Instrumented layers call ``obs.active().span(...)`` (or accept an explicit
``telemetry=`` handle) and never check whether telemetry is on.
"""

from repro.obs.export import (
    chrome_trace,
    export_chrome,
    export_folded,
    folded_stacks,
    merge_folded,
    render_folded,
    validate_chrome_trace,
)
from repro.obs.history import (
    RunEntry,
    RunIndex,
    diff_runs,
    index_run,
    render_diff,
    render_run_list,
    resolve_run_records,
)
from repro.obs.log import configure_logging, get_logger, parse_level, reset_logging
from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullInstrument,
)
from repro.obs.report import (
    SpanNode,
    aggregate_spans,
    build_tree,
    manifest_of,
    metrics_of,
    render_summary,
    render_top,
    render_tree,
    self_overhead_of,
    span_records,
    summarize,
    top_spans,
)
from repro.obs.sink import (
    JsonlSink,
    MANIFEST_SCHEMA,
    TELEMETRY_FILE,
    read_records,
    telemetry_path,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanTracer
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    TELEMETRY_ENV,
    Telemetry,
    activate,
    activated,
    active,
    deactivate,
    from_env,
)

__all__ = [
    "DURATION_BUCKETS_S",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NullInstrument",
    "NullSpan",
    "NullTelemetry",
    "RunEntry",
    "RunIndex",
    "Span",
    "SpanNode",
    "SpanTracer",
    "TELEMETRY_ENV",
    "TELEMETRY_FILE",
    "Telemetry",
    "activate",
    "activated",
    "active",
    "aggregate_spans",
    "build_tree",
    "chrome_trace",
    "configure_logging",
    "deactivate",
    "diff_runs",
    "export_chrome",
    "export_folded",
    "folded_stacks",
    "from_env",
    "get_logger",
    "index_run",
    "manifest_of",
    "merge_folded",
    "metrics_of",
    "parse_level",
    "read_records",
    "render_diff",
    "render_folded",
    "render_run_list",
    "render_summary",
    "render_top",
    "render_tree",
    "reset_logging",
    "resolve_run_records",
    "self_overhead_of",
    "span_records",
    "summarize",
    "telemetry_path",
    "top_spans",
]
