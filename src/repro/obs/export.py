"""Telemetry exporters: Chrome Trace Event Format and folded flamegraph stacks.

The sink writes an append-only JSONL record stream; this module converts it
into the two interchange formats the wider profiling ecosystem already
renders:

* :func:`chrome_trace` — the Chrome Trace Event Format (the ``traceEvents``
  JSON object), openable in Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Spans become complete duration events (``ph="X"``),
  per-rank span subtrees map to their own ``tid`` lane (named via metadata
  events), point-in-time telemetry events become instant events, and the
  final metrics counters become counter (``ph="C"``) series.  Several runs —
  e.g. per-rank telemetry files from a distributed campaign — merge into one
  coherent trace, one process lane group per run.
* :func:`folded_stacks` / :func:`render_folded` — Brendan Gregg's folded
  stack format (``root;child;leaf <weight>``), the input to
  ``flamegraph.pl`` and every flamegraph renderer derived from it.  Weights
  are each stack's *self* time in microseconds, so the rendered flame sums
  to the run's measured wall time.

Timestamps: spans record a wall-clock ``start_unix`` (µs precision) and a
monotonic ``wall_ns`` duration.  Rounding can therefore make a child appear
to start marginally before its parent; export clamps every span into its
parent's interval so the emitted trace is *monotonically consistent* —
:func:`validate_chrome_trace` enforces exactly that property (plus the
required field schema) and is the strict check the test suite and CI run
against every exported trace.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.obs.report import SpanNode, build_tree, manifest_of, metrics_of

#: ``tid`` of the main lane of each run (rank lanes are ``rank + 1``).
MAIN_LANE = 0


def _lane_of(node: SpanNode, parent_lane: int) -> int:
    """A span's ``tid`` lane: its ``rank`` attr (if any) or its parent's lane."""
    attrs = node.record.get("attrs")
    if isinstance(attrs, Mapping):
        rank = attrs.get("rank")
        if isinstance(rank, int) and not isinstance(rank, bool) and rank >= 0:
            return rank + 1
    return parent_lane


def _span_events(
    roots: Sequence[SpanNode],
    *,
    pid: int,
    base_unix: float,
) -> tuple[list[dict[str, object]], set[int]]:
    """Complete (``ph="X"``) events for one run's span forest.

    Children are clamped into their parent's ``[ts, ts + dur]`` interval so
    wall-clock rounding can never produce an out-of-order lane.
    """
    events: list[dict[str, object]] = []
    lanes: set[int] = {MAIN_LANE}

    def visit(node: SpanNode, lane: int, lo_us: float, hi_us: float) -> None:
        lane = _lane_of(node, lane)
        lanes.add(lane)
        start_unix = float(node.record.get("start_unix") or base_unix)
        ts = (start_unix - base_unix) * 1e6
        dur = node.wall_ns / 1e3
        ts = min(max(ts, lo_us), hi_us)
        dur = max(0.0, min(dur, hi_us - ts))
        attrs = node.record.get("attrs") or {}
        counters = node.record.get("counters") or {}
        args: dict[str, object] = {
            "span_id": node.record.get("span_id"),
            "status": node.record.get("status"),
        }
        if node.record.get("cpu_ns") is not None:
            args["cpu_ns"] = node.record.get("cpu_ns")
        if node.record.get("error"):
            args["error"] = node.record.get("error")
        args.update(dict(attrs))  # type: ignore[arg-type]
        if counters:
            args["counters"] = dict(counters)  # type: ignore[arg-type]
        events.append({
            "name": node.name,
            "cat": node.name.split(".", 1)[0] or "span",
            "ph": "X",
            "ts": round(ts, 3),
            "dur": round(dur, 3),
            "pid": pid,
            "tid": lane,
            "args": args,
        })
        for child in node.children:
            visit(child, lane, ts, ts + dur)

    for root in roots:
        visit(root, MAIN_LANE, 0.0, float("inf"))
    return events, lanes


def _counter_events(
    records: Iterable[Mapping[str, object]],
    *,
    pid: int,
    start_ts: float,
    end_ts: float,
) -> list[dict[str, object]]:
    """Counter (``ph="C"``) series from the run's final metrics snapshot.

    The snapshot is written once at close, so each counter becomes a
    two-point series — zero at the run origin, its final value at the run's
    end — which Perfetto renders as a track per counter name.
    """
    snapshot = metrics_of(records)
    if not snapshot:
        return []
    counters = snapshot.get("counters")
    if not isinstance(counters, Mapping) or not counters:
        return []
    events: list[dict[str, object]] = []
    for name in sorted(counters):
        for ts, value in ((round(start_ts, 3), 0), (round(end_ts, 3), counters[name])):
            events.append({
                "name": str(name),
                "cat": "metrics",
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "tid": MAIN_LANE,
                "args": {"value": value},
            })
    return events


def _instant_events(
    records: Iterable[Mapping[str, object]],
    *,
    pid: int,
    base_unix: float,
) -> list[dict[str, object]]:
    """Instant (``ph="i"``) events from point-in-time telemetry annotations."""
    events: list[dict[str, object]] = []
    for record in records:
        if record.get("type") != "event":
            continue
        ts = (float(record.get("ts_unix") or base_unix) - base_unix) * 1e6
        events.append({
            "name": str(record.get("name")),
            "cat": "event",
            "ph": "i",
            "s": "p",
            "ts": round(max(0.0, ts), 3),
            "pid": pid,
            "tid": MAIN_LANE,
            "args": dict(record.get("attrs") or {}),  # type: ignore[arg-type]
        })
    return events


def _metadata_events(
    *, pid: int, process_name: str, lanes: Iterable[int]
) -> list[dict[str, object]]:
    events: list[dict[str, object]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": MAIN_LANE,
        "args": {"name": process_name},
    }]
    for lane in sorted(set(lanes)):
        label = "main" if lane == MAIN_LANE else f"rank {lane - 1}"
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": lane,
            "args": {"name": label},
        })
    return events


def chrome_trace(
    runs: Sequence[list[dict[str, object]]],
) -> dict[str, object]:
    """Convert one or more telemetry record lists into one Chrome trace.

    Each element of ``runs`` is the full record list of one telemetry file
    (:func:`repro.obs.sink.read_records`); passing several merges them into
    one trace with one process lane group per run, aligned on a shared
    wall-clock origin — which is how per-rank telemetry files of one
    distributed run become a single coherent timeline.
    """
    if not runs:
        raise ReproError("chrome_trace needs at least one telemetry record list")
    manifests = [manifest_of(records) for records in runs]
    base_unix = min(
        float(m.get("created_unix") or 0.0) for m in manifests
    )
    events: list[dict[str, object]] = []
    seen_pids: set[int] = set()
    for index, (records, manifest) in enumerate(zip(runs, manifests)):
        pid = int(manifest.get("pid") or 0)  # type: ignore[arg-type]
        # Two runs from the same process (or a recycled pid) must not share a
        # lane group, or their span stacks would interleave incoherently.
        while pid in seen_pids:
            pid += 1
        seen_pids.add(pid)
        run_base = float(manifest.get("created_unix") or base_unix)
        offset_us = (run_base - base_unix) * 1e6
        roots = build_tree(records)
        span_events, lanes = _span_events(roots, pid=pid, base_unix=base_unix)
        end_ts = max(
            (float(e["ts"]) + float(e["dur"]) for e in span_events),  # type: ignore[arg-type]
            default=offset_us,
        )
        rank = manifest.get("rank")
        run_id = manifest.get("run_id")
        process_name = f"pasta run {run_id} (rank {rank})"
        events.extend(_metadata_events(
            pid=pid, process_name=process_name, lanes=lanes))
        events.extend(span_events)
        events.extend(_instant_events(records, pid=pid, base_unix=base_unix))
        events.extend(_counter_events(
            records, pid=pid, start_ts=max(0.0, offset_us), end_ts=end_ts))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "pasta telemetry export --format chrome",
            "runs": [
                {
                    "run_id": m.get("run_id"),
                    "rank": m.get("rank"),
                    "repro_version": m.get("repro_version"),
                    "provenance": dict(m.get("provenance") or {}),  # type: ignore[arg-type]
                }
                for m in manifests
            ],
        },
    }


#: Fields every complete ("X") event must carry, with their required types.
_X_FIELDS = (("name", str), ("ph", str), ("ts", (int, float)),
             ("dur", (int, float)), ("pid", int), ("tid", int))


def validate_chrome_trace(document: Mapping[str, object]) -> dict[str, int]:
    """Strict-schema check of an exported Chrome trace; raises on violation.

    Verifies the container shape, the per-event required fields, and — the
    property wall-clock rounding most easily breaks — that within every
    ``(pid, tid)`` lane the duration events are monotonically consistent:
    sorted by start, each pair of spans is either disjoint or properly
    nested, never partially overlapping.  Returns counts of what it checked.
    """
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        raise ReproError("chrome trace must carry a 'traceEvents' list")
    counts = {"events": len(trace_events), "spans": 0, "counters": 0,
              "instants": 0, "metadata": 0}
    lanes: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for position, event in enumerate(trace_events):
        if not isinstance(event, Mapping):
            raise ReproError(f"traceEvents[{position}] is not an object")
        ph = event.get("ph")
        if ph == "M":
            counts["metadata"] += 1
            continue
        if ph == "C":
            counts["counters"] += 1
            if "value" not in (event.get("args") or {}):
                raise ReproError(
                    f"counter event {event.get('name')!r} lacks args.value")
            continue
        if ph == "i":
            counts["instants"] += 1
            continue
        if ph != "X":
            raise ReproError(
                f"traceEvents[{position}] has unsupported ph {ph!r}")
        counts["spans"] += 1
        for field_name, expected in _X_FIELDS:
            value = event.get(field_name)
            if not isinstance(value, expected) or isinstance(value, bool):
                raise ReproError(
                    f"span event {event.get('name')!r} field {field_name!r} "
                    f"is {value!r}, expected {expected}"
                )
        ts = float(event["ts"])  # type: ignore[arg-type]
        dur = float(event["dur"])  # type: ignore[arg-type]
        if ts < 0 or dur < 0:
            raise ReproError(
                f"span event {event.get('name')!r} has negative ts/dur "
                f"({ts}, {dur})"
            )
        lanes.setdefault(
            (int(event["pid"]), int(event["tid"])), []  # type: ignore[arg-type]
        ).append((ts, ts + dur))
    for (pid, tid), intervals in lanes.items():
        # Outermost first on ties: a parent clamped to share its child's
        # start must enter the stack before the child.
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        open_stack: list[tuple[float, float]] = []
        for start, end in intervals:
            while open_stack and start >= open_stack[-1][1]:
                open_stack.pop()
            if open_stack and end > open_stack[-1][1]:
                raise ReproError(
                    f"lane pid={pid} tid={tid} has partially overlapping "
                    f"spans: ({start}, {end}) crosses the end of "
                    f"({open_stack[-1][0]}, {open_stack[-1][1]})"
                )
            open_stack.append((start, end))
    return counts


# ---------------------------------------------------------------------- #
# folded flamegraph stacks
# ---------------------------------------------------------------------- #
def folded_stacks(
    records: list[dict[str, object]],
    *,
    rank_frames: bool = True,
) -> dict[str, int]:
    """Aggregate the span tree into folded stacks (stack path → self µs).

    Each span contributes its *self* wall time (wall minus children) to the
    semicolon-joined path of span names from its root, so the flame's total
    width equals the run's measured wall time.  With ``rank_frames`` (the
    default) a span carrying a ``rank`` attribute gets a synthetic
    ``rank N`` frame inserted above it, splitting multi-rank runs into
    per-rank sub-flames.
    """
    stacks: dict[str, int] = {}

    def visit(node: SpanNode, prefix: str) -> None:
        frame = node.name.replace(";", ":") or "(unnamed)"
        if rank_frames:
            attrs = node.record.get("attrs")
            if isinstance(attrs, Mapping):
                rank = attrs.get("rank")
                if isinstance(rank, int) and not isinstance(rank, bool):
                    frame = f"rank {rank};{frame}"
        stack = f"{prefix};{frame}" if prefix else frame
        self_us = round(node.self_wall_ns / 1e3)
        if self_us > 0:
            stacks[stack] = stacks.get(stack, 0) + self_us
        for child in node.children:
            visit(child, stack)

    for root in build_tree(records):
        visit(root, "")
    return stacks


def render_folded(stacks: Mapping[str, int]) -> str:
    """Render folded stacks as ``flamegraph.pl`` input lines."""
    return "\n".join(f"{stack} {weight}" for stack, weight in sorted(stacks.items()))


def merge_folded(per_run: Sequence[Mapping[str, int]]) -> dict[str, int]:
    """Sum folded stacks across runs (e.g. per-rank telemetry files)."""
    merged: dict[str, int] = {}
    for stacks in per_run:
        for stack, weight in stacks.items():
            merged[stack] = merged.get(stack, 0) + int(weight)
    return merged


def export_chrome(
    runs: Sequence[list[dict[str, object]]],
    *,
    validate: bool = True,
) -> dict[str, object]:
    """One-call export: build (and by default validate) a Chrome trace."""
    document = chrome_trace(runs)
    if validate:
        validate_chrome_trace(document)
    return document


def export_folded(
    runs: Sequence[list[dict[str, object]]],
    *,
    rank_frames: bool = True,
) -> str:
    """One-call export: merged folded-stack text for one or more runs."""
    return render_folded(
        merge_folded([folded_stacks(records, rank_frames=rank_frames)
                      for records in runs])
    )


__all__ = [
    "MAIN_LANE",
    "chrome_trace",
    "export_chrome",
    "export_folded",
    "folded_stacks",
    "merge_folded",
    "render_folded",
    "validate_chrome_trace",
]
