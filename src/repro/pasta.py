"""The user-facing ``pasta`` facade: annotations plus the profiling API.

Annotation API (Listing 1 of the paper) — bracket regions of interest::

    from repro import pasta
    ...
    pasta.start()
    self.transformer_layer(x)   # targeted region
    pasta.stop()

Both calls are no-ops when no PASTA session is active, so annotated code runs
unmodified without the profiler attached.

Profiling API — one fluent line from model to reports::

    pasta.profile("gpt2").on("a100").mode("train") \\
         .with_tools("hotness", "access_histogram") \\
         .record("trace.pasta").run()

plus the plain-call equivalents :func:`run` (live execution) and
:func:`replay` (offline re-analysis of a recorded trace), both driven by the
same :class:`ProfileSpec`.

Remote execution is the same builder with a different terminal verb —
:func:`connect` points it at a ``pasta serve`` daemon::

    client = pasta.connect("http://127.0.0.1:8080")
    reports = client.profile("gpt2").on("a100").mode("train") \\
                    .with_tools("hotness").submit().result().reports()
"""

from typing import TYPE_CHECKING

from repro.api import (
    ParallelismSpec,
    ParallelProfileResult,
    ProfileBuilder,
    ProfileResult,
    ProfileSpec,
    profile,
    replay,
    run,
)
from repro.core.annotations import start, stop

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.client import ServeClient

__all__ = [
    "ParallelProfileResult",
    "ParallelismSpec",
    "ProfileBuilder",
    "ProfileResult",
    "ProfileSpec",
    "connect",
    "profile",
    "replay",
    "run",
    "start",
    "stop",
]


def connect(
    url: str, *, namespace: str = "default", timeout: float = 30.0
) -> "ServeClient":
    """Connect to a ``pasta serve`` daemon (lazy import of the serve stack).

    See :func:`repro.serve.client.connect` — the returned client's
    ``.profile(model)`` mirrors this module's :func:`profile` exactly, with
    ``.submit()`` as the terminal verb instead of ``.run()``.
    """
    from repro.serve.client import connect as _connect

    return _connect(url, namespace=namespace, timeout=timeout)
