"""The user-facing ``pasta`` annotation package (Listing 1 of the paper).

Users bracket regions of interest with::

    from repro import pasta
    ...
    pasta.start()
    self.transformer_layer(x)   # targeted region
    pasta.stop()

Both calls are no-ops when no PASTA session is active, so annotated code runs
unmodified without the profiler attached.
"""

from repro.core.annotations import start, stop

__all__ = ["start", "stop"]
