"""The user-facing ``pasta`` facade: annotations plus the profiling API.

Annotation API (Listing 1 of the paper) — bracket regions of interest::

    from repro import pasta
    ...
    pasta.start()
    self.transformer_layer(x)   # targeted region
    pasta.stop()

Both calls are no-ops when no PASTA session is active, so annotated code runs
unmodified without the profiler attached.

Profiling API — one fluent line from model to reports::

    pasta.profile("gpt2").on("a100").mode("train") \\
         .with_tools("hotness", "access_histogram") \\
         .record("trace.pasta").run()

plus the plain-call equivalents :func:`run` (live execution) and
:func:`replay` (offline re-analysis of a recorded trace), both driven by the
same :class:`ProfileSpec`.
"""

from repro.api import (
    ParallelismSpec,
    ParallelProfileResult,
    ProfileBuilder,
    ProfileResult,
    ProfileSpec,
    profile,
    replay,
    run,
)
from repro.core.annotations import start, stop

__all__ = [
    "ParallelProfileResult",
    "ParallelismSpec",
    "ProfileBuilder",
    "ProfileResult",
    "ProfileSpec",
    "profile",
    "replay",
    "run",
    "start",
    "stop",
]
