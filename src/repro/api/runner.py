"""The single execution path behind every way of running an analysis.

All four execution styles — live run, record-to-trace, offline replay, and
campaign jobs (in either simulate or replay mode) — are implemented here, and
all of them are driven by the same :class:`~repro.api.spec.ProfileSpec`:

* :func:`execute` — simulate a workload under a live
  :class:`~repro.core.session.PastaSession` (recording a trace when the spec
  says so);
* :func:`replay` — re-drive a recorded trace through the spec's tools and
  analysis model with no simulator attached;
* :func:`execute_payload` / :func:`record_workload_trace` /
  :func:`replay_payload` — the module-level, picklable wrappers the campaign
  scheduler fans out over worker pools (their arguments and results are
  JSON-native so they survive process boundaries).

Everything above this module — the ``pasta`` CLI, the fluent builder, the
campaign scheduler, the deprecated ``run_workload`` shim — is sugar over
these functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.api.spec import ProfileSpec
from repro.core.annotations import RangeFilter
from repro.core.registry import REGISTRY, create_tool
from repro.core.serialization import json_sanitize
from repro.core.session import PastaSession
from repro.core.tool import PastaTool
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine, RunSummary
from repro.dlframework.models.base import ModelBase
from repro.errors import ReproError
from repro.gpusim.costmodel import CostModelConfig
from repro.gpusim.device import DeviceSpec
from repro.gpusim.runtime import AcceleratorRuntime, create_runtime
from repro.gpusim.trace import AnalysisModel


@dataclass
class ProfileResult:
    """Everything produced by one profiled workload run."""

    spec: ProfileSpec
    model: ModelBase
    runtime: AcceleratorRuntime
    ctx: FrameworkContext
    session: PastaSession
    summary: RunSummary

    def reports(self) -> dict[str, dict[str, object]]:
        """Tool reports collected by the session (plus ``"overhead"``)."""
        return self.session.reports()

    def tool(self, name: str) -> PastaTool:
        """Fetch one of the session's tools by its registry name."""
        for tool in self.session.tools:
            if tool.tool_name == name:
                return tool
        attached = sorted(tool.tool_name for tool in self.session.tools)
        raise ReproError(
            f"tool {name!r} was not attached to this session; "
            f"attached tools: {attached if attached else 'none'}"
        )

    def report(self, name: str) -> dict[str, object]:
        """One attached tool's report by registry name."""
        return self.tool(name).report()


def _resolve_tools(
    spec: ProfileSpec, extra_tools: Sequence[PastaTool]
) -> list[PastaTool]:
    tools: list[PastaTool] = [create_tool(name) for name in spec.tools]
    tools.extend(extra_tools)
    return tools


def execute(
    spec: ProfileSpec,
    *,
    extra_tools: Sequence[PastaTool] = (),
    device: Optional[DeviceSpec] = None,
    range_filter: Optional[RangeFilter] = None,
    cost_config: Optional[CostModelConfig] = None,
    record_to: Union[str, Path, None] = None,
) -> ProfileResult:
    """Simulate ``spec``'s workload under a live PASTA session.

    The spec is authoritative; the keyword arguments are programmatic escape
    hatches for things a declarative spec cannot carry — already-built tool
    *instances* (``extra_tools``), a custom :class:`DeviceSpec` not in the
    device registry, pre-built range/cost overrides (which otherwise come
    from the spec's knobs), and a ``record_to`` destination overriding the
    spec's.
    """
    spec_range, spec_cost = spec.resolve_overrides()
    range_filter = range_filter if range_filter is not None else spec_range
    cost_config = cost_config if cost_config is not None else spec_cost
    record_to = record_to if record_to is not None else spec.record_to

    # create() (not get()) so the namespace's DeviceSpec product check runs.
    device_spec = device if device is not None else REGISTRY.create("devices", spec.device)
    runtime = create_runtime(device_spec)  # type: ignore[arg-type]
    ctx = FrameworkContext(runtime)
    engine = ExecutionEngine(ctx)
    model = REGISTRY.create("models", spec.model)

    session_kwargs: dict[str, object] = {}
    if record_to is not None:
        session_kwargs["record_to"] = record_to
        session_kwargs["trace_metadata"] = spec.canonical()
    session = PastaSession(
        runtime,
        tools=_resolve_tools(spec, extra_tools),
        vendor_backend=spec.backend,
        analysis_model=spec.analysis_model,
        enable_fine_grained=spec.fine_grained,
        range_filter=range_filter,
        cost_config=cost_config,
        **session_kwargs,
    )
    session.attach_framework(ctx)
    with session:
        engine.prepare(model)
        if spec.mode == "inference":
            summary = engine.run_inference(
                model, iterations=spec.iterations, batch_size=spec.batch_size
            )
        else:
            summary = engine.run_training(
                model, iterations=spec.iterations, batch_size=spec.batch_size
            )
    return ProfileResult(
        spec=spec, model=model, runtime=runtime, ctx=ctx, session=session, summary=summary
    )


def _split_tools(
    tools: Optional[Sequence[Union[PastaTool, str]]],
) -> tuple[tuple[str, ...], list[PastaTool]]:
    """Separate registry names (spec data) from tool instances (overrides)."""
    names: list[str] = []
    instances: list[PastaTool] = []
    for tool in tools or ():
        if isinstance(tool, str):
            names.append(tool)
        else:
            instances.append(tool)
    return tuple(names), instances


def _device_name(device: Union[str, DeviceSpec]) -> tuple[str, Optional[DeviceSpec]]:
    """Map a device argument to ``(spec.device, device_override)``."""
    if isinstance(device, str):
        return device, None
    ns = REGISTRY.namespace("devices")
    for name in ns.names():
        if ns.get(name) == device:
            return name, None
    return device.name, device  # custom spec: label with its marketing name


def run(
    spec_or_model: Union[ProfileSpec, str],
    *,
    device: Union[str, DeviceSpec, None] = None,
    mode: Optional[str] = None,
    iterations: Optional[int] = None,
    tools: Optional[Sequence[Union[PastaTool, str]]] = None,
    backend: Optional[str] = None,
    fine_grained: Optional[bool] = None,
    batch_size: Optional[int] = None,
    analysis_model: Union[str, AnalysisModel, None] = None,
    knobs: Optional[Mapping[str, object]] = None,
    range_filter: Optional[RangeFilter] = None,
    cost_config: Optional[CostModelConfig] = None,
    record_to: Union[str, Path, None] = None,
) -> ProfileResult:
    """Profile one workload: ``pasta.run("gpt2", tools=["hotness"])``.

    Accepts either a ready :class:`ProfileSpec` or a model name, plus the
    spec's fields as keywords.  Keywords left at ``None`` are "not given":
    with a model name they take the spec defaults, with a spec they leave
    that spec's field untouched, and any keyword actually passed acts as a
    per-field override (``run(spec, iterations=3)`` profiles
    ``spec.replace(iterations=3)``).  To *reset* a spec field to a default
    (e.g. clear ``batch_size``), use :meth:`ProfileSpec.replace` directly.
    ``tools`` may mix registry names with :class:`PastaTool` instances;
    names become part of the spec, instances ride along as extras.
    """
    names, instances = _split_tools(tools)
    if isinstance(analysis_model, AnalysisModel):
        analysis_model = analysis_model.value
    device_override: Optional[DeviceSpec] = None
    device_name: Optional[str] = None
    if device is not None:
        device_name, device_override = _device_name(device)
    if isinstance(spec_or_model, ProfileSpec):
        spec = spec_or_model
        changes: dict[str, object] = {}
        if device_name is not None:
            changes["device"] = device_name
        if mode is not None:
            changes["mode"] = mode
        if iterations is not None:
            changes["iterations"] = iterations
        if names:
            # Passed names replace the spec's tool set; instance-only lists
            # leave it untouched (instances are always extras on top).
            changes["tools"] = tuple(names)
        if backend is not None:
            changes["backend"] = backend
        if fine_grained is not None:
            changes["fine_grained"] = fine_grained
        if batch_size is not None:
            changes["batch_size"] = batch_size
        if analysis_model is not None:
            changes["analysis_model"] = str(analysis_model)
        if knobs is not None:
            changes["knobs"] = tuple((str(k), v) for k, v in knobs.items())
        if changes:
            spec = spec.replace(**changes)
    else:
        spec = ProfileSpec(
            model=spec_or_model,
            device="a100" if device_name is None else device_name,
            mode="inference" if mode is None else mode,
            tools=names,
            iterations=1 if iterations is None else iterations,
            batch_size=batch_size,
            backend=backend,
            analysis_model="gpu_resident" if analysis_model is None else str(analysis_model),
            fine_grained=bool(fine_grained),
            knobs=tuple((str(k), v) for k, v in (knobs or {}).items()),  # type: ignore[arg-type]
            record_to=None if record_to is None else str(record_to),
        )
    return execute(
        spec,
        extra_tools=instances,
        device=device_override,
        range_filter=range_filter,
        cost_config=cost_config,
        record_to=record_to,
    )


def replay(
    trace: object,
    spec: Optional[ProfileSpec] = None,
    *,
    tools: Optional[Sequence[Union[PastaTool, str]]] = None,
    analysis_model: Union[str, AnalysisModel, None] = None,
    cost_config: Optional[CostModelConfig] = None,
    range_filter: Optional[RangeFilter] = None,
    measure_overhead: bool = True,
    events: Optional[Sequence[object]] = None,
):
    """Re-drive a recorded trace offline, configured by the same spec.

    ``trace`` is a path or an open :class:`~repro.replay.reader.TraceReader`.
    With a ``spec``, the replayed tool set, analysis model and knob
    overrides come from it — replaying the spec that recorded a trace
    reproduces the live session's reports byte for byte.  Explicit keyword
    arguments override the spec field for field; tool names and instances
    may be mixed as in :func:`run`.  Returns a
    :class:`~repro.replay.replayer.ReplayResult`.
    """
    # Imported lazily: repro.replay builds on repro.core; keeping the api
    # module importable without it avoids a hard import cycle.
    from repro.replay.replayer import replay_trace

    names, instances = _split_tools(tools)
    if spec is not None and not names:
        # Instance-only (or absent) tool lists keep the spec's tool set;
        # passed names replace it.  Instances are always extras on top.
        names = spec.tools
    tool_instances = [create_tool(name) for name in names] + instances
    if spec is not None:
        spec_range, spec_cost = spec.resolve_overrides()
        if analysis_model is None:
            analysis_model = spec.analysis_model
        if range_filter is None:
            range_filter = spec_range
        if cost_config is None:
            cost_config = spec_cost
    return replay_trace(
        trace,  # type: ignore[arg-type]
        tools=tool_instances,
        analysis_model=analysis_model,
        cost_config=cost_config,
        range_filter=range_filter,
        measure_overhead=measure_overhead,
        events=events,
    )


# ---------------------------------------------------------------------- #
# picklable payload runners (the campaign scheduler's worker functions)
# ---------------------------------------------------------------------- #

def execute_payload(
    payload: Mapping[str, object], record_to: Union[str, Path, None] = None
) -> dict[str, object]:
    """Run one job described by a plain (picklable) spec dict.

    Invoked by the campaign scheduler — in the calling process or, under the
    process-pool executor, in a freshly spawned interpreter — so both the
    argument and the result are JSON-native data, never live simulator
    objects.  The payload is a :meth:`ProfileSpec.to_dict` dict; the record
    holds the echoed payload, the run summary, and every tool report.
    """
    spec = ProfileSpec.from_dict(payload)
    result = execute(spec, record_to=record_to)
    return json_sanitize({
        "job": dict(payload),
        "status": "ok",
        "summary": result.summary.as_dict(),
        "reports": result.reports(),
        "execution": "simulate",
    })


def workload_signature(payload: Mapping[str, object]) -> tuple[object, ...]:
    """Simulation identity of a payload (see :meth:`ProfileSpec.workload_signature`)."""
    return ProfileSpec.from_dict(payload).workload_signature()


def record_workload_trace(
    payload: Mapping[str, object], trace_path: Union[str, Path]
) -> dict[str, object]:
    """Simulate a payload's workload once, recording every event to ``trace_path``.

    The recording run attaches no tools and no knob overrides so the trace
    carries the complete event stream; any spec with the same
    :meth:`ProfileSpec.workload_signature` can then be answered by replay.
    Returns the JSON-native run summary shared by every job of the group.
    """
    spec = ProfileSpec.from_dict(payload)
    fine_grained = spec.needs_fine_grained()
    base = spec.replace(
        tools=(),
        knobs=(),
        analysis_model="gpu_resident",
        fine_grained=fine_grained,
        record_to=str(trace_path),
    )
    result = execute(base)
    return json_sanitize(result.summary.as_dict())


def replay_payload(
    payload: Mapping[str, object],
    trace: object,
    summary: Mapping[str, object],
    events: Optional[Sequence[object]] = None,
) -> dict[str, object]:
    """Answer one job by replaying a recorded workload trace.

    Produces a record with the same shape (and, for the shared fields, the
    same values) as :func:`execute_payload`, but without re-simulating: the
    spec's tools, analysis model and knobs are re-driven offline.  Pass
    ``events`` (a pre-decoded list) when replaying several jobs from one
    trace so the decode cost is paid once.
    """
    spec = ProfileSpec.from_dict(payload)
    result = replay(trace, spec, events=events)
    return json_sanitize({
        "job": dict(payload),
        "status": "ok",
        "summary": dict(summary),
        "reports": result.reports(),
        "execution": "replay",
    })
