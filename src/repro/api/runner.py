"""The single execution path behind every way of running an analysis.

All four execution styles — live run, record-to-trace, offline replay, and
campaign jobs (in either simulate or replay mode) — are implemented here, and
all of them are driven by the same :class:`~repro.api.spec.ProfileSpec`:

* :func:`execute` — simulate a workload under a live
  :class:`~repro.core.session.PastaSession` (recording a trace when the spec
  says so);
* :func:`replay` — re-drive a recorded trace through the spec's tools and
  analysis model with no simulator attached;
* :func:`execute_payload` / :func:`record_workload_trace` /
  :func:`replay_payload` — the module-level, picklable wrappers the campaign
  scheduler fans out over worker pools (their arguments and results are
  JSON-native so they survive process boundaries).

Everything above this module — the ``pasta`` CLI, the fluent builder, the
campaign scheduler, the deprecated ``run_workload`` shim — is sugar over
these functions.
"""

from __future__ import annotations

import dataclasses
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.api.spec import ParallelismSpec, ProfileSpec, normalize_parallelism
from repro.core.annotations import RangeFilter
from repro.core.registry import REGISTRY, create_tool
from repro.core.serialization import json_sanitize
from repro.core.session import PastaSession, _make_analysis_model, _make_backend
from repro.core.tool import PastaTool
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine, RunSummary
from repro.dlframework.models.base import ModelBase
from repro.errors import ReproError, TraceError
from repro.gpusim.costmodel import CostModelConfig
from repro.obs.telemetry import active as _active_telemetry
from repro.gpusim.device import DeviceSpec
from repro.gpusim.runtime import AcceleratorRuntime, create_runtime
from repro.gpusim.trace import AnalysisModel

#: Tool every parallel rank carries implicitly: its per-device timeline is
#: the per-rank memory profile the cross-rank report aggregates (Figure 15's
#: y-axis), and — being an ordinary event-driven tool — it reproduces byte
#: for byte under offline replay.
PARALLEL_MEMORY_TOOL = "memory_timeline"


@dataclass
class ProfileResult:
    """Everything produced by one profiled workload run."""

    spec: ProfileSpec
    model: ModelBase
    runtime: AcceleratorRuntime
    ctx: FrameworkContext
    session: PastaSession
    summary: RunSummary

    def reports(self) -> dict[str, dict[str, object]]:
        """Tool reports collected by the session (plus ``"overhead"``)."""
        return self.session.reports()

    def tool(self, name: str) -> PastaTool:
        """Fetch one of the session's tools by its registry name."""
        for tool in self.session.tools:
            if tool.tool_name == name:
                return tool
        attached = sorted(tool.tool_name for tool in self.session.tools)
        raise ReproError(
            f"tool {name!r} was not attached to this session; "
            f"attached tools: {attached if attached else 'none'}"
        )

    def report(self, name: str) -> dict[str, object]:
        """One attached tool's report by registry name."""
        return self.tool(name).report()


def _resolve_tools(
    spec: ProfileSpec, extra_tools: Sequence[PastaTool]
) -> list[PastaTool]:
    tools: list[PastaTool] = [create_tool(name) for name in spec.tools]
    tools.extend(extra_tools)
    return tools


def execute(
    spec: ProfileSpec,
    *,
    extra_tools: Sequence[PastaTool] = (),
    device: Optional[DeviceSpec] = None,
    range_filter: Optional[RangeFilter] = None,
    cost_config: Optional[CostModelConfig] = None,
    record_to: Union[str, Path, None] = None,
) -> Union[ProfileResult, "ParallelProfileResult"]:
    """Simulate ``spec``'s workload under a live PASTA session.

    The spec is authoritative; the keyword arguments are programmatic escape
    hatches for things a declarative spec cannot carry — already-built tool
    *instances* (``extra_tools``), a custom :class:`DeviceSpec` not in the
    device registry, pre-built range/cost overrides (which otherwise come
    from the spec's knobs), and a ``record_to`` destination overriding the
    spec's.

    A spec with a :class:`~repro.api.spec.ParallelismSpec` routes through the
    multi-GPU path and returns a :class:`ParallelProfileResult` instead; the
    per-rank device list comes from the spec, so the programmatic ``device``
    and stateful ``range_filter`` escape hatches are rejected there.
    """
    if spec.parallelism is not None:
        if extra_tools:
            raise ReproError(
                "parallel profiles attach one fresh tool instance per rank; "
                "register tools and name them in the spec instead of passing "
                "extra_tools instances"
            )
        if device is not None or range_filter is not None:
            raise ReproError(
                "parallel profiles resolve per-rank devices and range filters "
                "from the spec; the device/range_filter overrides do not apply"
            )
        return execute_parallel(spec, cost_config=cost_config, record_to=record_to)
    spec_range, spec_cost = spec.resolve_overrides()
    range_filter = range_filter if range_filter is not None else spec_range
    cost_config = cost_config if cost_config is not None else spec_cost
    record_to = record_to if record_to is not None else spec.record_to

    telemetry = _active_telemetry()
    with telemetry.span("profile.setup", model=spec.model, device=spec.device):
        if telemetry.enabled:
            import repro

            telemetry.annotate(spec_digest=spec.digest(repro.__version__), model=spec.model)
        # create() (not get()) so the namespace's DeviceSpec product check runs.
        device_spec = device if device is not None else REGISTRY.create("devices", spec.device)
        runtime = create_runtime(device_spec)  # type: ignore[arg-type]
        ctx = FrameworkContext(runtime)
        engine = ExecutionEngine(ctx)
        model = REGISTRY.create("models", spec.model)

        session_kwargs: dict[str, object] = {}
        if record_to is not None:
            session_kwargs["record_to"] = record_to
            session_kwargs["trace_metadata"] = spec.canonical()
        session = PastaSession(
            runtime,
            tools=_resolve_tools(spec, extra_tools),
            vendor_backend=spec.backend,
            analysis_model=spec.analysis_model,
            enable_fine_grained=spec.fine_grained,
            range_filter=range_filter,
            cost_config=cost_config,
            **session_kwargs,
        )
        session.attach_framework(ctx)
    # Imported lazily to avoid a cycle: the campaign package imports this
    # module at load time.
    from repro.campaign.progress import active_progress

    progress = active_progress()
    if progress.enabled:
        progress.emit(
            "phase", event="simulate", job=spec.label(), model=spec.model,
            mode=spec.mode, iterations=spec.iterations,
        )
    with telemetry.span(
        "profile.simulate",
        model=spec.model,
        mode=spec.mode,
        iterations=spec.iterations,
    ) as simulate_span:
        with session:
            engine.prepare(model)
            if spec.mode == "inference":
                summary = engine.run_inference(
                    model, iterations=spec.iterations, batch_size=spec.batch_size
                )
            else:
                summary = engine.run_training(
                    model, iterations=spec.iterations, batch_size=spec.batch_size
                )
        simulate_span.set_counter("events_processed", session.processor.events_processed)
    return ProfileResult(
        spec=spec, model=model, runtime=runtime, ctx=ctx, session=session, summary=summary
    )


# ---------------------------------------------------------------------- #
# multi-GPU parallel execution (DP/TP/PP over a shared DeviceSet)
# ---------------------------------------------------------------------- #

@dataclass
class ParallelRunSummaryView:
    """Run summary of one parallel profile: per-rank rows plus totals.

    Shape-compatible with :class:`~repro.dlframework.engine.RunSummary` where
    it matters — ``as_dict()`` exposes the same top-level roll-up metrics the
    campaign aggregator reads (``kernel_launches``, ``peak_allocated_bytes``,
    ``total_kernel_time_ns``), summed (peaks: max) across ranks, with the
    per-rank breakdown nested under ``ranks``.
    """

    model_name: str
    strategy: str
    world_size: int
    iterations: int
    per_rank: list[dict[str, object]] = field(default_factory=list)
    mode: str = "train"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for reports and campaign records."""
        return {
            "model": self.model_name,
            "mode": self.mode,
            "iterations": self.iterations,
            "parallelism": {"strategy": self.strategy, "world_size": self.world_size},
            "kernel_launches": sum(int(r["kernel_launches"]) for r in self.per_rank),
            "peak_allocated_bytes": max(
                (int(r["peak_allocated_bytes"]) for r in self.per_rank), default=0
            ),
            "allocation_events": sum(int(r["allocation_events"]) for r in self.per_rank),
            "total_kernel_time_ns": sum(
                int(r["total_kernel_time_ns"]) for r in self.per_rank
            ),
            "ranks": [dict(r) for r in self.per_rank],
        }


def _cross_rank_report(
    parallelism: Mapping[str, object],
    device_indices: Sequence[int],
    rank_reports: Sequence[Mapping[str, object]],
) -> dict[str, object]:
    """Aggregate per-rank reports into the Figure-15 cross-rank comparison.

    A pure function of the per-rank tool reports (the implicit
    ``memory_timeline`` per rank), so live runs and offline replays of the
    same event stream produce byte-identical aggregates.
    """
    peaks: list[int] = []
    events: list[int] = []
    for index, report in zip(device_indices, rank_reports):
        devices = report.get(PARALLEL_MEMORY_TOOL, {}).get("devices", {})  # type: ignore[union-attr]
        timeline = devices.get(str(index), {})
        peaks.append(int(timeline.get("peak_bytes", 0)))
        events.append(int(timeline.get("events", 0)))
    max_peak = max(peaks) if peaks else 0
    min_peak = min(peaks) if peaks else 0
    return {
        **dict(parallelism),
        "device_indices": [int(i) for i in device_indices],
        "peak_bytes_per_rank": peaks,
        "allocation_events_per_rank": events,
        "max_peak_bytes": max_peak,
        "min_peak_bytes": min_peak,
        # Symmetry of the per-rank memory curves: 1.0 for DP/TP (replicated
        # or evenly sharded), < 1.0 for PP's uneven stages.
        "peak_symmetry": (min_peak / max_peak) if max_peak else 1.0,
        # Last-over-first peak ratio: > 1.0 under PP, where the final stage
        # owns the LM head and the logits tensor (Figure 15c).
        "last_over_first_peak": (peaks[-1] / peaks[0]) if peaks and peaks[0] else 0.0,
        "peak_delta_bytes": max_peak - min_peak,
    }


def _parallel_reports(
    spec: ProfileSpec,
    device_indices: Sequence[int],
    rank_reports: Sequence[dict[str, dict[str, object]]],
) -> dict[str, dict[str, object]]:
    """Assemble the aggregated report document of one parallel profile."""
    parallelism = spec.parallelism
    assert parallelism is not None
    descriptor = dict(parallelism.to_dict())
    descriptor["devices"] = list(parallelism.resolved_devices(spec.device))
    return {
        "parallelism": descriptor,
        "ranks": {
            f"rank{rank}": dict(report) for rank, report in enumerate(rank_reports)
        },
        "cross_rank": _cross_rank_report(descriptor, device_indices, rank_reports),
    }


def _rank_tool_instances(spec: ProfileSpec) -> list[PastaTool]:
    """One fresh tool set for one rank: the spec's tools plus the implicit
    per-rank memory timeline (skipped when the spec already names it)."""
    tools = [create_tool(name) for name in spec.tools]
    if PARALLEL_MEMORY_TOOL not in spec.tools:
        tools.append(create_tool(PARALLEL_MEMORY_TOOL))
    return tools


def _parallel_model_config(spec: ProfileSpec) -> object:
    """The (possibly batch-size-overridden) model config of a parallel run."""
    model = REGISTRY.create("models", spec.model)
    if not getattr(model, "supports_parallelism", False):
        supported = sorted(
            name for name in REGISTRY.names("models")
            if getattr(REGISTRY.namespace("models").get(name), "supports_parallelism", False)
        )
        raise ReproError(
            f"model {spec.model!r} does not support multi-GPU parallelism "
            f"profiles; models that do: {supported or ['megatron_gpt2_345m']}"
        )
    config = model.config  # type: ignore[attr-defined]
    if spec.batch_size is not None:
        config = dataclasses.replace(config, batch_size=spec.batch_size)
    return config


@dataclass
class ParallelProfileResult:
    """Everything produced by one multi-GPU parallel profile.

    The parallel sibling of :class:`ProfileResult`: one instrumented
    :class:`~repro.core.session.PastaSession` per rank over a shared
    :class:`~repro.gpusim.multigpu.DeviceSet`, with :meth:`reports`
    aggregating per-rank tool reports and the cross-rank comparison.
    """

    spec: ProfileSpec
    device_set: object  # DeviceSet (typed loosely to keep gpusim imports lazy)
    runner: object  # dlframework.parallel.ParallelRunner
    sessions: list[PastaSession]
    summary: ParallelRunSummaryView
    device_indices: list[int] = field(default_factory=list)

    def rank_reports(self) -> list[dict[str, dict[str, object]]]:
        """Each rank's session reports (tools plus ``"overhead"``)."""
        return [session.reports() for session in self.sessions]

    def reports(self) -> dict[str, dict[str, object]]:
        """Aggregated document: ``parallelism`` / ``ranks`` / ``cross_rank``."""
        return _parallel_reports(self.spec, self.device_indices, self.rank_reports())

    def tool(self, name: str, rank: int = 0) -> PastaTool:
        """Fetch one rank's tool instance by registry name."""
        if not 0 <= rank < len(self.sessions):
            raise ReproError(
                f"rank {rank} out of range for world size {len(self.sessions)}"
            )
        for tool in self.sessions[rank].tools:
            if tool.tool_name == name:
                return tool
        attached = sorted(t.tool_name for t in self.sessions[rank].tools)
        raise ReproError(
            f"tool {name!r} was not attached to rank {rank}; attached: {attached}"
        )

    def report(self, name: str, rank: int = 0) -> dict[str, object]:
        """One rank's tool report by registry name."""
        return self.tool(name, rank).report()


@dataclass
class ParallelReplayResult:
    """Offline twin of :class:`ParallelProfileResult`: per-rank replays of
    one multi-GPU trace, aggregated exactly like the live run."""

    spec: ProfileSpec
    trace_path: Path
    rank_results: list[object]  # replay.replayer.ReplayResult per rank
    device_indices: list[int] = field(default_factory=list)

    @property
    def events_replayed(self) -> int:
        """Total events re-driven across all ranks."""
        return sum(result.events_replayed for result in self.rank_results)  # type: ignore[attr-defined]

    def rank_reports(self) -> list[dict[str, dict[str, object]]]:
        """Each rank's replayed reports (tools plus ``"overhead"``)."""
        return [result.reports() for result in self.rank_results]  # type: ignore[attr-defined]

    def reports(self) -> dict[str, dict[str, object]]:
        """Aggregated document: ``parallelism`` / ``ranks`` / ``cross_rank``."""
        return _parallel_reports(self.spec, self.device_indices, self.rank_reports())


def _rank_progress_hook(spec: ProfileSpec, parallelism: ParallelismSpec):
    """Per-iteration callback streaming per-rank progress to the active bus.

    Returns ``None`` when no progress bus is active, so the common case adds
    nothing to the parallel runner's iteration loop.  The lockstep runners
    advance every rank together, so one callback fans out to one record per
    rank — the shape ``pasta campaign watch`` renders as per-rank lanes.
    """
    from repro.campaign.progress import active_progress

    progress = active_progress()
    if not progress.enabled:
        return None
    label = spec.label()

    def on_iteration(completed: int, iterations: int) -> None:
        for rank in range(parallelism.world_size):
            progress.emit(
                "rank", event="progress", job=label,
                strategy=parallelism.strategy, rank=rank,
                iteration=completed, iterations=iterations,
            )

    return on_iteration


def execute_parallel(
    spec: ProfileSpec,
    *,
    cost_config: Optional[CostModelConfig] = None,
    record_to: Union[str, Path, None] = None,
) -> ParallelProfileResult:
    """Simulate ``spec``'s workload across ranks under live PASTA sessions.

    One :class:`PastaSession` (with the full tool set) attaches to each
    rank's framework context before the model shards materialize, so every
    rank's complete event stream — parameters, activations, collectives — is
    observed and, when recording, persisted into **one** shared trace whose
    events are per-rank sliceable by ``device_index``.
    """
    # Imported lazily (like the replay imports below): the parallel runner
    # pulls in the model zoo, which the api module must not import eagerly.
    from repro.dlframework.parallel import create_parallel_runner
    from repro.gpusim.multigpu import DeviceSet

    parallelism = spec.parallelism
    if parallelism is None:
        raise ReproError("execute_parallel needs a spec with a parallelism config")
    record_to = record_to if record_to is not None else spec.record_to

    device_names = parallelism.resolved_devices(spec.device)
    device_specs = [REGISTRY.create("devices", name) for name in device_names]
    device_set = DeviceSet(device_specs)  # type: ignore[arg-type]
    config = _parallel_model_config(spec)
    runner = create_parallel_runner(
        parallelism.strategy,
        device_set,
        config,  # type: ignore[arg-type]
        num_microbatches=(
            parallelism.microbatches if parallelism.strategy == "pp" else None
        ),
    )

    fine_grained = spec.needs_fine_grained()
    writer = None
    if record_to is not None:
        from repro.replay.format import TraceHeader
        from repro.replay.writer import TraceWriter

        backends = [_make_backend(spec.backend, runtime) for runtime in device_set]
        header = TraceHeader.for_recording(
            device_spec=device_specs[0],  # type: ignore[arg-type]
            analysis_model=_make_analysis_model(spec.analysis_model).value,
            backend=backends[0].name,
            instrumentation=backends[0].instrumentation.value,
            fine_grained=fine_grained,
            workload={
                **spec.canonical(),
                "device_indices": device_set.device_indices,
                "rank_devices": list(device_names),
                "rank_instrumentation": [b.instrumentation.value for b in backends],
            },
        )
        writer = TraceWriter(record_to, header)

    # The shared writer is owned here, not by any rank session: it must be
    # aborted (marking the trace incomplete) or closed on every path out,
    # including session-construction failures such as duplicate tool names.
    sessions: list[PastaSession] = []
    telemetry = _active_telemetry()
    try:
        for rank in range(parallelism.world_size):
            spec_range, spec_cost = spec.resolve_overrides()
            session = PastaSession(
                device_set[rank],
                tools=_rank_tool_instances(spec),
                vendor_backend=spec.backend,
                analysis_model=spec.analysis_model,
                enable_fine_grained=spec.fine_grained,
                range_filter=spec_range,  # type: ignore[arg-type]
                cost_config=cost_config if cost_config is not None else spec_cost,  # type: ignore[arg-type]
                trace_writer=writer,
            )
            session.attach_framework(runner.contexts[rank])
            sessions.append(session)
        with telemetry.span(
            "parallel.simulate",
            model=spec.model,
            strategy=parallelism.strategy,
            world_size=parallelism.world_size,
            iterations=spec.iterations,
        ):
            with ExitStack() as stack:
                # Sessions are entered in rank order on one thread, so the
                # per-rank session.run spans nest rank0 → rank1 → …; the rank
                # attribute is what distinguishes them in the tree.
                for rank, session in enumerate(sessions):
                    stack.enter_context(session)
                    session.annotate_telemetry(rank=rank)
                runner.run(
                    spec.iterations,
                    progress=_rank_progress_hook(spec, parallelism),
                )
    except BaseException as error:
        if writer is not None and not writer.closed:
            writer.abort(f"{type(error).__name__}: {error}")
        raise
    else:
        if writer is not None and not writer.closed:
            writer.close()

    per_rank = [
        {
            "rank": rank,
            "device": device_names[rank],
            "device_index": ctx.runtime.device.index,
            "kernel_launches": ctx.kernel_launch_count,
            "peak_allocated_bytes": ctx.allocator.stats.peak_allocated_bytes,
            "peak_reserved_bytes": ctx.allocator.stats.peak_reserved_bytes,
            "allocation_events": ctx.allocator.event_count,
            "total_kernel_time_ns": ctx.runtime.total_kernel_time_ns(),
        }
        for rank, ctx in enumerate(runner.contexts)
    ]
    summary = ParallelRunSummaryView(
        model_name=spec.model,
        strategy=parallelism.strategy,
        world_size=parallelism.world_size,
        iterations=spec.iterations,
        per_rank=per_rank,
    )
    return ParallelProfileResult(
        spec=spec,
        device_set=device_set,
        runner=runner,
        sessions=sessions,
        summary=summary,
        device_indices=list(device_set.device_indices),
    )


def replay_parallel(
    trace: object,
    spec: ProfileSpec,
    *,
    events: Optional[Sequence[object]] = None,
) -> ParallelReplayResult:
    """Re-drive a recorded multi-GPU trace offline, one replay per rank.

    The trace header's workload metadata carries the per-rank device indices
    the live run recorded; each rank's event slice feeds a fresh
    :class:`~repro.replay.replayer.TraceReplayer` configured from the spec
    (tools, analysis model, knobs, the rank's device spec), so the per-rank
    reports are byte-identical to the live sessions'.
    """
    from repro.replay.reader import TraceReader
    from repro.replay.replayer import TraceReplayer

    parallelism = spec.parallelism
    if parallelism is None:
        raise ReproError("replay_parallel needs a spec with a parallelism config")
    reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)  # type: ignore[arg-type]
    metadata = reader.header.workload
    device_indices = metadata.get("device_indices")
    if not isinstance(device_indices, list) or not device_indices:
        raise TraceError(
            f"trace {reader.path} does not carry per-rank device indices; it "
            f"was not recorded from a multi-GPU parallel profile"
        )
    if len(device_indices) != parallelism.world_size:
        raise TraceError(
            f"trace {reader.path} records {len(device_indices)} ranks but the "
            f"spec's parallelism expects {parallelism.world_size}"
        )
    device_names = parallelism.resolved_devices(spec.device)
    recorded_instrumentation = metadata.get("rank_instrumentation")
    if not isinstance(recorded_instrumentation, list):
        recorded_instrumentation = [None] * len(device_indices)

    if events is None:
        events = list(reader.events())
    rank_results = []
    for rank, device_index in enumerate(int(i) for i in device_indices):
        rank_events = [e for e in events if e.device_index == device_index]  # type: ignore[attr-defined]
        spec_range, spec_cost = spec.resolve_overrides()
        replayer = TraceReplayer(
            reader,
            tools=_rank_tool_instances(spec),
            analysis_model=spec.analysis_model,
            cost_config=spec_cost,  # type: ignore[arg-type]
            range_filter=spec_range,  # type: ignore[arg-type]
            events=rank_events,
            device_spec=REGISTRY.create("devices", device_names[rank]),  # type: ignore[arg-type]
            instrumentation=recorded_instrumentation[rank],
        )
        rank_results.append(replayer.run())
    return ParallelReplayResult(
        spec=spec,
        trace_path=reader.path,
        rank_results=rank_results,
        device_indices=[int(i) for i in device_indices],
    )


def _split_tools(
    tools: Optional[Sequence[Union[PastaTool, str]]],
) -> tuple[tuple[str, ...], list[PastaTool]]:
    """Separate registry names (spec data) from tool instances (overrides)."""
    names: list[str] = []
    instances: list[PastaTool] = []
    for tool in tools or ():
        if isinstance(tool, str):
            names.append(tool)
        else:
            instances.append(tool)
    return tuple(names), instances


def _device_name(device: Union[str, DeviceSpec]) -> tuple[str, Optional[DeviceSpec]]:
    """Map a device argument to ``(spec.device, device_override)``."""
    if isinstance(device, str):
        return device, None
    ns = REGISTRY.namespace("devices")
    for name in ns.names():
        if ns.get(name) == device:
            return name, None
    return device.name, device  # custom spec: label with its marketing name


def run(
    spec_or_model: Union[ProfileSpec, str],
    *,
    device: Union[str, DeviceSpec, None] = None,
    mode: Optional[str] = None,
    iterations: Optional[int] = None,
    tools: Optional[Sequence[Union[PastaTool, str]]] = None,
    backend: Optional[str] = None,
    fine_grained: Optional[bool] = None,
    batch_size: Optional[int] = None,
    analysis_model: Union[str, AnalysisModel, None] = None,
    knobs: Optional[Mapping[str, object]] = None,
    parallelism: Union[ParallelismSpec, Mapping[str, object], str, None] = None,
    range_filter: Optional[RangeFilter] = None,
    cost_config: Optional[CostModelConfig] = None,
    record_to: Union[str, Path, None] = None,
) -> Union[ProfileResult, ParallelProfileResult]:
    """Profile one workload: ``pasta.run("gpt2", tools=["hotness"])``.

    Accepts either a ready :class:`ProfileSpec` or a model name, plus the
    spec's fields as keywords.  Keywords left at ``None`` are "not given":
    with a model name they take the spec defaults, with a spec they leave
    that spec's field untouched, and any keyword actually passed acts as a
    per-field override (``run(spec, iterations=3)`` profiles
    ``spec.replace(iterations=3)``).  To *reset* a spec field to a default
    (e.g. clear ``batch_size``), use :meth:`ProfileSpec.replace` directly.
    ``tools`` may mix registry names with :class:`PastaTool` instances;
    names become part of the spec, instances ride along as extras.

    ``parallelism`` (a :class:`~repro.api.spec.ParallelismSpec`, dict, or
    bare strategy name such as ``"tp"``) turns the run into a multi-GPU
    parallel profile; parallel profiles train, so a run given parallelism
    without an explicit mode defaults to ``mode="train"``.
    """
    names, instances = _split_tools(tools)
    parallelism = normalize_parallelism(parallelism)
    if parallelism is not None and mode is None:
        mode = "train"
    if isinstance(analysis_model, AnalysisModel):
        analysis_model = analysis_model.value
    device_override: Optional[DeviceSpec] = None
    device_name: Optional[str] = None
    if device is not None:
        device_name, device_override = _device_name(device)
    if isinstance(spec_or_model, ProfileSpec):
        spec = spec_or_model
        changes: dict[str, object] = {}
        if device_name is not None:
            changes["device"] = device_name
        if mode is not None:
            changes["mode"] = mode
        if iterations is not None:
            changes["iterations"] = iterations
        if names:
            # Passed names replace the spec's tool set; instance-only lists
            # leave it untouched (instances are always extras on top).
            changes["tools"] = tuple(names)
        if backend is not None:
            changes["backend"] = backend
        if fine_grained is not None:
            changes["fine_grained"] = fine_grained
        if batch_size is not None:
            changes["batch_size"] = batch_size
        if analysis_model is not None:
            changes["analysis_model"] = str(analysis_model)
        if knobs is not None:
            changes["knobs"] = tuple((str(k), v) for k, v in knobs.items())
        if parallelism is not None:
            changes["parallelism"] = parallelism
        if changes:
            spec = spec.replace(**changes)
    else:
        spec = ProfileSpec(
            model=spec_or_model,
            device="a100" if device_name is None else device_name,
            mode="inference" if mode is None else mode,
            tools=names,
            iterations=1 if iterations is None else iterations,
            batch_size=batch_size,
            backend=backend,
            analysis_model="gpu_resident" if analysis_model is None else str(analysis_model),
            fine_grained=bool(fine_grained),
            knobs=tuple((str(k), v) for k, v in (knobs or {}).items()),  # type: ignore[arg-type]
            parallelism=parallelism,
            record_to=None if record_to is None else str(record_to),
        )
    return execute(
        spec,
        extra_tools=instances,
        device=device_override,
        range_filter=range_filter,
        cost_config=cost_config,
        record_to=record_to,
    )


def replay(
    trace: object,
    spec: Optional[ProfileSpec] = None,
    *,
    tools: Optional[Sequence[Union[PastaTool, str]]] = None,
    analysis_model: Union[str, AnalysisModel, None] = None,
    cost_config: Optional[CostModelConfig] = None,
    range_filter: Optional[RangeFilter] = None,
    measure_overhead: bool = True,
    events: Optional[Sequence[object]] = None,
):
    """Re-drive a recorded trace offline, configured by the same spec.

    ``trace`` is a path or an open :class:`~repro.replay.reader.TraceReader`.
    With a ``spec``, the replayed tool set, analysis model and knob
    overrides come from it — replaying the spec that recorded a trace
    reproduces the live session's reports byte for byte.  Explicit keyword
    arguments override the spec field for field; tool names and instances
    may be mixed as in :func:`run`.  Returns a
    :class:`~repro.replay.replayer.ReplayResult` — or, when the spec carries
    a parallelism config, a :class:`ParallelReplayResult` with one replay
    per rank (the per-field keyword overrides do not apply there).
    """
    # Imported lazily: repro.replay builds on repro.core; keeping the api
    # module importable without it avoids a hard import cycle.
    from repro.replay.replayer import replay_trace

    if spec is not None and spec.parallelism is not None:
        if tools or analysis_model is not None or cost_config is not None \
                or range_filter is not None:
            raise ReproError(
                "parallel replays are configured entirely by the spec "
                "(tools, analysis model, knobs); the per-field keyword "
                "overrides do not apply"
            )
        return replay_parallel(trace, spec, events=events)

    names, instances = _split_tools(tools)
    if spec is not None and not names:
        # Instance-only (or absent) tool lists keep the spec's tool set;
        # passed names replace it.  Instances are always extras on top.
        names = spec.tools
    tool_instances = [create_tool(name) for name in names] + instances
    if spec is not None:
        spec_range, spec_cost = spec.resolve_overrides()
        if analysis_model is None:
            analysis_model = spec.analysis_model
        if range_filter is None:
            range_filter = spec_range
        if cost_config is None:
            cost_config = spec_cost
    return replay_trace(
        trace,  # type: ignore[arg-type]
        tools=tool_instances,
        analysis_model=analysis_model,
        cost_config=cost_config,
        range_filter=range_filter,
        measure_overhead=measure_overhead,
        events=events,
    )


# ---------------------------------------------------------------------- #
# picklable payload runners (the campaign scheduler's worker functions)
# ---------------------------------------------------------------------- #

def execute_payload(
    payload: Mapping[str, object], record_to: Union[str, Path, None] = None
) -> dict[str, object]:
    """Run one job described by a plain (picklable) spec dict.

    Invoked by the campaign scheduler — in the calling process or, under the
    process-pool executor, in a freshly spawned interpreter — so both the
    argument and the result are JSON-native data, never live simulator
    objects.  The payload is a :meth:`ProfileSpec.to_dict` dict; the record
    holds the echoed payload, the run summary, and every tool report.
    """
    # Imported here, not at module top: repro.campaign.faults lives in a
    # package whose __init__ imports the scheduler, which imports this module.
    from repro.campaign.faults import active_faults

    spec = ProfileSpec.from_dict(payload)
    # Chaos hook: lets the fault harness (PASTA_FAULTS) raise, stall or
    # SIGKILL a job here — inside process-pool workers and subprocess drills
    # too, since the injector arms itself from the inherited environment.
    active_faults().fire("runner.execute", label=spec.label())
    result = execute(spec, record_to=record_to)
    return json_sanitize({
        "job": dict(payload),
        "status": "ok",
        "summary": result.summary.as_dict(),
        "reports": result.reports(),
        "execution": "simulate",
    })


def workload_signature(payload: Mapping[str, object]) -> tuple[object, ...]:
    """Simulation identity of a payload (see :meth:`ProfileSpec.workload_signature`)."""
    return ProfileSpec.from_dict(payload).workload_signature()


def record_workload_trace(
    payload: Mapping[str, object], trace_path: Union[str, Path]
) -> dict[str, object]:
    """Simulate a payload's workload once, recording every event to ``trace_path``.

    The recording run attaches no tools and no knob overrides so the trace
    carries the complete event stream; any spec with the same
    :meth:`ProfileSpec.workload_signature` can then be answered by replay.
    Returns the JSON-native run summary shared by every job of the group.
    """
    spec = ProfileSpec.from_dict(payload)
    fine_grained = spec.needs_fine_grained()
    base = spec.replace(
        tools=(),
        knobs=(),
        analysis_model="gpu_resident",
        fine_grained=fine_grained,
        record_to=str(trace_path),
    )
    result = execute(base)
    return json_sanitize(result.summary.as_dict())


def replay_payload(
    payload: Mapping[str, object],
    trace: object,
    summary: Mapping[str, object],
    events: Optional[Sequence[object]] = None,
) -> dict[str, object]:
    """Answer one job by replaying a recorded workload trace.

    Produces a record with the same shape (and, for the shared fields, the
    same values) as :func:`execute_payload`, but without re-simulating: the
    spec's tools, analysis model and knobs are re-driven offline.  Pass
    ``events`` (a pre-decoded list) when replaying several jobs from one
    trace so the decode cost is paid once.
    """
    spec = ProfileSpec.from_dict(payload)
    result = replay(trace, spec, events=events)
    return json_sanitize({
        "job": dict(payload),
        "status": "ok",
        "summary": dict(summary),
        "reports": result.reports(),
        "execution": "replay",
    })
