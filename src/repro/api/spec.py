"""`ProfileSpec`: the one declarative description of a profiling run.

Every way of executing an analysis in this repo — a live ``pasta profile``
run, a trace recording, an offline replay, a campaign grid cell — is a
function of the same few choices: which model, on which device, in which
mode, with which tools, under which analysis model and knob overrides.
:class:`ProfileSpec` captures exactly those choices as plain, serializable
data and is the *single* configuration object the execution layer
(:mod:`repro.api.runner`), the campaign scheduler and the replay engine all
build from.  Two guarantees follow:

* **round-trip** — ``ProfileSpec.from_json(spec.to_json()) == spec``; specs
  are JSON-native, hashable and picklable, so they travel through files,
  process pools and result stores unchanged;
* **identity** — :meth:`ProfileSpec.canonical` is the spec's content
  identity: the campaign result cache digests nothing but this canonical
  serialization (plus the package version).  Fields that cannot change a
  result — currently only ``record_to``, the trace *destination* — are
  excluded, so recording a run and re-running it live share a cache entry.
"""

from __future__ import annotations

import dataclasses
import difflib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.core.serialization import content_digest
from repro.errors import ReproError

#: Knob values accepted from JSON specs.
KnobValue = Union[str, int, float, bool]

#: Valid run modes plus common near-misses mapped to the intended value.
RUN_MODES = ("inference", "train")
_MODE_ALIASES = {
    "training": "train",
    "trained": "train",
    "infer": "inference",
    "inferencing": "inference",
    "eval": "inference",
    "evaluation": "inference",
    "predict": "inference",
}

#: Knob names that configure the grid-id analysis window rather than the
#: cost model.
RANGE_KNOBS = ("start_grid_id", "end_grid_id")

#: Canonical multi-GPU parallelism strategies (Section V-D2 / Figure 15),
#: plus the long-form names the runner classes historically used.
PARALLEL_STRATEGIES = ("dp", "tp", "pp")
_STRATEGY_ALIASES = {
    "dp": "dp",
    "tp": "tp",
    "pp": "pp",
    "data_parallel": "dp",
    "data-parallel": "dp",
    "tensor_parallel": "tp",
    "tensor-parallel": "tp",
    "pipeline_parallel": "pp",
    "pipeline-parallel": "pp",
}

_SPEC_FIELDS = (
    "model", "device", "mode", "tools", "iterations", "batch_size",
    "backend", "analysis_model", "fine_grained", "knobs", "parallelism",
    "record_to",
)

#: Fields excluded from :meth:`ProfileSpec.canonical`: they direct where
#: side artifacts go, never what the analysis computes.
NON_IDENTITY_FIELDS = ("record_to",)


def check_mode(mode: str) -> None:
    """Validate a run mode, suggesting the intended value on near-misses."""
    if mode in RUN_MODES:
        return
    valid = ", ".join(repr(m) for m in RUN_MODES)
    suggestion = _MODE_ALIASES.get(str(mode).strip().lower())
    if suggestion is None:
        close = difflib.get_close_matches(str(mode).strip().lower(), RUN_MODES, n=1)
        suggestion = close[0] if close else None
    hint = f"; did you mean {suggestion!r}?" if suggestion else ""
    raise ReproError(f"mode must be one of {valid}, got {mode!r}{hint}")


def normalize_knobs(
    knobs: Union[Mapping[str, KnobValue], Sequence, None],
) -> Tuple[Tuple[str, KnobValue], ...]:
    """Normalise a knob mapping into a sorted, hashable tuple of pairs."""
    if not knobs:
        return ()
    if isinstance(knobs, Mapping):
        items = knobs.items()
    else:
        items = [(k, v) for k, v in knobs]
    out = []
    for key, value in items:
        if not isinstance(key, str) or not key:
            raise ReproError(f"knob names must be non-empty strings, got {key!r}")
        if not isinstance(value, (str, int, float, bool)):
            raise ReproError(f"knob {key!r} must be a JSON scalar, got {type(value).__name__}")
        out.append((key, value))
    out.sort(key=lambda kv: kv[0])
    return tuple(out)


def normalize_strategy(strategy: str) -> str:
    """Canonical short name (``dp``/``tp``/``pp``) for a strategy spelling."""
    key = str(strategy).strip().lower()
    canonical = _STRATEGY_ALIASES.get(key)
    if canonical is None:
        valid = ", ".join(repr(s) for s in PARALLEL_STRATEGIES)
        close = difflib.get_close_matches(key, sorted(_STRATEGY_ALIASES), n=1)
        hint = f"; did you mean {_STRATEGY_ALIASES[close[0]]!r}?" if close else ""
        raise ReproError(
            f"parallelism strategy must be one of {valid}, got {strategy!r}{hint}"
        )
    return canonical


@dataclass(frozen=True)
class ParallelismSpec:
    """Multi-GPU parallelism configuration of one profiling run.

    Mirrors the paper's Section V-D2 setup: one training workload spread
    over ``world_size`` ranks under data (``dp``), tensor (``tp``) or
    pipeline (``pp``) parallelism.  Like :class:`ProfileSpec` it is plain,
    hashable, JSON-native data; it is part of the spec's canonical identity,
    so campaigns can sweep it like any other axis.

    Attributes
    ----------
    strategy:
        ``"dp"``, ``"tp"`` or ``"pp"`` (long-form spellings such as
        ``"tensor_parallel"`` are normalised).
    world_size:
        Number of ranks (devices); at least 2.
    devices:
        Per-rank device registry names.  Empty means "replicate the spec's
        ``device`` on every rank" — the common homogeneous case.
    microbatches:
        Pipeline-parallel micro-batch count.  ``dp``/``tp`` runs ignore it,
        so it is normalised to 1 there — two dp specs differing only in
        microbatches are the *same* configuration and must share a cache
        entry and workload signature.
    """

    strategy: str
    world_size: int = 2
    devices: Tuple[str, ...] = ()
    microbatches: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "strategy", normalize_strategy(self.strategy))
        if self.world_size < 2:
            raise ReproError(
                f"parallelism world_size must be >= 2, got {self.world_size}"
            )
        if self.strategy != "pp":
            object.__setattr__(self, "microbatches", 1)
        if isinstance(self.devices, (str, bytes)):
            raise ReproError(
                f"ParallelismSpec.devices must be a sequence of device names, "
                f"got the string {self.devices!r}"
            )
        object.__setattr__(self, "devices", tuple(str(name) for name in self.devices))
        if self.devices and len(self.devices) != self.world_size:
            raise ReproError(
                f"parallelism lists {len(self.devices)} per-rank devices for a "
                f"world size of {self.world_size}; give one device per rank "
                f"(or none to replicate the spec's device)"
            )
        if self.microbatches < 1:
            raise ReproError(
                f"parallelism microbatches must be >= 1, got {self.microbatches}"
            )

    def resolved_devices(self, default_device: str) -> Tuple[str, ...]:
        """Per-rank device names, replicating ``default_device`` when unset."""
        if self.devices:
            return self.devices
        return (str(default_device),) * self.world_size

    def to_dict(self) -> dict[str, object]:
        """Plain JSON-native dict (inverse of :meth:`from_dict`)."""
        return {
            "strategy": self.strategy,
            "world_size": self.world_size,
            "devices": list(self.devices),
            "microbatches": self.microbatches,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ParallelismSpec":
        """Build from a plain dict, validating field names."""
        known = {"strategy", "world_size", "devices", "microbatches"}
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown ParallelismSpec fields: {sorted(unknown)}")
        if "strategy" not in data:
            raise ReproError("ParallelismSpec requires a 'strategy'")
        devices = data.get("devices") or ()
        if isinstance(devices, (str, bytes)):
            raise ReproError(
                f"ParallelismSpec 'devices' must be a list of device names, "
                f"got the string {devices!r}"
            )
        return cls(
            strategy=str(data["strategy"]),
            world_size=int(data.get("world_size", 2)),
            devices=tuple(str(name) for name in devices),
            microbatches=int(data.get("microbatches", 2)),
        )


def normalize_parallelism(
    parallelism: Union["ParallelismSpec", Mapping[str, object], str, None],
) -> Optional[ParallelismSpec]:
    """Accept a :class:`ParallelismSpec`, a dict, a bare strategy name, or None."""
    if parallelism is None or isinstance(parallelism, ParallelismSpec):
        return parallelism
    if isinstance(parallelism, str):
        return ParallelismSpec(strategy=parallelism)
    if isinstance(parallelism, Mapping):
        return ParallelismSpec.from_dict(parallelism)
    raise ReproError(
        f"parallelism must be a ParallelismSpec, a dict, a strategy name or "
        f"None, got {type(parallelism).__name__}"
    )


@dataclass(frozen=True)
class ProfileSpec:
    """One fully-resolved profiling configuration.

    Attributes
    ----------
    model:
        A name from the model registry (``"alexnet"``, ``"gpt2"``, ...).
    device:
        Device short name from the device registry (``"a100"``, ...).
    mode:
        ``"inference"`` or ``"train"``.
    tools:
        Registry names of the analysis tools to attach (may be empty — the
        session still records overhead statistics).
    iterations:
        Inference passes / training steps.
    batch_size:
        Override the model's paper batch size (None keeps the default).
    backend:
        Profiling backend registry name; None picks the device vendor's
        recommended backend.
    analysis_model:
        Where fine-grained analysis runs: ``"gpu_resident"`` or
        ``"cpu_side"``.
    fine_grained:
        Force device-side (instruction-level) instrumentation even when no
        attached tool requires it.
    knobs:
        Extra overrides as sorted ``(name, value)`` pairs:
        ``start_grid_id``/``end_grid_id`` (the grid-window) or any
        :class:`~repro.gpusim.costmodel.CostModelConfig` field.
    parallelism:
        Multi-GPU parallelism configuration (:class:`ParallelismSpec`), or
        None for a single-GPU run.  Parallel profiles train (the Figure-15
        scenario), drive one instrumented session per rank over a shared
        :class:`~repro.gpusim.multigpu.DeviceSet`, and report per-rank plus
        cross-rank results.
    record_to:
        Persist the run's event stream to this trace file for later offline
        replay.  Excluded from :meth:`canonical` — where a trace is written
        never changes what the tools report.
    """

    model: str
    device: str = "a100"
    mode: str = "inference"
    tools: Tuple[str, ...] = ()
    iterations: int = 1
    batch_size: Optional[int] = None
    backend: Optional[str] = None
    analysis_model: str = "gpu_resident"
    fine_grained: bool = False
    knobs: Tuple[Tuple[str, KnobValue], ...] = ()
    parallelism: Optional[ParallelismSpec] = None
    record_to: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.model:
            raise ReproError("ProfileSpec.model must be non-empty")
        check_mode(self.mode)
        if self.iterations < 1:
            raise ReproError(f"ProfileSpec.iterations must be >= 1, got {self.iterations}")
        if isinstance(self.tools, (str, bytes)):
            # A bare string would iterate into per-character "tool names"
            # and fail much later with a baffling unknown-tool error.
            raise ReproError(
                f"ProfileSpec.tools must be a sequence of tool names, got the "
                f"string {self.tools!r}; did you mean [{self.tools!r}]?"
            )
        object.__setattr__(self, "tools", tuple(str(name) for name in self.tools))
        object.__setattr__(self, "knobs", normalize_knobs(self.knobs))
        object.__setattr__(self, "parallelism", normalize_parallelism(self.parallelism))
        if self.parallelism is not None and self.mode != "train":
            raise ReproError(
                f"multi-GPU parallelism profiles one training iteration per "
                f"rank (the Figure-15 scenario); set mode='train' instead of "
                f"{self.mode!r}"
            )
        if self.record_to is not None:
            object.__setattr__(self, "record_to", str(self.record_to))

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    @property
    def knob_dict(self) -> dict[str, KnobValue]:
        """Knob overrides as a plain dict."""
        return dict(self.knobs)

    def label(self) -> str:
        """Short human-readable identifier used in progress output."""
        tools = "+".join(self.tools) if self.tools else "overhead-only"
        base = f"{self.model}/{self.device}/{self.mode}/{tools}"
        if self.parallelism is not None:
            base += f"/{self.parallelism.strategy}x{self.parallelism.world_size}"
        return base

    def replace(self, **changes: object) -> "ProfileSpec":
        """A copy with ``changes`` applied (knobs are re-normalised)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def with_record(self, path: Union[str, Path, None]) -> "ProfileSpec":
        """A copy recording its event stream to ``path`` (None disables)."""
        return self.replace(record_to=None if path is None else str(path))

    def with_parallelism(
        self,
        strategy: Union["ParallelismSpec", Mapping[str, object], str, None],
        world_size: int = 2,
        devices: Sequence[str] = (),
        microbatches: int = 2,
    ) -> "ProfileSpec":
        """A copy running under multi-GPU parallelism (None disables).

        ``strategy`` may be a ready :class:`ParallelismSpec` (or dict), in
        which case the other arguments are ignored, or a bare strategy name
        combined with ``world_size``/``devices``/``microbatches``.  Parallel
        profiles train, so the mode is switched to ``"train"`` alongside.
        """
        if strategy is None:
            return self.replace(parallelism=None)
        if isinstance(strategy, str):
            parallelism = ParallelismSpec(
                strategy=strategy, world_size=world_size,
                devices=tuple(devices), microbatches=microbatches,
            )
        else:
            parallelism = normalize_parallelism(strategy)
        return self.replace(parallelism=parallelism, mode="train")

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """Plain JSON-native dict (inverse of :meth:`from_dict`)."""
        return {
            "model": self.model,
            "device": self.device,
            "mode": self.mode,
            "tools": list(self.tools),
            "iterations": self.iterations,
            "batch_size": self.batch_size,
            "backend": self.backend,
            "analysis_model": self.analysis_model,
            "fine_grained": self.fine_grained,
            "knobs": self.knob_dict,
            "parallelism": None if self.parallelism is None else self.parallelism.to_dict(),
            "record_to": self.record_to,
        }

    def canonical(self) -> dict[str, object]:
        """The spec's content identity: :meth:`to_dict` minus fields that
        cannot affect results (see :data:`NON_IDENTITY_FIELDS`)."""
        data = self.to_dict()
        for field in NON_IDENTITY_FIELDS:
            data.pop(field, None)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """Stable JSON document for this spec."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ProfileSpec":
        """Build a spec from a plain dict (inverse of :meth:`to_dict`)."""
        unknown = set(data) - set(_SPEC_FIELDS)
        if unknown:
            raise ReproError(f"unknown ProfileSpec fields: {sorted(unknown)}")
        if "model" not in data:
            raise ReproError("ProfileSpec requires a 'model'")
        tools = data.get("tools") or ()
        if isinstance(tools, (str, bytes)):
            raise ReproError(
                f"ProfileSpec 'tools' must be a list of tool names, got the "
                f"string {tools!r}; did you mean [{tools!r}]?"
            )
        return cls(
            model=str(data["model"]),
            device=str(data.get("device", "a100")),
            mode=str(data.get("mode", "inference")),
            tools=tuple(tools),
            iterations=int(data.get("iterations", 1)),
            batch_size=None if data.get("batch_size") is None else int(data["batch_size"]),
            backend=None if data.get("backend") is None else str(data["backend"]),
            analysis_model=str(data.get("analysis_model", "gpu_resident")),
            fine_grained=bool(data.get("fine_grained", False)),
            knobs=normalize_knobs(data.get("knobs")),  # type: ignore[arg-type]
            parallelism=normalize_parallelism(data.get("parallelism")),  # type: ignore[arg-type]
            record_to=None if data.get("record_to") is None else str(data["record_to"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "ProfileSpec":
        """Parse a spec from a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"profile spec is not valid JSON: {error}") from error
        if not isinstance(data, Mapping):
            raise ReproError("profile spec JSON must be an object")
        return cls.from_dict(data)

    def digest(self, version: str) -> str:
        """Content digest of this spec under a given package version.

        The campaign result cache's key: two specs share a digest iff their
        :meth:`canonical` serializations are identical *and* they were
        produced by the same package version.
        """
        return content_digest(self.canonical(), version)

    # ------------------------------------------------------------------ #
    # knob resolution
    # ------------------------------------------------------------------ #
    def resolve_overrides(self) -> tuple[Optional[object], Optional[object]]:
        """Split the knobs into ``(range_filter, cost_config)`` overrides.

        ``start_grid_id``/``end_grid_id`` configure a
        :class:`~repro.core.annotations.RangeFilter` grid window; every other
        knob must be a numeric
        :class:`~repro.gpusim.costmodel.CostModelConfig` field.
        """
        # Imported here so the spec module itself stays import-light (the
        # cost model pulls in the simulator substrate).
        from repro.core.annotations import RangeFilter
        from repro.gpusim.costmodel import CostModelConfig

        knobs = self.knob_dict
        cost_fields = frozenset(f.name for f in dataclasses.fields(CostModelConfig))
        range_values = {name: knobs.get(name) for name in RANGE_KNOBS}
        cost_overrides = {k: v for k, v in knobs.items() if k not in RANGE_KNOBS}
        unknown = set(cost_overrides) - cost_fields
        if unknown:
            raise ReproError(
                f"unknown knobs {sorted(unknown)}; expected {sorted(RANGE_KNOBS)} "
                f"or a CostModelConfig field ({sorted(cost_fields)})"
            )
        for name, value in cost_overrides.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ReproError(f"cost-model knob {name!r} must be numeric, got {value!r}")
        for name, value in range_values.items():
            if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
                raise ReproError(f"knob {name!r} must be an integer grid id, got {value!r}")
        range_filter = None
        if any(v is not None for v in range_values.values()):
            range_filter = RangeFilter()
            range_filter.set_grid_window(
                None if range_values["start_grid_id"] is None else int(range_values["start_grid_id"]),  # type: ignore[arg-type]
                None if range_values["end_grid_id"] is None else int(range_values["end_grid_id"]),  # type: ignore[arg-type]
            )
        cost_config = CostModelConfig(**cost_overrides) if cost_overrides else None  # type: ignore[arg-type]
        return range_filter, cost_config

    def needs_fine_grained(self) -> bool:
        """True if the run must enable device-side instrumentation —
        requested explicitly, or required by any of the spec's tools."""
        from repro.core.registry import create_tool

        return self.fine_grained or any(
            create_tool(name).requires_fine_grained for name in self.tools
        )

    def workload_signature(self) -> tuple[object, ...]:
        """Identity of the *simulation* this spec needs.

        Two specs share a signature iff a single recorded trace can serve
        both: tools, analysis model and knobs only affect offline analysis,
        while these fields — plus whether any requested tool needs
        device-side instrumentation — determine the event stream itself.
        """
        return (
            self.model,
            self.device,
            self.mode,
            self.iterations,
            self.batch_size,
            self.backend,
            self.needs_fine_grained(),
            None if self.parallelism is None else self.parallelism,
        )
