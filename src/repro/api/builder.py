"""Fluent builder over :class:`~repro.api.spec.ProfileSpec`.

The one-liner the facade advertises::

    from repro import pasta

    reports = (pasta.profile("gpt2")
                    .on("a100")
                    .mode("train")
                    .with_tools("hotness", "access_histogram")
                    .record("trace.pasta")
                    .run()
                    .reports())

Every method returns the builder, :meth:`ProfileBuilder.build` returns the
plain :class:`ProfileSpec` (useful for campaigns and files), and
:meth:`ProfileBuilder.run` / :meth:`ProfileBuilder.replay` execute through
the unified runner (:mod:`repro.api.runner`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from typing import Sequence

from repro.api.spec import KnobValue, ParallelismSpec, ProfileSpec
from repro.core.tool import PastaTool
from repro.errors import ReproError
from repro.gpusim.trace import AnalysisModel


class ProfileBuilder:
    """Accumulates :class:`ProfileSpec` fields through a fluent interface.

    Tool *names* become part of the (serializable) spec; already-built
    :class:`PastaTool` instances are carried alongside and attached at
    execution time, since an object cannot ride in a declarative spec.
    """

    def __init__(self, model: str) -> None:
        self._fields: dict[str, object] = {"model": str(model)}
        self._knobs: dict[str, KnobValue] = {}
        self._tool_names: list[str] = []
        self._tool_instances: list[PastaTool] = []

    # ------------------------------------------------------------------ #
    # spec fields
    # ------------------------------------------------------------------ #
    def on(self, device: str) -> "ProfileBuilder":
        """Target device by registry short name (``"a100"``, ...)."""
        self._fields["device"] = str(device)
        return self

    def mode(self, mode: str) -> "ProfileBuilder":
        """Run mode: ``"inference"`` or ``"train"``."""
        self._fields["mode"] = str(mode)
        return self

    def train(self) -> "ProfileBuilder":
        """Shorthand for ``mode("train")``."""
        return self.mode("train")

    def inference(self) -> "ProfileBuilder":
        """Shorthand for ``mode("inference")``."""
        return self.mode("inference")

    def with_tools(self, *tools: Union[str, PastaTool]) -> "ProfileBuilder":
        """Attach analysis tools: registry names and/or instances."""
        for tool in tools:
            if isinstance(tool, str):
                self._tool_names.append(tool)
            else:
                self._tool_instances.append(tool)
        return self

    def with_tool(self, tool: Union[str, PastaTool]) -> "ProfileBuilder":
        """Attach one analysis tool (name or instance)."""
        return self.with_tools(tool)

    def iterations(self, n: int) -> "ProfileBuilder":
        """Number of inference passes / training steps."""
        self._fields["iterations"] = int(n)
        return self

    def batch_size(self, n: Optional[int]) -> "ProfileBuilder":
        """Override the model's paper batch size."""
        self._fields["batch_size"] = None if n is None else int(n)
        return self

    def backend(self, name: Optional[str]) -> "ProfileBuilder":
        """Profiling backend registry name (None: vendor default)."""
        self._fields["backend"] = None if name is None else str(name)
        return self

    def analysis_model(self, name: Union[str, AnalysisModel]) -> "ProfileBuilder":
        """Analysis model: ``"gpu_resident"`` or ``"cpu_side"``."""
        value = name.value if isinstance(name, AnalysisModel) else str(name)
        self._fields["analysis_model"] = value
        return self

    def analysis(self, name: Union[str, AnalysisModel]) -> "ProfileBuilder":
        """Shorthand for :meth:`analysis_model`."""
        return self.analysis_model(name)

    def fine_grained(self, enabled: bool = True) -> "ProfileBuilder":
        """Force device-side (instruction-level) instrumentation."""
        self._fields["fine_grained"] = bool(enabled)
        return self

    def knob(self, name: str, value: KnobValue) -> "ProfileBuilder":
        """Set one knob override (grid window or cost-model field)."""
        self._knobs[str(name)] = value
        return self

    def with_knobs(self, **knobs: KnobValue) -> "ProfileBuilder":
        """Set several knob overrides at once."""
        self._knobs.update(knobs)
        return self

    def window(self, start_grid_id: Optional[int], end_grid_id: Optional[int]) -> "ProfileBuilder":
        """Restrict analysis to a kernel-launch (grid-id) window."""
        if start_grid_id is not None:
            self._knobs["start_grid_id"] = int(start_grid_id)
        if end_grid_id is not None:
            self._knobs["end_grid_id"] = int(end_grid_id)
        return self

    def parallel(
        self,
        strategy: Union[str, ParallelismSpec],
        world_size: int = 2,
        devices: Sequence[str] = (),
        microbatches: int = 2,
    ) -> "ProfileBuilder":
        """Run as a multi-GPU parallel profile (DP/TP/PP over ``world_size``).

        ``strategy`` is ``"dp"``, ``"tp"`` or ``"pp"`` (or a ready
        :class:`ParallelismSpec`, in which case the other arguments are
        ignored); ``devices`` optionally names one device per rank,
        defaulting to the builder's device replicated.  Parallel profiles
        train, so the mode defaults to ``"train"`` unless set explicitly.
        """
        if isinstance(strategy, ParallelismSpec):
            parallelism = strategy
        else:
            parallelism = ParallelismSpec(
                strategy=strategy, world_size=world_size,
                devices=tuple(devices), microbatches=microbatches,
            )
        self._fields["parallelism"] = parallelism
        self._fields.setdefault("mode", "train")
        return self

    def record(self, path: Union[str, Path]) -> "ProfileBuilder":
        """Record the event stream to ``path`` for later offline replay."""
        self._fields["record_to"] = str(path)
        return self

    # ------------------------------------------------------------------ #
    # terminal operations
    # ------------------------------------------------------------------ #
    def build(self) -> ProfileSpec:
        """The accumulated :class:`ProfileSpec` (serializable, declarative).

        Tool *instances* cannot be serialized into a spec: register the tool
        (``register_tool``/entry point) and add it by name, or execute
        directly with :meth:`run`, which attaches instances on the side.
        """
        if self._tool_instances:
            names = sorted(type(t).__name__ for t in self._tool_instances)
            raise ReproError(
                f"cannot build a declarative ProfileSpec holding tool instances "
                f"({names}); register them and use their registry names, or call "
                f".run() which attaches instances directly"
            )
        return self._spec()

    def _spec(self) -> ProfileSpec:
        return ProfileSpec(
            tools=tuple(self._tool_names),
            knobs=tuple(self._knobs.items()),  # type: ignore[arg-type]
            **self._fields,  # type: ignore[arg-type]
        )

    def run(self):
        """Execute the spec live; returns a :class:`~repro.api.runner.ProfileResult`."""
        from repro.api.runner import execute

        return execute(self._spec(), extra_tools=tuple(self._tool_instances))

    def replay(self, trace: object):
        """Replay a recorded trace under this configuration (offline).

        Returns a :class:`~repro.replay.replayer.ReplayResult`.
        """
        from repro.api.runner import replay as replay_fn

        spec = self._spec()
        if spec.parallelism is not None:
            if self._tool_instances:
                raise ReproError(
                    "parallel replays attach one fresh tool instance per rank; "
                    "register tools and add them by name"
                )
            return replay_fn(trace, spec)
        tools: list[Union[str, PastaTool]] = list(spec.tools) + list(self._tool_instances)
        return replay_fn(trace, spec, tools=tools if tools else None)


def profile(model: str) -> ProfileBuilder:
    """Start a fluent profiling configuration for ``model``."""
    return ProfileBuilder(model)
