"""``repro.api``: the one profiling API.

A single declarative, serializable configuration object —
:class:`~repro.api.spec.ProfileSpec` — drives every execution style the
framework offers, through one runner (:mod:`repro.api.runner`):

===========================  ==================================================
live run                     ``run("gpt2", tools=["hotness"])`` or
                             ``profile("gpt2").with_tools("hotness").run()``
record to a trace            ``profile("gpt2").record("t.pasta").run()`` /
                             ``spec.with_record("t.pasta")``
offline replay               ``replay("t.pasta", spec)``
campaign (grid of specs)     :mod:`repro.campaign` expands a
                             :class:`~repro.campaign.spec.CampaignSpec` into
                             ``ProfileSpec`` jobs and schedules them
===========================  ==================================================

The same spec produces byte-identical tool reports across all four paths,
and its canonical serialization is the campaign cache key.
"""

from repro.api.builder import ProfileBuilder, profile
from repro.api.runner import (
    ParallelProfileResult,
    ParallelReplayResult,
    ProfileResult,
    execute,
    execute_parallel,
    execute_payload,
    record_workload_trace,
    replay,
    replay_parallel,
    replay_payload,
    run,
    workload_signature,
)
from repro.api.spec import (
    KnobValue,
    PARALLEL_STRATEGIES,
    ParallelismSpec,
    ProfileSpec,
    RUN_MODES,
    normalize_knobs,
    normalize_parallelism,
)

__all__ = [
    "KnobValue",
    "PARALLEL_STRATEGIES",
    "ParallelismSpec",
    "ParallelProfileResult",
    "ParallelReplayResult",
    "ProfileBuilder",
    "ProfileResult",
    "ProfileSpec",
    "RUN_MODES",
    "execute",
    "execute_parallel",
    "execute_payload",
    "normalize_knobs",
    "normalize_parallelism",
    "profile",
    "record_workload_trace",
    "replay",
    "replay_parallel",
    "replay_payload",
    "run",
    "workload_signature",
]
