"""Buffered trace writer: the recording tap between handler and processor.

:class:`TraceWriter` persists a normalised event stream into the chunked,
gzip-member container described in :mod:`repro.replay.format`.  Events are
buffered and compressed one chunk at a time, so the per-event cost on the
recording (live) session is one dict encode plus a JSON dump; compression
happens every ``chunk_events`` events.  Closing the writer emits the footer
(counts + content digest) and a sidecar index that maps every chunk to its
``(offset, length)`` byte span for random access.

The writer is installed by ``PastaSession(record_to=...)`` as a tap on the
handler's sink: every event the handler forwards to the event processor is
also appended to the trace, regardless of backend, tool mix or analysis
model — which is exactly what makes the trace replayable under a *different*
tool mix or analysis model later.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.events import EventCategory, KernelLaunchEvent, PastaEvent
from repro.errors import TraceError
from repro.replay.format import (
    DEFAULT_CHUNK_EVENTS,
    TRACE_FORMAT_VERSION,
    TraceFooter,
    TraceHeader,
    dumps_record,
    encode_event,
)

#: Suffix appended to the trace path for the seek index sidecar.
INDEX_SUFFIX = ".idx.json"


def index_path_for(path: Union[str, Path]) -> Path:
    """Location of the sidecar index for a trace at ``path``."""
    return Path(str(path) + INDEX_SUFFIX)


@dataclass
class ChunkInfo:
    """Index entry for one compressed chunk."""

    offset: int
    length: int
    events: int
    #: Ordinal of the chunk's first event within the whole trace.
    first_event: int
    #: Event categories present in the chunk (for chunk-skipping reads).
    categories: list[str] = field(default_factory=list)
    #: Grid-index range of the kernel launches in the chunk (None when none).
    min_grid: Optional[int] = None
    max_grid: Optional[int] = None

    def to_dict(self) -> dict[str, object]:
        return {
            "offset": self.offset,
            "length": self.length,
            "events": self.events,
            "first_event": self.first_event,
            "categories": sorted(self.categories),
            "min_grid": self.min_grid,
            "max_grid": self.max_grid,
        }


class TraceWriter:
    """Writes one trace file; append events, then :meth:`close`.

    Parameters
    ----------
    path:
        Destination file.  Parent directories are created as needed.
    header:
        The :class:`TraceHeader` describing the recording.
    chunk_events:
        Events buffered per compressed chunk (the flush granularity).
    write_index:
        Whether to emit the ``<path>.idx.json`` seek index on close.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: TraceHeader,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        write_index: bool = True,
    ) -> None:
        if chunk_events < 1:
            raise TraceError(f"chunk_events must be >= 1, got {chunk_events}")
        self.path = Path(path)
        self.header = header
        self.chunk_events = chunk_events
        self.write_index = write_index
        self.events_written = 0
        self._buffer: list[bytes] = []
        self._buffer_categories: set[str] = set()
        self._buffer_min_grid: Optional[int] = None
        self._buffer_max_grid: Optional[int] = None
        self._chunks: list[ChunkInfo] = []
        self._category_counts: dict[str, int] = {}
        self._hasher = hashlib.sha256()
        self._closed = False
        self._complete = True
        self._abort_reason = ""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "wb")
        self._offset = 0
        self._header_length = self._write_member(
            (dumps_record(header.to_record()) + "\n").encode("utf-8")
        )

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once the footer has been written."""
        return self._closed

    def write(self, event: PastaEvent) -> None:
        """Append one event to the trace (buffered)."""
        if self._closed:
            raise TraceError(f"trace writer for {self.path} is already closed")
        line = (dumps_record(encode_event(event)) + "\n").encode("utf-8")
        self._hasher.update(line)
        self._buffer.append(line)
        category = event.category.value if isinstance(event.category, EventCategory) else str(event.category)
        self._buffer_categories.add(category)
        self._category_counts[category] = self._category_counts.get(category, 0) + 1
        if isinstance(event, KernelLaunchEvent):
            grid = event.grid_index
            if self._buffer_min_grid is None or grid < self._buffer_min_grid:
                self._buffer_min_grid = grid
            if self._buffer_max_grid is None or grid > self._buffer_max_grid:
                self._buffer_max_grid = grid
        self.events_written += 1
        if len(self._buffer) >= self.chunk_events:
            self._flush_chunk()

    def _write_member(self, payload: bytes) -> int:
        """Compress ``payload`` as one gzip member; returns its byte length."""
        member = gzip.compress(payload, mtime=0)
        self._file.write(member)
        self._offset += len(member)
        return len(member)

    def _flush_chunk(self) -> None:
        if not self._buffer:
            return
        offset = self._offset
        length = self._write_member(b"".join(self._buffer))
        self._chunks.append(ChunkInfo(
            offset=offset,
            length=length,
            events=len(self._buffer),
            first_event=self.events_written - len(self._buffer),
            categories=sorted(self._buffer_categories),
            min_grid=self._buffer_min_grid,
            max_grid=self._buffer_max_grid,
        ))
        self._buffer = []
        self._buffer_categories = set()
        self._buffer_min_grid = None
        self._buffer_max_grid = None

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #
    def footer(self) -> TraceFooter:
        """The footer describing everything written so far."""
        return TraceFooter(
            event_count=self.events_written,
            chunk_count=len(self._chunks),
            category_counts=dict(sorted(self._category_counts.items())),
            digest=self._hasher.hexdigest(),
            complete=self._complete,
            abort_reason=self._abort_reason,
        )

    def abort(self, reason: str = "") -> TraceFooter:
        """Finalise a recording that did not cover the whole run.

        The trace stays readable (everything written is kept, the digest is
        valid), but its footer is marked incomplete so readers refuse it by
        default instead of producing confidently wrong analyses.
        """
        self._complete = False
        self._abort_reason = str(reason)
        return self.close()

    def close(self) -> TraceFooter:
        """Flush, write the footer (and index) and close the file."""
        if self._closed:
            return self.footer()
        self._flush_chunk()
        footer = self.footer()
        footer_offset = self._offset
        footer_length = self._write_member(
            (dumps_record(footer.to_record()) + "\n").encode("utf-8")
        )
        self._file.close()
        self._closed = True
        if self.write_index:
            index = {
                "format_version": TRACE_FORMAT_VERSION,
                "header": {"offset": 0, "length": self._header_length},
                "chunks": [chunk.to_dict() for chunk in self._chunks],
                "footer": {"offset": footer_offset, "length": footer_length},
                "event_count": footer.event_count,
                "digest": footer.digest,
            }
            index_path_for(self.path).write_text(
                json.dumps(index, indent=None, sort_keys=True) + "\n", encoding="utf-8"
            )
        return footer

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass
