"""Offline replay engine: re-drive recorded traces through fresh tool sets.

:class:`TraceReplayer` rebuilds the analysis half of a live
:class:`~repro.core.session.PastaSession` — a fresh
:class:`~repro.core.processor.PastaEventProcessor`, an
:class:`~repro.core.overhead.OverheadAccountant` configured from the trace
header, and any set of tools — and feeds the recorded event stream through
it with **no runtime, framework or vendor backend attached**.  Because tools
only ever see normalised, preprocessed events, replaying a trace through the
same tool set yields reports identical to the live session's; replaying
through a *different* tool set, analysis model or cost-model configuration
answers what-if questions (e.g. "what would this workload have cost under
CPU-side analysis?") without re-simulating anything.

Address resolution, which the live session delegates to the runtime's driver
allocator, is reconstructed from the trace itself: the
:class:`MemoryAllocEvent` stream replays the allocator's address map, so
GPU-resident preprocessing attributes accesses to the same memory objects it
did live.
"""

from __future__ import annotations

import bisect
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core.annotations import RangeFilter
from repro.errors import TraceError
from repro.core.events import MemoryAllocEvent
from repro.core.overhead import OverheadAccountant
from repro.core.processor import PastaEventProcessor
from repro.core.session import _make_analysis_model, collect_reports
from repro.core.tool import PastaTool
from repro.gpusim.costmodel import CostModelConfig, InstrumentationBackend
from repro.gpusim.device import DeviceSpec
from repro.gpusim.trace import AnalysisModel
from repro.obs.telemetry import active as _active_telemetry
from repro.replay.reader import TraceReader


class TraceAddressResolver:
    """Rebuilds the driver allocator's address map from recorded alloc events.

    Mirrors :meth:`DeviceMemoryAllocator.lookup` with ``live_only=False``:
    the nearest allocation base at or below the address is consulted, freed
    objects keep resolving, and an address outside every recorded allocation
    resolves to ``None`` (the processor then falls back to its synthetic id).
    """

    def __init__(self) -> None:
        self._bases: list[int] = []
        self._objects: dict[int, tuple[int, int]] = {}

    def observe(self, event: object) -> None:
        """Track one event (only allocation events mutate the map)."""
        if not isinstance(event, MemoryAllocEvent):
            return
        if event.address not in self._objects:
            bisect.insort(self._bases, event.address)
        # Address reuse after a free: the newest object wins, matching the
        # allocator index where the highest object id sorts last.
        self._objects[event.address] = (event.object_id, event.size)

    def resolve(self, address: int) -> Optional[tuple[int, int]]:
        """``(object_id, size)`` of the allocation containing ``address``."""
        idx = bisect.bisect_right(self._bases, address) - 1
        if idx < 0:
            return None
        base = self._bases[idx]
        object_id, size = self._objects[base]
        if base <= address < base + size:
            return object_id, size
        return None


@dataclass
class ReplayResult:
    """Everything produced by one offline replay."""

    trace_path: Path
    tools: list[PastaTool]
    processor: PastaEventProcessor
    overhead_accountant: Optional[OverheadAccountant]
    analysis_model: AnalysisModel
    events_replayed: int = 0
    header: dict[str, object] = field(default_factory=dict)

    def reports(self) -> dict[str, dict[str, object]]:
        """Tool reports plus the overhead report — the live session's shape."""
        return collect_reports(self.tools, self.overhead_accountant)

    def tool(self, name: str) -> PastaTool:
        """Fetch one replayed tool by its registry name."""
        for tool in self.tools:
            if tool.tool_name == name:
                return tool
        raise TraceError(
            f"tool {name!r} was not part of this replay; "
            f"replayed tools: {sorted(t.tool_name for t in self.tools)}"
        )


class TraceReplayer:
    """Replays one trace through a tool set (see module docstring).

    Parameters
    ----------
    trace:
        Path to a trace file, or an open :class:`TraceReader`.
    tools:
        Tools to drive (may be empty for an overhead-only replay).
    analysis_model:
        Override the recorded analysis model — the overhead what-if knob.
    cost_config:
        Override the cost-model constants used by the overhead accountant.
    range_filter:
        Restrict analysis to a kernel-launch window, exactly as live.
    measure_overhead:
        Attach an overhead accountant (mirrors the live session default).
    events:
        Pre-decoded event list to replay instead of re-reading the file.
        When several replays share one trace (the campaign replay mode),
        decoding once and passing the list here avoids paying the
        decompress+decode cost per replay; the trace/reader still supplies
        the header.
    device_spec / instrumentation:
        Override the trace header's device spec / instrumentation backend
        for the overhead accountant.  Multi-GPU traces record one header
        (rank 0's device) but replay per rank, so heterogeneous device sets
        need the actual rank's device here to reproduce the live overhead
        report.
    """

    def __init__(
        self,
        trace: Union[str, Path, TraceReader],
        tools: Optional[Sequence[PastaTool]] = None,
        analysis_model: Union[str, AnalysisModel, None] = None,
        cost_config: Optional[CostModelConfig] = None,
        range_filter: Optional[RangeFilter] = None,
        measure_overhead: bool = True,
        events: Optional[Sequence[object]] = None,
        device_spec: Optional["DeviceSpec"] = None,
        instrumentation: Optional[str] = None,
    ) -> None:
        self.reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)
        self.tools = list(tools or ())
        self.events = events
        header = self.reader.header
        self.analysis_model = _make_analysis_model(
            header.analysis_model if analysis_model is None else analysis_model
        )
        self.cost_config = cost_config
        self.range_filter = range_filter
        self.measure_overhead = measure_overhead
        self.device_spec = device_spec
        self.instrumentation = instrumentation

    def run(self) -> ReplayResult:
        """Stream the trace through a fresh processor and return the result."""
        header = self.reader.header
        fine_tools = sorted(t.tool_name for t in self.tools if t.requires_fine_grained)
        if fine_tools and not header.fine_grained:
            raise TraceError(
                f"tools {fine_tools} require fine-grained (device-side) events, "
                f"but this trace was recorded without fine-grained "
                f"instrumentation; re-record with fine-grained enabled"
            )
        accountant: Optional[OverheadAccountant] = None
        if self.measure_overhead:
            accountant = OverheadAccountant(
                device_spec=(
                    header.device_spec() if self.device_spec is None else self.device_spec
                ),
                analysis_model=self.analysis_model,
                backend=InstrumentationBackend(
                    header.instrumentation if self.instrumentation is None
                    else self.instrumentation
                ),
                config=self.cost_config,
            )
        resolver = TraceAddressResolver()
        processor = PastaEventProcessor(
            address_resolver=resolver.resolve,
            range_filter=self.range_filter,
            enable_gpu_preprocessing=True,
            overhead_accountant=accountant,
        )
        for tool in self.tools:
            processor.register_tool(tool)
        collect_reports(self.tools, accountant, dry_run=True)  # fail fast on name clashes
        for tool in self.tools:
            tool.on_session_start()
        events_replayed = 0
        stream = self.reader.events() if self.events is None else self.events
        with _active_telemetry().span(
            "replay.run",
            trace=str(self.reader.path),
            analysis_model=self.analysis_model.value,
            tools=len(self.tools),
        ) as replay_span:
            try:
                for event in stream:
                    resolver.observe(event)
                    processor.submit(event)
                    events_replayed += 1
            finally:
                for tool in self.tools:
                    tool.on_session_end()
                replay_span.set_counter("events_replayed", events_replayed)
                replay_span.set_counter("events_filtered", processor.events_filtered)
                replay_span.set_counter(
                    "dispatched_events", processor.dispatch_unit.dispatched_events
                )
        return ReplayResult(
            trace_path=self.reader.path,
            tools=self.tools,
            processor=processor,
            overhead_accountant=accountant,
            analysis_model=self.analysis_model,
            events_replayed=events_replayed,
            header=dataclasses.asdict(header),
        )


def replay_trace(
    trace: Union[str, Path, TraceReader],
    tools: Optional[Sequence[PastaTool]] = None,
    analysis_model: Union[str, AnalysisModel, None] = None,
    cost_config: Optional[CostModelConfig] = None,
    range_filter: Optional[RangeFilter] = None,
    measure_overhead: bool = True,
    events: Optional[Sequence[object]] = None,
) -> ReplayResult:
    """One-call convenience: build a :class:`TraceReplayer` and run it."""
    return TraceReplayer(
        trace,
        tools=tools,
        analysis_model=analysis_model,
        cost_config=cost_config,
        range_filter=range_filter,
        measure_overhead=measure_overhead,
        events=events,
    ).run()
