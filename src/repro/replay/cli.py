"""``pasta-trace``: record, inspect, slice and replay PASTA event traces.

Subcommands
-----------

``record``
    Run one simulated workload and persist its normalised event stream::

        pasta-trace record resnet18 -o resnet18.pastatrace --device a100

``replay``
    Re-drive a recorded trace through a tool set — optionally under a
    different analysis model — and print the reports, exactly as a live
    ``pasta-profile`` run would have::

        pasta-trace replay resnet18.pastatrace --tool kernel_frequency
        pasta-trace replay resnet18.pastatrace --tool hotness --analysis-model cpu_side

``info``
    Show a trace's header, counts and digest-verification status::

        pasta-trace info resnet18.pastatrace

``slice``
    Write a filtered copy of a trace (by category, kernel-launch window, or
    annotation region)::

        pasta-trace slice resnet18.pastatrace -o window.pastatrace \\
            --start-grid-id 0 --end-grid-id 49
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.cli import _print_text_report
from repro.core.annotations import RangeFilter
from repro.core.registry import create_tool, registered_tools
from repro.core.serialization import json_sanitize
from repro.dlframework.models import MODEL_REGISTRY
from repro.errors import ReproError
from repro.replay.reader import TraceReader
from repro.replay.replayer import replay_trace
from repro.workloads.runner import run_workload

# Importing the tools package registers the built-in tool collection.
import repro.tools  # noqa: F401  (side effect: tool registration)


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``pasta-trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="pasta-trace",
        description="Record, inspect, slice and replay PASTA event traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run a workload and record its event stream")
    record.add_argument("model", choices=sorted(MODEL_REGISTRY),
                        help="model to profile (from the model zoo)")
    record.add_argument("--output", "-o", required=True, help="trace file to write")
    record.add_argument("--device", "-d", default="a100",
                        help="device short name: a100, rtx3060, mi300x (default: a100)")
    record.add_argument("--mode", choices=["inference", "train"], default="inference")
    record.add_argument("--iterations", type=int, default=1)
    record.add_argument("--batch-size", type=int, default=None,
                        help="override the model's paper batch size")
    record.add_argument("--backend", default=None,
                        help="profiling backend: compute_sanitizer, nvbit, rocprofiler")
    record.add_argument("--fine-grained", action="store_true",
                        help="record device-side (instruction-level) events too")
    record.add_argument("--json", action="store_true", help="emit the summary as JSON")

    replay = sub.add_parser("replay", help="replay a trace through a tool set")
    replay.add_argument("trace", nargs="?",
                        help="path to a recorded trace (optional with --list-tools)")
    replay.add_argument("--tool", "-t", action="append", default=[],
                        help="tool name from the registry; may be repeated")
    replay.add_argument("--analysis-model", choices=["gpu_resident", "cpu_side"],
                        default=None, help="override the recorded analysis model")
    replay.add_argument("--start-grid-id", type=int, default=None,
                        help="first kernel-launch index to analyse")
    replay.add_argument("--end-grid-id", type=int, default=None,
                        help="last kernel-launch index to analyse")
    replay.add_argument("--list-tools", action="store_true",
                        help="list registered tools and exit")
    replay.add_argument("--json", action="store_true", help="emit reports as JSON")
    _add_strict_schema_flag(replay)

    info = sub.add_parser("info", help="show a trace's header, counts and digest status")
    info.add_argument("trace", help="path to a recorded trace")
    info.add_argument("--json", action="store_true", help="emit the summary as JSON")
    _add_strict_schema_flag(info)

    slice_ = sub.add_parser("slice", help="write a filtered copy of a trace")
    slice_.add_argument("trace", help="path to a recorded trace")
    slice_.add_argument("--output", "-o", required=True, help="sliced trace file to write")
    slice_.add_argument("--category", action="append", default=[],
                        help="event category to keep; may be repeated")
    slice_.add_argument("--start-grid-id", type=int, default=None,
                        help="first kernel-launch index to keep")
    slice_.add_argument("--end-grid-id", type=int, default=None,
                        help="last kernel-launch index to keep")
    slice_.add_argument("--region", default=None,
                        help="keep only events inside pasta regions with this label")
    _add_strict_schema_flag(slice_)
    return parser


def _add_strict_schema_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--no-strict-schema", dest="strict_schema", action="store_false",
        help="attempt a best-effort read of traces recorded under older "
             "event schemas (unknown record fields are ignored)",
    )


def _print_reports(reports: dict[str, dict[str, object]], as_json: bool) -> None:
    if as_json:
        print(json.dumps(json_sanitize(reports), indent=2, sort_keys=True))
    else:
        _print_text_report(reports)


def _cmd_record(args: argparse.Namespace) -> int:
    result = run_workload(
        args.model,
        device=args.device,
        mode=args.mode,
        iterations=args.iterations,
        batch_size=args.batch_size,
        vendor_backend=args.backend,
        enable_fine_grained=args.fine_grained,
        record_to=args.output,
    )
    reader = TraceReader(args.output)
    summary = {
        "trace": str(reader.path),
        "events": reader.footer.event_count,
        "chunks": reader.footer.chunk_count,
        "run": result.summary.as_dict(),
    }
    if args.json:
        print(json.dumps(json_sanitize(summary), indent=2, sort_keys=True))
    else:
        print(f"recorded {summary['events']} events "
              f"({summary['chunks']} chunks) to {summary['trace']}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.list_tools:
        for name in registered_tools():
            print(name)
        return 0
    if not args.trace:
        raise ReproError("a trace path is required unless --list-tools is given")
    tools = [create_tool(name) for name in args.tool]
    range_filter = None
    if args.start_grid_id is not None or args.end_grid_id is not None:
        range_filter = RangeFilter()
        range_filter.set_grid_window(args.start_grid_id, args.end_grid_id)
    result = replay_trace(
        TraceReader(args.trace, strict_schema=args.strict_schema),
        tools=tools,
        analysis_model=args.analysis_model,
        range_filter=range_filter,
    )
    reports = result.reports()
    if not args.json:
        print(f"replayed {result.events_replayed} events from {args.trace}")
    _print_reports(reports, args.json)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    reader = TraceReader(args.trace, strict_schema=args.strict_schema)
    info = reader.info()
    info["digest_ok"] = reader.verify()
    if args.json:
        print(json.dumps(json_sanitize(info), indent=2, sort_keys=True))
        return 0 if info["digest_ok"] else 1
    header, footer = info["header"], info["footer"]
    print(f"trace:        {info['path']} ({info['file_bytes']} bytes, "
          f"{'indexed' if info['indexed'] else 'no index'})")
    print(f"recorded by:  repro {header['repro_version']} "
          f"(format v{header['format_version']})")
    print(f"device:       {header['device'].get('name')}")
    print(f"backend:      {header['backend']} / {header['analysis_model']}"
          f"{' / fine-grained' if header['fine_grained'] else ''}")
    if header["workload"]:
        print(f"workload:     {header['workload']}")
    print(f"events:       {footer['event_count']} in {info['chunks']} chunks")
    for category, count in footer["category_counts"].items():
        print(f"  {category}: {count}")
    if not footer["complete"]:
        print(f"status:       INCOMPLETE (recording aborted: "
              f"{footer['abort_reason'] or 'unknown'})")
    print(f"digest:       {'ok' if info['digest_ok'] else 'MISMATCH'}")
    return 0 if info["digest_ok"] else 1


def _cmd_slice(args: argparse.Namespace) -> int:
    reader = TraceReader(args.trace, strict_schema=args.strict_schema)
    footer = reader.slice_to(
        args.output,
        categories=args.category or None,
        start_grid_id=args.start_grid_id,
        end_grid_id=args.end_grid_id,
        region=args.region,
    )
    print(f"wrote {footer.event_count} of {reader.footer.event_count} events "
          f"to {args.output}")
    return 0


_COMMANDS = {
    "record": _cmd_record,
    "replay": _cmd_replay,
    "info": _cmd_info,
    "slice": _cmd_slice,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
