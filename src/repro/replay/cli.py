"""Deprecated ``pasta-trace`` console script (use ``pasta trace``).

The implementation lives in :mod:`repro.commands.trace`; :func:`main`
forwards its arguments to the ``pasta trace`` subcommand unchanged, emitting
a :class:`DeprecationWarning`.  Trace files are unaffected — both spellings
read and write the same format::

    pasta-trace replay resnet18.pastatrace --tool kernel_frequency
    pasta trace  replay resnet18.pastatrace --tool kernel_frequency   # new
"""

from __future__ import annotations

import sys
import warnings
from typing import Optional, Sequence


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    warnings.warn(
        "the pasta-trace command is deprecated; use `pasta trace ...` "
        "(same subcommands and flags)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.commands import main as pasta_main

    argv = list(sys.argv[1:] if argv is None else argv)
    return pasta_main(["trace", *argv])


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
